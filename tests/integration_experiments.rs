//! Scaled-down versions of the paper's headline experiments, asserting the
//! qualitative *shapes* the full benchmark harness regenerates.

use shelfsim::{geomean, stp, CoreConfig, EnergyModel, Simulation};
use shelfsim_bench::{evaluate_designs, mixes, Design, Scale, StCpiPool};

#[test]
fn figure1_shape_in_sequence_grows_with_threads() {
    let scale = Scale::tiny();
    let mut fractions = Vec::new();
    for threads in [1usize, 4] {
        let f = if threads == 1 {
            let mut sim =
                Simulation::from_names(CoreConfig::base128(1), &["gcc"], scale.seed).unwrap();
            sim.run(scale.warmup, scale.measure).threads[0].in_sequence_fraction
        } else {
            let mix = &mixes(4, scale)[0];
            let names: Vec<&str> = mix.benchmarks.clone();
            let mut sim =
                Simulation::from_names(CoreConfig::base128(4), &names, scale.seed).unwrap();
            sim.run(scale.warmup, scale.measure)
                .mean_in_sequence_fraction()
        };
        fractions.push(f);
    }
    assert!(
        fractions[1] > fractions[0],
        "in-sequence fraction must grow with threads: 1T {:.2} vs 4T {:.2}",
        fractions[0],
        fractions[1]
    );
    assert!(
        fractions[1] > 0.30,
        "4-thread in-sequence should approach half"
    );
}

#[test]
fn figure2_shape_in_sequence_series_are_short() {
    let scale = Scale::tiny();
    let mut sim = Simulation::from_names(CoreConfig::base128(1), &["bzip2"], scale.seed).unwrap();
    let r = sim.run(scale.warmup, scale.measure);
    let t = &r.threads[0];
    let q_in = t.in_sequence_series.quantile(0.99).unwrap_or(0);
    let max_re = t.reordered_series.max_length().unwrap_or(0);
    assert!(
        q_in <= 64,
        "99% of in-sequence weight in short series, got {q_in}"
    );
    assert!(
        max_re > q_in,
        "reordered series ({max_re}) should run longer than in-sequence ({q_in})"
    );
}

#[test]
fn figure10_shape_shelf_improves_and_base128_bounds() {
    let scale = Scale::tiny();
    let designs = [Design::Base64, Design::ShelfOptimistic, Design::Base128];
    let evals = evaluate_designs(&designs, 4, scale);
    let shelf_ratio: Vec<f64> = evals[1]
        .iter()
        .zip(&evals[0])
        .map(|(s, b)| s.stp / b.stp)
        .collect();
    let big_ratio: Vec<f64> = evals[2]
        .iter()
        .zip(&evals[0])
        .map(|(s, b)| s.stp / b.stp)
        .collect();
    let shelf = geomean(&shelf_ratio);
    let big = geomean(&big_ratio);
    assert!(
        shelf > 1.0,
        "shelf should improve 4-thread STP, got {shelf:.3}"
    );
    assert!(
        big > shelf * 0.95,
        "Base-128 should bound the shelf (shelf {shelf:.3}, big {big:.3})"
    );
    for e in evals.iter().flatten() {
        assert_eq!(e.late_shelf_commits, 0);
    }
}

#[test]
fn figure12_shape_practical_close_to_oracle() {
    let scale = Scale::tiny();
    let mix = &mixes(4, scale)[0];
    let mut pool = StCpiPool::new();
    let base = shelfsim_bench::evaluate_mix(Design::Base64, mix, &mut pool, scale).unwrap();
    let practical =
        shelfsim_bench::evaluate_mix(Design::ShelfOptimistic, mix, &mut pool, scale).unwrap();
    let oracle = shelfsim_bench::evaluate_mix(Design::ShelfOracle, mix, &mut pool, scale).unwrap();
    // Both must be competitive with the baseline; practical within ~15% of
    // oracle (the paper's gap is a few percent).
    assert!(practical.stp > base.stp * 0.95);
    assert!(oracle.stp > base.stp * 0.95);
    assert!(practical.stp > oracle.stp * 0.85);
    assert!(practical.missteer > 0.0 && practical.missteer < 0.9);
}

#[test]
fn figure13_shape_shelf_wins_edp() {
    let scale = Scale::tiny();
    let designs = [Design::Base64, Design::ShelfOptimistic];
    let evals = evaluate_designs(&designs, 4, scale);
    let ratios: Vec<f64> = evals[1]
        .iter()
        .zip(&evals[0])
        .map(|(s, b)| s.edp / b.edp)
        .collect();
    assert!(
        geomean(&ratios) < 1.0,
        "shelf should lower EDP, ratio {:.3}",
        geomean(&ratios)
    );
}

#[test]
fn table2_shape_area_ordering() {
    let base = EnergyModel::for_config(&Design::Base64.config(4));
    let shelf = EnergyModel::for_config(&Design::ShelfOptimistic.config(4));
    let big = EnergyModel::for_config(&Design::Base128.config(4));
    for l1 in [false, true] {
        let a0 = base.core_area(l1);
        let ds = shelf.core_area(l1) / a0 - 1.0;
        let db = big.core_area(l1) / a0 - 1.0;
        assert!(ds > 0.0 && ds < 0.06, "shelf area delta {ds:.3}");
        assert!(
            db > 2.0 * ds,
            "doubling should cost much more than the shelf"
        );
    }
}

#[test]
fn stp_metric_consistency() {
    // STP of a mix can never exceed the thread count and, for a working
    // SMT core, should exceed 1 (better than pure time-slicing... at least
    // on a cache-friendly mix).
    let scale = Scale::tiny();
    let cfg = CoreConfig::base64(2);
    let mut pool_st = Vec::new();
    for b in ["hmmer", "h264ref"] {
        let mut sim = Simulation::from_names(CoreConfig::base64(1), &[b], scale.seed).unwrap();
        pool_st.push(sim.run(scale.warmup, scale.measure).threads[0].cpi);
    }
    let mut sim = Simulation::from_names(cfg, &["hmmer", "h264ref"], scale.seed).unwrap();
    let r = sim.run(scale.warmup, scale.measure);
    let v = stp(&pool_st, &r.cpis());
    assert!(v > 0.8 && v <= 2.0 + 1e-9, "2-thread STP out of range: {v}");
}
