//! Observability-layer tests: the fetch-group block-crossing regression,
//! cycle-exact lifecycle timestamps against a hand-derived pipeline
//! schedule, and exporter sanity on a live core.

use shelfsim::core::{Core, EndKind, FetchPolicy, QueueKind, Simulation, StallCause};
use shelfsim::workload::asm::assemble;
use shelfsim::workload::TraceSource;
use shelfsim::CoreConfig;

/// A straight-line kernel: `body` independent ALU ops (distinct
/// destinations reading the r0–r7 input pool) followed by a loop back-edge.
fn straightline_program(body: usize) -> shelfsim::workload::Program {
    let mut src = String::from("top:\n");
    for i in 0..body {
        src.push_str(&format!("    add r{}, r{}\n", 8 + (i % 16), i % 8));
    }
    src.push_str("    loop top, trips=64\n");
    assemble(&src).expect("straight-line kernel assembles")
}

/// Satellite regression: a fetch group that crosses an I-cache block
/// boundary must probe (and be able to miss on) the second block.
///
/// Geometry: instructions are 4 bytes and blocks 64 bytes, so instructions
/// 0..=15 sit in block A and 16.. in block B (the code base is
/// block-aligned). `fetch_width = 6` does not divide 16, so the third
/// fetch group (instructions 12..=17) straddles A→B.
///
/// On a cold cache, the fixed core takes the second I-miss *inside* that
/// straddling group: exactly 16 instructions (0..=15) have been fetched
/// when L1I misses reach 2. The old code probed only at `fetched == 0`,
/// streamed instructions 16..=17 out of a block it never accessed, and
/// only missed on the next group — 18 fetched. This assertion fails on
/// that behavior.
#[test]
fn icache_probes_second_block_of_straddling_group() {
    let cfg = CoreConfig {
        fetch_width: 6,
        ..CoreConfig::base64(1)
    };
    cfg.validate();
    let program = straightline_program(30);
    let mut core = Core::new(cfg, vec![TraceSource::new(program, 0)]);
    for _ in 0..3_000 {
        core.tick();
        if core.hierarchy().l1i_stats().misses() >= 2 {
            break;
        }
    }
    assert_eq!(
        core.hierarchy().l1i_stats().misses(),
        2,
        "cold block B must take its own I-miss"
    );
    assert_eq!(
        core.counters.fetched, 16,
        "the straddling group must stop at the block boundary it missed on"
    );
}

/// Tentpole correctness: exported lifecycle timestamps of a hand-built
/// two-thread program, asserted cycle-exactly against the schedule the
/// documented pipeline rules imply.
///
/// Setup: Base-64 (all-IQ), 2 threads, round-robin fetch, warm caches,
/// straight-line independent ALU ops. The rules that fix the schedule:
///
/// * round-robin fetch starts at thread 1 and alternates, one thread per
///   cycle, so thread 1 fetches at cycle 0 and thread 0 at cycle 1;
/// * a fetched instruction is dispatchable at `fetch + fetch_to_dispatch`
///   (6), and dispatch round-robins threads within the width-4 budget;
/// * ready sources put a dispatched instruction in the issue pool no
///   earlier than `dispatch + 1`; selection is oldest-first over 3 integer
///   ALUs (the binding constraint, under the width of 4);
/// * an ALU op completes `issue + 1`, and writeback precedes commit within
///   a cycle, so the ROB head can commit the cycle it completes.
///
/// Derived schedule for the first instructions of each thread:
///
/// | inst      | fetch | dispatch | issue | writeback | commit |
/// |-----------|-------|----------|-------|-----------|--------|
/// | T1 seq 0  |   0   |    6     |   7   |     8     |   8    |
/// | T1 seq 1  |   0   |    6     |   7   |     8     |   8    |
/// | T1 seq 2  |   0   |    6     |   7   |     8     |   8    |
/// | T1 seq 3  |   0   |    6     |   8   |     9     |   9    |
/// | T0 seq 0  |   1   |    7     |   8   |     9     |   9    |
///
/// (T1 seq 3 is the fourth of four simultaneously-ready ops: it loses the
/// 3-ALU arbitration at cycle 7 and issues a cycle later; T0 seq 0, fetched
/// a cycle after thread 1, dispatches at 7 and is its cycle-8 issue
/// cohort's second-oldest.)
#[test]
fn two_thread_lifecycle_timestamps_are_cycle_exact() {
    let cfg = CoreConfig {
        fetch_policy: FetchPolicy::RoundRobin,
        ..CoreConfig::base64(2)
    };
    cfg.validate();
    let program = straightline_program(200);
    let mut core = Core::new(
        cfg,
        vec![
            TraceSource::new(program.clone(), 0),
            TraceSource::new(program, 1),
        ],
    );
    core.warm_caches();
    core.enable_tracer(64, 1);
    for _ in 0..12 {
        core.tick();
    }
    let tracer = core.tracer().expect("tracer enabled");
    let find = |thread: u8, seq: u64| {
        tracer
            .lifecycles()
            .find(|lc| lc.thread == thread && lc.seq == seq)
            .unwrap_or_else(|| panic!("T{thread} seq {seq} must have ended within 12 cycles"))
    };
    let expect = [
        // (thread, seq, fetch, dispatch, issue, writeback, commit)
        (1, 0, 0, 6, 7, 8, 8),
        (1, 1, 0, 6, 7, 8, 8),
        (1, 2, 0, 6, 7, 8, 8),
        (1, 3, 0, 6, 8, 9, 9),
        (0, 0, 1, 7, 8, 9, 9),
    ];
    for (thread, seq, fetch, dispatch, issue, writeback, commit) in expect {
        let lc = find(thread, seq);
        assert_eq!(
            lc.queue,
            QueueKind::Iq,
            "base64 steers everything to the IQ"
        );
        assert_eq!(lc.end_kind, EndKind::Commit, "T{thread} seq {seq}");
        assert_eq!(
            (lc.fetch, lc.dispatch, lc.issue, lc.writeback, lc.end),
            (fetch, dispatch, Some(issue), Some(writeback), commit),
            "T{thread} seq {seq} lifecycle"
        );
    }
    // The exporters must carry the same cycles.
    let jsonl = tracer.export_jsonl();
    assert!(jsonl.contains("\"thread\":1,\"seq\":3,"));
    assert!(jsonl.contains("\"fetch\":0,\"dispatch\":6,\"issue\":8,\"writeback\":9,\"end\":9"));
    let chrome = tracer.export_chrome();
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"ph\":\"C\""));
}

/// Pins the diagnosis of the two-thread `engine_micro` IPC gap (see
/// `EXPERIMENTS.md`): `base64 gcc,mcf` is slow because both workloads are
/// memory-bound — the ROB head parks on miss loads (dispatch `rob_full`)
/// and issue waits on operands (mcf: `data_wait`) — NOT because of a
/// scheduler defect. If an engine change makes `iq_full`, `fu_busy`, or
/// `width_limited` dominate here, that is a real anomaly and this fails.
#[test]
fn two_thread_mix_is_memory_bound_not_scheduler_bound() {
    let cfg = CoreConfig::base64(2);
    let mut sim = Simulation::from_names(cfg, &["gcc", "mcf"], 7).expect("known benchmarks");
    sim.enable_tracer(64, 32);
    let r = sim.run(2_000, 8_000);
    assert!(
        r.ipc() < 0.5,
        "the mix stays memory-bound (got {})",
        r.ipc()
    );
    let tracer = sim.tracer().expect("tracer enabled");
    let argmax = |row: &[u64]| {
        StallCause::ALL[row
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| **n)
            .expect("non-empty")
            .0]
    };
    for t in 0..2 {
        assert_eq!(
            argmax(tracer.dispatch_stalls(t)),
            StallCause::RobFull,
            "thread {t}: dispatch must be ROB-head-bound, not queue/width-bound"
        );
    }
    assert_eq!(
        argmax(tracer.issue_stalls(1)),
        StallCause::DataWait,
        "mcf issue must be operand-bound (pointer chasing)"
    );
}

/// The occupancy sampler and stall attribution run on a live core and the
/// attribution accounts every sampled cycle on both sides.
#[test]
fn attribution_accounts_every_cycle() {
    let cfg = CoreConfig {
        fetch_policy: FetchPolicy::RoundRobin,
        ..CoreConfig::base64(2)
    };
    let program = straightline_program(64);
    let mut core = Core::new(
        cfg,
        vec![
            TraceSource::new(program.clone(), 0),
            TraceSource::new(program, 1),
        ],
    );
    core.warm_caches();
    core.enable_tracer(32, 1);
    let cycles = 200u64;
    for _ in 0..cycles {
        core.tick();
    }
    let tracer = core.tracer().expect("tracer enabled");
    for t in 0..2 {
        let d: u64 = tracer.dispatch_stalls(t).iter().sum();
        let i: u64 = tracer.issue_stalls(t).iter().sum();
        assert_eq!(d, cycles, "thread {t}: one dispatch attribution per cycle");
        assert_eq!(i, cycles, "thread {t}: one issue attribution per cycle");
    }
    assert!(tracer.samples().count() > 0, "sampler must have fired");
    let cycles_sampled: Vec<u64> = tracer.samples().map(|s| s.cycle).collect();
    assert!(
        cycles_sampled.windows(2).all(|w| w[0] < w[1]),
        "sample cycles must be strictly increasing"
    );
}
