//! Cross-crate pipeline integration tests: end-to-end behaviour of the
//! simulator over real workloads, exercising squash/replay, the hybrid
//! window, and every steering policy.

use shelfsim::{CoreConfig, Simulation, SteerPolicy};

const MIX4: [&str; 4] = ["gcc", "mcf", "hmmer", "lbm"];

fn run(cfg: CoreConfig, names: &[&str], seed: u64) -> shelfsim::RunResult {
    let mut sim = Simulation::from_names(cfg, names, seed).expect("suite benchmarks");
    sim.run(4_000, 16_000)
}

#[test]
fn all_steering_policies_execute_and_commit() {
    for policy in [
        SteerPolicy::AlwaysIq,
        SteerPolicy::AlwaysShelf,
        SteerPolicy::Practical,
        SteerPolicy::Oracle,
    ] {
        let cfg = CoreConfig::base64_shelf64(4, policy, true);
        let r = run(cfg, &MIX4, 1);
        for t in &r.threads {
            assert!(
                t.committed > 0,
                "{:?}: {} made no progress",
                policy,
                t.benchmark
            );
        }
        assert_eq!(r.late_shelf_commits, 0, "{policy:?}: SSR safety violated");
    }
}

#[test]
fn always_iq_on_shelf_config_matches_baseline() {
    // With everything steered to the IQ the shelf hardware is inert; the
    // execution must be cycle-identical to the no-shelf baseline.
    let base = run(CoreConfig::base64(4), &MIX4, 3);
    let inert = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysIq, true),
        &MIX4,
        3,
    );
    assert_eq!(base.counters.committed, inert.counters.committed);
    assert_eq!(base.counters.issued, inert.counters.issued);
    assert_eq!(inert.counters.dispatched_shelf, 0);
    assert_eq!(inert.counters.issued_shelf, 0);
}

#[test]
fn end_to_end_determinism() {
    for policy in [SteerPolicy::Practical, SteerPolicy::Oracle] {
        let cfg = CoreConfig::base64_shelf64(4, policy, false);
        let a = run(cfg.clone(), &MIX4, 11);
        let b = run(cfg, &MIX4, 11);
        assert_eq!(a.counters, b.counters, "{policy:?} not deterministic");
        for (x, y) in a.threads.iter().zip(&b.threads) {
            assert_eq!(x.committed, y.committed);
        }
    }
}

#[test]
fn misspeculation_recovery_is_exercised() {
    // A memory-heavy mix must trigger both branch mispredicts and memory
    // ordering violations, and survive them.
    let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    let r = run(cfg, &["mcf", "omnetpp", "astar", "xalancbmk"], 5);
    assert!(
        r.counters.branch_mispredicts > 0,
        "no branch mispredicts seen"
    );
    assert!(r.counters.squashed > 0, "no instructions squashed");
    assert!(r.counters.committed > 1_000);
    assert_eq!(r.late_shelf_commits, 0);
}

#[test]
fn wrong_path_fetch_pollutes_but_preserves_results() {
    let on = run(CoreConfig::base64(4), &MIX4, 9);
    let off = run(
        CoreConfig {
            wrong_path_fetch: false,
            ..CoreConfig::base64(4)
        },
        &MIX4,
        9,
    );
    assert!(on.counters.wrong_path_fetched > 0);
    assert_eq!(off.counters.wrong_path_fetched, 0);
    // Both commit a comparable amount of work (wrong path costs something
    // but never corrupts architectural progress).
    let a = on.counters.committed as f64;
    let b = off.counters.committed as f64;
    assert!(a > 0.5 * b && b > 0.5 * a, "wrong-path on={a} off={b}");
}

#[test]
fn conservative_issue_never_beats_optimistic_by_much() {
    // Conservative same-cycle semantics can only delay shelf issue; allow a
    // little noise from schedule butterfly effects.
    let cons = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::Practical, false),
        &MIX4,
        13,
    );
    let opt = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
        &MIX4,
        13,
    );
    assert!(
        opt.ipc() >= cons.ipc() * 0.97,
        "optimistic ({}) should be at least conservative ({})",
        opt.ipc(),
        cons.ipc()
    );
}

#[test]
fn smt_scales_throughput() {
    let one = run(CoreConfig::base64(1), &["gcc"], 2);
    let four = run(CoreConfig::base64(4), &MIX4, 2);
    assert!(
        four.ipc() > one.ipc(),
        "4-thread IPC ({}) should exceed 1-thread ({})",
        four.ipc(),
        one.ipc()
    );
}

#[test]
fn shelf_fraction_tracks_policy() {
    let practical = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
        &MIX4,
        4,
    );
    let all_shelf = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, true),
        &MIX4,
        4,
    );
    let frac = practical.counters.shelf_dispatch_fraction();
    assert!(
        frac > 0.10 && frac < 0.90,
        "practical steering fraction {frac}"
    );
    assert!((all_shelf.counters.shelf_dispatch_fraction() - 1.0).abs() < 1e-12);
}

#[test]
fn single_thread_shelf_does_not_collapse() {
    // Paper Figure 14: the shelf must not catastrophically hurt
    // single-threaded execution.
    for bench in ["gcc", "hmmer", "bwaves"] {
        let base = run(CoreConfig::base64(1), &[bench], 7);
        let shelf = run(
            CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true),
            &[bench],
            7,
        );
        let ratio = shelf.threads[0].cpi / base.threads[0].cpi;
        assert!(ratio < 1.15, "{bench}: shelf CPI ratio {ratio:.3} too high");
    }
}

#[test]
fn store_heavy_workload_drains() {
    // lbm is store-heavy (17%); the store buffer and SQ must keep up.
    let r = run(CoreConfig::base64(2), &["lbm", "milc"], 21);
    assert!(r.counters.sq_writes > 500);
    for t in &r.threads {
        assert!(t.committed > 500, "store-heavy thread starved");
    }
}

#[test]
fn mshr_pressure_is_handled() {
    let cfg = CoreConfig {
        hierarchy: shelfsim::mem::HierarchyConfig {
            data_mshrs: 2,
            ..Default::default()
        },
        ..CoreConfig::base64(4)
    };
    let r = run(cfg, &["mcf", "lbm", "milc", "GemsFDTD"], 6);
    assert!(
        r.counters.mshr_stalls > 0,
        "tight MSHRs should cause retries"
    );
    for t in &r.threads {
        assert!(t.committed > 0);
    }
}
