//! Property-based invariants of the whole simulator: for arbitrary
//! configurations, mixes, and seeds, the pipeline must terminate cleanly,
//! keep its counters consistent, preserve SSR safety, and replay
//! deterministically.

use proptest::prelude::*;
use shelfsim::{suite, CoreConfig, MemoryModel, Simulation, SteerPolicy};

fn arb_policy() -> impl Strategy<Value = SteerPolicy> {
    prop_oneof![
        Just(SteerPolicy::AlwaysIq),
        Just(SteerPolicy::AlwaysShelf),
        Just(SteerPolicy::Practical),
        Just(SteerPolicy::Oracle),
    ]
}

fn arb_config() -> impl Strategy<Value = CoreConfig> {
    (
        (
            1usize..=4, // threads
            prop_oneof![Just(64usize), Just(128)],
            arb_policy(),
            any::<bool>(), // optimistic
            any::<bool>(), // single ssr
            any::<bool>(), // narrow index
            any::<bool>(), // wrong path
        ),
        (
            any::<bool>(), // TSO
            0u32..=2,      // cluster penalty
            prop_oneof![
                Just(shelfsim::uarch::PredictorKind::Gshare),
                Just(shelfsim::uarch::PredictorKind::Tournament),
                Just(shelfsim::uarch::PredictorKind::Tage),
            ],
            prop_oneof![Just(8usize), Just(16), Just(64)], // shelf entries
        ),
    )
        .prop_map(
            |((threads, rob, policy, opt, ssr, narrow, wp), (tso, cluster, pred, shelf))| {
                let mut cfg = if rob == 64 {
                    CoreConfig::base64_shelf64(threads, policy, opt)
                } else {
                    CoreConfig {
                        shelf_entries: 64,
                        steer: policy,
                        same_cycle_shelf_issue: opt,
                        ..CoreConfig::base128(threads)
                    }
                };
                cfg.shelf_entries = shelf;
                cfg.single_ssr = ssr;
                cfg.narrow_shelf_index = narrow;
                cfg.wrong_path_fetch = wp;
                cfg.memory_model = if tso {
                    MemoryModel::Tso
                } else {
                    MemoryModel::Relaxed
                };
                cfg.cluster_forward_penalty = cluster;
                cfg.predictor = pred;
                cfg
            },
        )
}

fn arb_mix(threads: usize, seed: u64) -> Vec<&'static str> {
    let names = suite::names();
    (0..threads)
        .map(|t| names[(seed as usize + 5 * t) % names.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn simulation_invariants_hold(cfg in arb_config(), seed in 0u64..1000) {
        let mix = arb_mix(cfg.threads, seed);
        let mut sim = Simulation::from_names(cfg.clone(), &mix, seed).expect("suite");
        let r = sim.run(1_000, 6_000);
        let c = &r.counters;

        // Liveness: the core must make progress under every configuration.
        prop_assert!(c.committed > 0, "no commits under {cfg:?}");

        // Flow conservation (with slack for work in flight across the
        // measurement boundary: counters reset at measure start, so an
        // instruction may be dispatched during warm-up but issue inside the
        // window; the window never holds more than a few hundred).
        const IN_FLIGHT_SLACK: u64 = 512;
        prop_assert!(c.committed <= c.dispatched + IN_FLIGHT_SLACK);
        prop_assert!(c.issued <= c.dispatched + IN_FLIGHT_SLACK);
        prop_assert!(c.issued_shelf <= c.issued);
        prop_assert!(c.dispatched_shelf <= c.dispatched);
        prop_assert!(c.dispatched <= c.fetched + IN_FLIGHT_SLACK);

        // Shelf accounting: shelf reads (issues) match issued_shelf.
        prop_assert_eq!(c.shelf_reads, c.issued_shelf);
        prop_assert!(c.shelf_writes + IN_FLIGHT_SLACK >= c.issued_shelf);

        // SSR safety: no committed shelf instruction was ever squash-walked.
        prop_assert_eq!(r.late_shelf_commits, 0);

        // Policy coherence.
        if cfg.steer == SteerPolicy::AlwaysIq {
            prop_assert_eq!(c.dispatched_shelf, 0);
        }
        if cfg.steer == SteerPolicy::AlwaysShelf {
            prop_assert_eq!(c.dispatched, c.dispatched_shelf);
        }
    }

    #[test]
    fn determinism_property(cfg in arb_config(), seed in 0u64..1000) {
        let mix = arb_mix(cfg.threads, seed);
        let r1 = Simulation::from_names(cfg.clone(), &mix, seed).expect("suite").run(500, 3_000);
        let r2 = Simulation::from_names(cfg, &mix, seed).expect("suite").run(500, 3_000);
        prop_assert_eq!(r1.counters, r2.counters);
    }

    #[test]
    fn cache_stats_are_consistent(seed in 0u64..1000) {
        let mix = arb_mix(2, seed);
        let mut sim = Simulation::from_names(CoreConfig::base64(2), &mix, seed).expect("suite");
        let r = sim.run(1_000, 5_000);
        prop_assert!(r.l1d.hits <= r.l1d.accesses);
        prop_assert!(r.l1i.hits <= r.l1i.accesses);
        prop_assert!(r.l2.hits <= r.l2.accesses);
        // Every L2 access originates from an L1 miss (no prefetcher).
        prop_assert!(r.l2.accesses <= r.l1d.misses() + r.l1i.misses());
    }
}
