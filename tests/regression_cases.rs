//! Deterministic replays of cases the property tests found historically.
//!
//! The offline proptest shim does not read `.proptest-regressions` files, so
//! every recorded shrink worth keeping is promoted to an explicit test here.

use shelfsim::{suite, CoreConfig, Simulation, SteerPolicy};

/// The mix-selection rule `integration_invariants.rs` uses.
fn mix_for(threads: usize, seed: u64) -> Vec<&'static str> {
    let names = suite::names();
    (0..threads)
        .map(|t| names[(seed as usize + 5 * t) % names.len()])
        .collect()
}

/// Recorded shrink from `integration_invariants.proptest-regressions`:
/// 3 threads on the Base-128 window with a 64-entry practical-steered shelf,
/// conservative same-cycle semantics, and no wrong-path fetch, seed 918.
/// ROB/LQ/SQ partitions divide 128/64 by 3 threads unevenly, which is what
/// made this corner worth recording.
#[test]
fn recorded_base128_three_thread_shelf_case() {
    let cfg = CoreConfig {
        shelf_entries: 64,
        steer: SteerPolicy::Practical,
        same_cycle_shelf_issue: false,
        single_ssr: false,
        narrow_shelf_index: false,
        wrong_path_fetch: false,
        ..CoreConfig::base128(3)
    };
    cfg.validate();
    let seed = 918;
    let mix = mix_for(cfg.threads, seed);
    let mut sim = Simulation::from_names(cfg.clone(), &mix, seed).expect("suite");
    let r = sim.run(1_000, 6_000);
    let c = &r.counters;

    assert!(c.committed > 0, "no commits under {cfg:?}");

    const IN_FLIGHT_SLACK: u64 = 512;
    assert!(c.committed <= c.dispatched + IN_FLIGHT_SLACK);
    assert!(c.issued <= c.dispatched + IN_FLIGHT_SLACK);
    assert!(c.issued_shelf <= c.issued);
    assert!(c.dispatched_shelf <= c.dispatched);
    assert!(c.dispatched <= c.fetched + IN_FLIGHT_SLACK);

    assert_eq!(c.shelf_reads, c.issued_shelf);
    assert!(c.shelf_writes + IN_FLIGHT_SLACK >= c.issued_shelf);

    assert_eq!(r.late_shelf_commits, 0, "SSR safety violated");
}
