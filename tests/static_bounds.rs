//! Soundness of the static IPC bounds and the campaign pre-flight: the
//! simulator must NEVER commit faster than `shelfsim analyze --bounds`
//! predicts, on any kernel or seeded suite mix, and a provably starved
//! configuration must be rejected before a single cycle is simulated.

use shelfsim::analyze::{aggregate_bound, check_adequacy, design_by_name, ipc_bound};
use shelfsim::campaign::{CampaignSpec, FailureKind, RunStatus};
use shelfsim::core::thread_program_seed;
use shelfsim::workload::{asm, kernels, suite, TraceSource};
use shelfsim::{Core, CoreConfig, Simulation};

/// Measurement slack: the bound is exact in the limit, but a finite window
/// can catch the tail of a warm-up backlog draining at commit width.
fn within_bound(measured: f64, bound: f64) -> bool {
    measured <= bound * 1.01 + 0.02
}

/// Measured committed IPC of `program` on `cfg`, single-threaded, using
/// the same warm-up discipline as the CLI `asm` subcommand.
fn measure_kernel(cfg: CoreConfig, program: &shelfsim::workload::program::Program) -> f64 {
    let measure = 20_000u64;
    let mut core = Core::new(cfg, vec![TraceSource::new(program.clone(), 0)]);
    core.warm_caches();
    core.warm_functional(20_000);
    for _ in 0..2_000 {
        core.tick();
    }
    let before = core.committed(0);
    for _ in 0..measure {
        core.tick();
    }
    (core.committed(0) - before) as f64 / measure as f64
}

/// Every kernel in the library, on every evaluated single-thread design:
/// the measured committed IPC must respect the static upper bound.
#[test]
fn kernels_never_exceed_their_static_bound() {
    for design in ["base64", "base128", "shelf-opt"] {
        let cfg = design_by_name(design, 1).expect("known design");
        for k in kernels::all() {
            let program = k.assemble().expect("library kernels assemble");
            let bound = ipc_bound(&program, &cfg).bound;
            let measured = measure_kernel(cfg.clone(), &program);
            assert!(
                within_bound(measured, bound),
                "{design}/{}: measured {measured:.3} exceeds static bound {bound:.3}",
                k.name
            );
        }
    }
}

/// Seeded synthetic suite programs, single- and 4-thread SMT: the measured
/// aggregate IPC must respect the aggregate of the per-thread bounds.
#[test]
fn suite_mixes_never_exceed_the_aggregate_bound() {
    let mixes: [&[&str]; 2] = [&["gcc"], &["gcc", "mcf", "hmmer", "lbm"]];
    for seed in [7u64, 23] {
        for names in mixes {
            for design in ["base64", "shelf-opt"] {
                let cfg = design_by_name(design, names.len()).expect("known design");
                let reports: Vec<_> = names
                    .iter()
                    .enumerate()
                    .map(|(t, n)| {
                        let p = suite::by_name(n)
                            .expect("suite bench")
                            .build_program(thread_program_seed(seed, t));
                        ipc_bound(&p, &cfg)
                    })
                    .collect();
                let bound = aggregate_bound(&reports, &cfg);
                let mut sim = Simulation::from_names(cfg, names, seed).expect("suite benchmarks");
                let r = sim.run(2_000, 10_000);
                assert!(
                    within_bound(r.ipc(), bound),
                    "{design}/{}/seed {seed}: measured {:.3} exceeds bound {bound:.3}",
                    names.join("+"),
                    r.ipc()
                );
            }
        }
    }
}

/// The adequacy prover pins its verdict to source: a starved shelf is
/// reported as an SR001 error whose span points into the kernel file.
#[test]
fn starved_shelf_gets_a_spanned_sr001() {
    let k = kernels::by_name("reduce").expect("in library");
    let (program, lines) = asm::assemble_with_lines(k.source).expect("valid kernel");
    let mut cfg = design_by_name("shelf-inorder", 2).expect("known design");
    cfg.shelf_entries = 2; // 1 entry per thread < the fadd dependence run
    let diags = check_adequacy(&program, &cfg, Some(("reduce.s", &lines)));
    let d = diags
        .iter()
        .find(|d| d.code == "SR001")
        .expect("starvation proven");
    assert_eq!(d.severity, shelfsim::Severity::Error);
    let span = d.span.as_ref().expect("verdict carries a source span");
    assert_eq!(span.file, "reduce.s");
    assert!(span.line > 0);
}

/// End-to-end: the campaign pre-flight rejects an under-provisioned config
/// with zero attempts consumed — no cycle of it is ever simulated.
#[test]
fn campaign_rejects_under_provisioned_config_before_simulation() {
    let mut runs = CampaignSpec::matrix(
        &["shelf-inorder".to_owned()],
        &[vec!["gcc".to_owned(), "mcf".to_owned()]],
        7,
        200,
        1_000,
    );
    runs[0].overrides = vec![("shelf".to_owned(), "2".to_owned())];
    let report = shelfsim::run_campaign(&CampaignSpec::new(runs)).expect("campaign");
    let r = &report.records[0];
    assert_eq!(r.status, RunStatus::Rejected);
    assert_eq!(r.attempts, 0, "rejected before any attempt");
    assert!(r.outcome.is_none());
    assert_eq!(r.failures[0].kind, FailureKind::AnalysisRejected);
    assert!(
        r.failures[0].panic_msg.contains("SR001"),
        "rejection names its proof: {}",
        r.failures[0].panic_msg
    );
}
