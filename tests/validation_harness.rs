//! Differential-validation harness acceptance tests (facade level).
//!
//! The lockstep harness must validate clean on every shipped kernel across
//! every named design point and thread count, on real suite mixes, and
//! across structure-size sensitivity sweeps; its reports must be
//! byte-deterministic; and the hardened counter arithmetic must stay exact
//! at large commit counts.

use shelfsim::analyze::{design_by_name, DESIGN_NAMES};
use shelfsim::core::thread_program_seed;
use shelfsim::validate::{
    render_json, render_text, run_lockstep, run_sweep, CleanStats, LockstepConfig, RunReport,
    SweepPoint, SweepReport, Verdict,
};
use shelfsim::workload::program::Program;
use shelfsim::workload::{balanced_random_mixes, kernels, suite};

fn kernel_programs(name: &str, threads: usize) -> Vec<Program> {
    let k = kernels::by_name(name).expect("kernel exists");
    (0..threads)
        .map(|_| k.assemble().expect("kernel assembles"))
        .collect()
}

fn quick(commits: u64) -> LockstepConfig {
    LockstepConfig {
        commits_per_thread: commits,
        max_cycles: 400_000,
        warmup_insts: 200,
        ..LockstepConfig::default()
    }
}

/// The acceptance matrix: every shipped kernel validates clean on every
/// named design point at 1, 2, and 4 hardware threads — the out-of-order
/// (and shelf, and in-order-shelf) commit streams all match the in-order
/// functional reference exactly.
#[test]
fn every_kernel_validates_clean_on_every_design_and_thread_count() {
    let mut failures = Vec::new();
    for design in DESIGN_NAMES {
        for threads in [1usize, 2, 4] {
            let cfg = design_by_name(design, threads).expect("named design resolves");
            for k in kernels::all() {
                let verdict = run_lockstep(&cfg, &kernel_programs(k.name, threads), &quick(300));
                match verdict {
                    Verdict::Clean(stats) => {
                        if stats.committed != vec![300u64; threads] {
                            failures.push(format!(
                                "{design} x{threads} {}: committed {:?}",
                                k.name, stats.committed
                            ));
                        }
                    }
                    other => failures.push(format!("{design} x{threads} {}: {other:?}", k.name)),
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "divergent combinations:\n{}",
        failures.join("\n")
    );
}

/// Seeded suite mixes (the campaign's workload vocabulary) validate clean
/// on the baseline and the flagship shelf design.
#[test]
fn suite_mixes_validate_clean_on_baseline_and_shelf_designs() {
    let names = suite::names();
    let seed = 7u64;
    let mixes = balanced_random_mixes(&names, 2, names.len(), seed);
    for mix in mixes.iter().take(2) {
        let programs: Vec<Program> = mix
            .benchmarks
            .iter()
            .enumerate()
            .map(|(t, b)| {
                suite::by_name(b)
                    .expect("suite benchmark exists")
                    .build_program(thread_program_seed(seed, t))
            })
            .collect();
        for design in ["base64", "shelf-opt"] {
            let cfg = design_by_name(design, programs.len()).expect("design resolves");
            let verdict = run_lockstep(&cfg, &programs, &quick(500));
            assert!(verdict.is_clean(), "{design} {}: {verdict:?}", mix.label());
        }
    }
}

/// Structure-size sensitivity on a shelf design: growing ROB/IQ/LQ/SQ/shelf
/// one at a time changes *when* instructions retire, never *what* retires —
/// every point validates clean and all commit-stream fingerprints match.
#[test]
fn sensitivity_sweep_is_clean_on_a_shelf_design() {
    let cfg = design_by_name("shelf-opt", 2).expect("shelf-opt resolves");
    let report = run_sweep(&cfg, &kernel_programs("mixed", 2), &quick(500));
    assert!(report.is_clean(), "sweep violation: {:?}", report.violation);
    // base + rob/iq/lq/sq/shelf perturbations.
    assert_eq!(report.points.len(), 6);
    assert!(report.points.iter().any(|p| p.label.starts_with("shelf+")));
}

/// Byte-golden report rendering: the text and JSON renderers are pure
/// functions of the report structure, down to the exact bytes.
#[test]
fn validate_reports_match_their_goldens_byte_for_byte() {
    let stats = CleanStats {
        cycles: 1234,
        committed: vec![1_000, 1_000],
        fingerprints: vec![0xdead, 0xbeef],
    };
    let runs = vec![RunReport {
        design: "base64".to_owned(),
        threads: 2,
        workload: "kernel:daxpy".to_owned(),
        verdict: Verdict::Clean(stats.clone()),
        sweep: Some(SweepReport {
            points: vec![SweepPoint {
                label: "base".to_owned(),
                verdict: Verdict::Clean(stats),
            }],
            violation: None,
        }),
        regression: None,
    }];
    let text = render_text(&runs);
    let golden_text = "validate: 1 runs, 1 clean, 0 diverged, 0 invariant-violations\n  \
                       ok   base64         x2 kernel:daxpy  cycles=1234 committed=2000\n      \
                       sweep base       clean\n";
    assert_eq!(text, golden_text);
    let json = render_json(&runs);
    let golden_json = "{\"schema\":\"shelfsim-validate-v1\",\"runs\":1,\"clean\":1,\
                       \"diverged\":0,\"invariant\":0,\"results\":[\n  \
                       {\"design\":\"base64\",\"threads\":2,\"workload\":\"kernel:daxpy\",\
                       \"verdict\":\"clean\",\"cycles\":1234,\"committed\":2000,\
                       \"sweep\":{\"clean\":true,\"points\":[{\"label\":\"base\",\
                       \"verdict\":\"clean\"}]}}\n]}\n";
    assert_eq!(json, golden_json);
}

/// Satellite: the hardened counter arithmetic stays exact through a large
/// commit count — a 24k-commit validated run still reports every commit,
/// and `acc` itself saturates rather than wrapping at the limit.
#[test]
fn counters_stay_exact_at_large_commit_counts() {
    let lcfg = LockstepConfig {
        commits_per_thread: 12_000,
        max_cycles: 2_000_000,
        warmup_insts: 500,
        ..LockstepConfig::default()
    };
    let cfg = design_by_name("base64", 2).expect("base64 resolves");
    match run_lockstep(&cfg, &kernel_programs("daxpy", 2), &lcfg) {
        Verdict::Clean(stats) => {
            assert_eq!(
                stats.committed,
                vec![12_000u64; 2],
                "no commit lost or double-counted"
            );
            assert!(stats.cycles < 2_000_000);
        }
        other => panic!("expected clean, got: {other:?}"),
    }
    // The accumulator primitive itself: normal adds are exact; at the top
    // of the range release builds peg at u64::MAX instead of wrapping.
    let mut c = u64::MAX - 5;
    shelfsim::core::counters::acc(&mut c, 5);
    assert_eq!(c, u64::MAX);
}
