//! SMT scaling: throughput and in-sequence fraction vs thread count.
//!
//! Reproduces the paper's motivating observation (Hily & Seznec; Figure 1):
//! as SMT thread count grows, aggregate throughput rises while per-thread
//! reordering opportunity falls — more and more instructions issue in
//! program order, and the shelf's usefulness grows with them.
//!
//! ```text
//! cargo run --release --example smt_scaling
//! ```

use shelfsim::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    let pool = [
        "gcc",
        "mcf",
        "hmmer",
        "lbm",
        "perlbench",
        "bwaves",
        "astar",
        "milc",
    ];
    let warmup = 10_000;
    let measure = 40_000;

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>14}",
        "threads", "base IPC", "shelf IPC", "shelf delta", "in-seq (base)"
    );
    for threads in [1usize, 2, 4, 8] {
        let mix: Vec<&str> = pool[..threads].to_vec();

        let mut base = Simulation::from_names(CoreConfig::base64(threads), &mix, 11)
            .expect("suite benchmarks");
        let b = base.run(warmup, measure);

        let shelf_cfg = CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, true);
        let mut shelf = Simulation::from_names(shelf_cfg, &mix, 11).expect("suite benchmarks");
        let s = shelf.run(warmup, measure);

        println!(
            "{:<8} {:>10.3} {:>10.3} {:>+11.1}% {:>13.1}%",
            threads,
            b.ipc(),
            s.ipc(),
            (s.ipc() / b.ipc() - 1.0) * 100.0,
            b.mean_in_sequence_fraction() * 100.0,
        );
    }
    println!("\nexpected: the shelf delta peaks at the 4-thread design point the paper targets;");
    println!("at 8 threads the static partitions (8 shelf / 8 ROB entries per thread) pinch, and");
    println!("at 1-2 threads there is little in-sequence opportunity to harvest.");
}
