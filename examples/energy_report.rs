//! Energy report: per-structure energy breakdown and EDP comparison.
//!
//! Reproduces the paper's energy argument in miniature: the shelf-augmented
//! design spends slightly more power than Base-64 but finishes sooner,
//! winning on energy-delay product, while the IQ CAM dominates per-access
//! energy and the FIFO shelf stays cheap.
//!
//! ```text
//! cargo run --release --example energy_report
//! ```

use shelfsim::{CoreConfig, EnergyModel, Simulation, SteerPolicy};

fn main() {
    let mix = ["perlbench", "soplex", "leslie3d", "omnetpp"];
    let configs: [(&str, CoreConfig); 3] = [
        ("Base-64", CoreConfig::base64(4)),
        (
            "Shelf 64+64",
            CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
        ),
        ("Base-128", CoreConfig::base128(4)),
    ];

    println!("mix: {}\n", mix.join("+"));
    let mut edps = Vec::new();
    for (label, cfg) in configs {
        let model = EnergyModel::for_config(&cfg);
        let mut sim = Simulation::from_names(cfg, &mix, 3).expect("suite benchmarks");
        let run = sim.run(10_000, 40_000);
        let rep = model.report(&run);
        println!(
            "{label}: IPC {:.3}  EPI {:.0}  EDP {:.0}  (dynamic {:.0}%, leakage {:.0}%)",
            run.ipc(),
            rep.energy_per_instruction(),
            rep.edp(),
            rep.dynamic / rep.total() * 100.0,
            rep.leakage / rep.total() * 100.0,
        );
        let mut breakdown = rep.per_structure.clone();
        breakdown.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        print!("  top consumers:");
        for (name, e) in breakdown.iter().take(5) {
            print!("  {name} {:.0}%", e / rep.dynamic * 100.0);
        }
        println!("\n");
        edps.push((label, rep.edp()));
    }

    let base = edps[0].1;
    for (label, edp) in &edps[1..] {
        println!(
            "{label}: EDP {:+.1}% vs Base-64 (negative is better)",
            (edp / base - 1.0) * 100.0
        );
    }
}
