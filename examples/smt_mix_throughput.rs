//! SMT mix throughput: system throughput (STP) across balanced-random mixes.
//!
//! Demonstrates the paper's evaluation methodology end to end on a small
//! sample: generate balanced-random 4-thread mixes (Velasquez et al.),
//! measure each benchmark's single-threaded CPI, then compute the STP of
//! every mix on the baseline and shelf designs.
//!
//! ```text
//! cargo run --release --example smt_mix_throughput [num_mixes]
//! ```

use shelfsim::{balanced_random_mixes, geomean, stp, suite, CoreConfig, Simulation, SteerPolicy};
use std::collections::HashMap;

const WARMUP: u64 = 10_000;
const MEASURE: u64 = 40_000;
const SEED: u64 = 7;

fn single_thread_cpi(cfg_of: impl Fn(usize) -> CoreConfig, name: &str) -> f64 {
    let mut sim = Simulation::from_names(cfg_of(1), &[name], SEED).expect("suite benchmark");
    sim.run(WARMUP, MEASURE).threads[0].cpi
}

fn mix_stp(cfg: CoreConfig, mix: &[&str], st_cpi: &HashMap<&str, f64>) -> f64 {
    let mut sim = Simulation::from_names(cfg, mix, SEED).expect("suite benchmarks");
    let run = sim.run(WARMUP, MEASURE);
    let st: Vec<f64> = mix.iter().map(|b| st_cpi[b]).collect();
    stp(&st, &run.cpis())
}

fn main() {
    let num_mixes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let names = suite::names();
    let mixes = balanced_random_mixes(&names, 4, 28, SEED);
    let sample = &mixes[..num_mixes.min(mixes.len())];

    // Single-threaded CPIs for every benchmark that appears in the sample.
    let mut needed: Vec<&str> = sample.iter().flat_map(|m| m.benchmarks.clone()).collect();
    needed.sort_unstable();
    needed.dedup();

    println!("measuring {} single-threaded baselines...", needed.len());
    let mut st_base: HashMap<&str, f64> = HashMap::new();
    let mut st_shelf: HashMap<&str, f64> = HashMap::new();
    for name in &needed {
        st_base.insert(name, single_thread_cpi(CoreConfig::base64, name));
        st_shelf.insert(
            name,
            single_thread_cpi(
                |t| CoreConfig::base64_shelf64(t, SteerPolicy::Practical, true),
                name,
            ),
        );
    }

    println!(
        "\n{:<44} {:>9} {:>9} {:>8}",
        "mix", "base STP", "shelf STP", "delta"
    );
    let mut deltas = Vec::new();
    for mix in sample {
        let m: Vec<&str> = mix.benchmarks.clone();
        let base = mix_stp(CoreConfig::base64(4), &m, &st_base);
        let shelf = mix_stp(
            CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
            &m,
            &st_shelf,
        );
        let delta = (shelf / base - 1.0) * 100.0;
        deltas.push(shelf / base);
        println!(
            "{:<44} {:>9.3} {:>9.3} {:>+7.1}%",
            mix.label(),
            base,
            shelf,
            delta
        );
    }
    println!(
        "\ngeomean STP improvement: {:+.1}%",
        (geomean(&deltas) - 1.0) * 100.0
    );
}
