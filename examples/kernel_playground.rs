//! Kernel playground: author a microbenchmark in the assembly DSL and
//! compare how the baseline OOO core and the shelf design schedule it.
//!
//! The kernel below is deliberately *adversarial*: a serialized pointer
//! chase with a long dependent tail per hop. The tail is in-sequence, so
//! practical steering shelves a good chunk of it — and on this kernel that
//! is a (small) loss, because a parked shelf head serializes what the
//! two-thread baseline could still buffer in its roomy ROB partitions. The
//! paper's gains live in 4-thread mixes where partitions are tight and SMT
//! hides the parks; directed kernels like this one are exactly how you find
//! the boundary.
//!
//! ```text
//! cargo run --release --example kernel_playground
//! ```

use shelfsim::workload::asm::{assemble, disassemble};
use shelfsim::workload::TraceSource;
use shelfsim::{Core, CoreConfig, SteerPolicy};

const KERNEL: &str = r"
; chase-plus-compute: a serialized pointer chase (~35-cycle L2 hops) with a
; long tail of dependent-but-predictable work per hop. The baseline's
; per-thread ROB fills after ~2 hops; the shelf absorbs the in-sequence
; tail and keeps more chase hops in flight.
top:
    load  r24, [r24], chase, region=l2   ; serialized chase
    add   r8, r24                        ; consume the chase
    add   r9, r8
    add   r10, r9
    add   r11, r10
    mul   r12, r11, r1
    add   r13, r12
    add   r14, r13
    fadd  f8, f8, f0
    fadd  f9, f8, f1
    fmul  f10, f9, f2
    load  r15, [r0], stride=8, region=l1
    add   r16, r15
    store [r2], r16, stride=8, region=l1
    loop  top, trips=400
";

fn run(cfg: CoreConfig, threads: usize) -> (f64, f64) {
    let program = assemble(KERNEL).expect("kernel parses");
    let traces: Vec<TraceSource> = (0..threads)
        .map(|t| TraceSource::new(program.clone(), t))
        .collect();
    let mut core = Core::new(cfg, traces);
    core.warm_caches();
    core.warm_functional(20_000);
    for _ in 0..3_000 {
        core.tick();
    }
    let c0: Vec<u64> = (0..threads).map(|t| core.committed(t)).collect();
    for _ in 0..20_000 {
        core.tick();
    }
    let committed: u64 = (0..threads).map(|t| core.committed(t) - c0[t]).sum();
    let shelf_frac = core.counters.shelf_dispatch_fraction();
    (committed as f64 / 20_000.0, shelf_frac)
}

fn main() {
    println!("kernel:\n{KERNEL}");
    println!(
        "disassembles back to:\n{}",
        disassemble(&assemble(KERNEL).expect("parses"))
    );

    println!(
        "{:<26} {:>8} {:>12}",
        "design (2 threads)", "IPC", "shelf usage"
    );
    for (label, cfg) in [
        ("Base-64", CoreConfig::base64(2)),
        (
            "Shelf 64+64 practical",
            CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true),
        ),
        (
            "Shelf 64+64 oracle",
            CoreConfig::base64_shelf64(2, SteerPolicy::Oracle, true),
        ),
        (
            "All-shelf (in-order)",
            CoreConfig::base64_shelf64(2, SteerPolicy::AlwaysShelf, true),
        ),
    ] {
        let (ipc, frac) = run(cfg, 2);
        println!("{:<26} {:>8.3} {:>11.0}%", label, ipc, frac * 100.0);
    }
}
