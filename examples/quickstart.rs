//! Quickstart: simulate the paper's headline configuration.
//!
//! Runs a 4-thread SMT mix on the Base-64 core and on the shelf-augmented
//! 64+64 core, and prints the throughput improvement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shelfsim::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    let mix = ["gcc", "mcf", "hmmer", "lbm"];
    let warmup = 10_000;
    let measure = 40_000;

    println!("mix: {}", mix.join("+"));

    // Baseline: 4-thread OOO, 64-entry ROB, 32-entry IQ/LQ/SQ (Table I).
    let base_cfg = CoreConfig::base64(4);
    let mut base = Simulation::from_names(base_cfg, &mix, 42).expect("suite benchmarks");
    let base_run = base.run(warmup, measure);
    println!("Base-64      IPC {:.3}", base_run.ipc());

    // Shelf-augmented: same core plus a 64-entry shelf, practical steering.
    let shelf_cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    let mut shelf = Simulation::from_names(shelf_cfg, &mix, 42).expect("suite benchmarks");
    let shelf_run = shelf.run(warmup, measure);
    println!(
        "Shelf 64+64  IPC {:.3}  ({:+.1}%)  — {:.0}% of instructions took the shelf",
        shelf_run.ipc(),
        (shelf_run.ipc() / base_run.ipc() - 1.0) * 100.0,
        shelf_run.counters.shelf_dispatch_fraction() * 100.0,
    );

    // Upper bound: every structure doubled.
    let big_cfg = CoreConfig::base128(4);
    let mut big = Simulation::from_names(big_cfg, &mix, 42).expect("suite benchmarks");
    let big_run = big.run(warmup, measure);
    println!(
        "Base-128     IPC {:.3}  ({:+.1}%)  — the upper bound the shelf chases",
        big_run.ipc(),
        (big_run.ipc() / base_run.ipc() - 1.0) * 100.0,
    );

    println!("\nper-thread CPI on the shelf design:");
    for t in &shelf_run.threads {
        println!(
            "  {:<10} cpi {:>7.2}   in-sequence {:>5.1}%   mispredict {:>4.1}%",
            t.benchmark,
            t.cpi,
            t.in_sequence_fraction * 100.0,
            t.branch_mispredict_ratio * 100.0,
        );
    }
}
