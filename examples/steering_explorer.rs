//! Steering explorer: compare every steering policy on one mix.
//!
//! Shows how the steering decision drives the hybrid window: always-IQ
//! degenerates to the baseline OOO, always-shelf approaches an in-order
//! core, and the practical and oracle policies land in between, with the
//! shelf absorbing the in-sequence instructions.
//!
//! ```text
//! cargo run --release --example steering_explorer [bench1 bench2 bench3 bench4]
//! ```

use shelfsim::{CoreConfig, Simulation, SteerPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mix: Vec<&str> = if args.len() == 4 {
        args.iter().map(String::as_str).collect()
    } else {
        vec!["xalancbmk", "astar", "milc", "bwaves"]
    };
    println!("mix: {}   ({MEASURE} cycles measured)\n", mix.join("+"));
    println!(
        "{:<22} {:>7} {:>12} {:>12} {:>12}",
        "policy", "IPC", "shelf-dispat", "shelf-issue", "mis-steer"
    );

    let base = run(CoreConfig::base64(4), &mix);
    println!(
        "{:<22} {:>7.3} {:>11.1}% {:>11.1}% {:>12}",
        "no shelf (Base-64)", base.0, 0.0, 0.0, "-"
    );

    for (label, policy) in [
        ("always-IQ", SteerPolicy::AlwaysIq),
        ("always-shelf", SteerPolicy::AlwaysShelf),
        ("practical (RCT/PLT)", SteerPolicy::Practical),
        ("oracle (greedy)", SteerPolicy::Oracle),
    ] {
        let cfg = CoreConfig::base64_shelf64(4, policy, true);
        let (ipc, disp, iss, missteer) = run(cfg, &mix);
        let ms = if policy == SteerPolicy::Practical {
            format!("{:.1}%", missteer * 100.0)
        } else {
            "-".to_owned()
        };
        println!(
            "{:<22} {:>7.3} {:>11.1}% {:>11.1}% {:>12}",
            label,
            ipc,
            disp * 100.0,
            iss * 100.0,
            ms
        );
    }
    println!("\n(mis-steer: practical decisions that disagree with a shadow oracle, paper ~16%)");
}

const WARMUP: u64 = 10_000;
const MEASURE: u64 = 40_000;

fn run(cfg: CoreConfig, mix: &[&str]) -> (f64, f64, f64, f64) {
    let mut sim = Simulation::from_names(cfg, mix, 9).expect("suite benchmarks");
    let r = sim.run(WARMUP, MEASURE);
    let issued = r.counters.issued.max(1);
    let missteer = r.threads.iter().map(|t| t.missteer_rate).sum::<f64>() / r.threads.len() as f64;
    (
        r.ipc(),
        r.counters.shelf_dispatch_fraction(),
        r.counters.issued_shelf as f64 / issued as f64,
        missteer,
    )
}
