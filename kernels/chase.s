; serialized pointer chase across a memory-bound region, with independent
; ALU work the OOO core can overlap (and an in-order core cannot)
top:
    load  r24, [r24], chase, region=mem
    add   r8, r8
    add   r9, r9
    add   r10, r10
    mul   r11, r8, r9
    loop  top, trips=500
