; store-to-load forwarding chain through one memory cell
top:
    add   r9, r10
    store [r0], r9, stride=0, region=l1
    load  r10, [r0], stride=0, region=l1
    loop  top, trips=300
