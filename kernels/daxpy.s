; daxpy-like kernel: y[i] = a*x[i] + y[i] over an L2-resident array
top:
    load  f8, [r0], stride=8, region=l2     ; x[i]
    fmul  f9, f8, f0                        ; a * x[i]
    load  f10, [r1], stride=8, region=l2    ; y[i]
    fadd  f11, f9, f10
    store [r1], f11, stride=8, region=l2
    loop  top, trips=200
