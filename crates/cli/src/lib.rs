//! Implementation of the `shelfsim` command-line interface.
//!
//! The CLI wraps the simulator for interactive exploration:
//!
//! ```text
//! shelfsim suite                         # list the benchmark suite
//! shelfsim run --design shelf-opt --mix gcc,mcf,hmmer,lbm
//! shelfsim compare --mix gcc,mcf,hmmer,lbm
//! shelfsim mixes --threads 4 --count 5
//! shelfsim sweep --param shelf --values 16,32,64,128 --mix gcc,mcf,hmmer,lbm
//! ```
//!
//! Everything is plumbed through [`run_cli`] so the argument handling is
//! unit-testable without spawning a process.

use shelfsim::{balanced_random_mixes, suite, CoreConfig, EnergyModel, MemoryModel, Simulation};
use std::fmt::Write as _;

/// Process exit codes, one per CLI failure class. `main` maps a
/// [`CliError`] to its `code`, so scripts can tell a mistyped flag from a
/// real differential-validation failure without parsing stderr.
pub mod exit_codes {
    /// Simulation, configuration, or I/O failure.
    pub const GENERAL: u8 = 1;
    /// Bad command line: unknown command/option or malformed flag value.
    pub const USAGE: u8 = 2;
    /// `validate`: the core's commit stream diverged from the functional
    /// reference.
    pub const DIVERGENCE: u8 = 3;
    /// `validate`: a cross-cutting invariant (commit counts, stall
    /// attribution, sweep stream identity) failed.
    pub const INVARIANT: u8 = 4;
}

/// A parse or execution error with a user-facing message and the process
/// exit code its class maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// User-facing message.
    pub message: String,
    /// Process exit code (see [`exit_codes`]).
    pub code: u8,
}

impl CliError {
    fn new(message: impl Into<String>, code: u8) -> Self {
        CliError {
            message: message.into(),
            code,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError::new(msg, exit_codes::GENERAL)
}

/// A usage error: bad command line rather than a failed run.
fn uerr(msg: impl Into<String>) -> CliError {
    CliError::new(msg, exit_codes::USAGE)
}

/// Parses a numeric flag value, echoing the offending text on failure
/// (`--warmup: invalid number \`abc\``).
fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| uerr(format!("{flag}: invalid number `{value}`")))
}

/// Parsed common options.
#[derive(Debug, Clone)]
struct Options {
    design: String,
    mix: Vec<String>,
    warmup: u64,
    measure: u64,
    /// Equal-work mode: run until every thread commits this many
    /// instructions (with `measure` as the cycle budget).
    until: Option<u64>,
    seed: u64,
    tso: bool,
    json: bool,
    /// Trace: lifecycle ring capacity (instructions retained per export).
    window: usize,
    /// Trace: occupancy sampling period in cycles.
    sample: u64,
    /// Trace: write the JSONL export here.
    jsonl: Option<String>,
    /// Trace: write the Chrome trace-event export here (Perfetto-loadable).
    chrome: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            design: "shelf-opt".to_owned(),
            mix: vec![],
            warmup: 10_000,
            measure: 40_000,
            until: None,
            seed: 7,
            tso: false,
            json: false,
            window: 256,
            sample: 8,
            jsonl: None,
            chrome: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| uerr(format!("{name} requires a value")))
        };
        match a.as_str() {
            "--design" => o.design = val("--design")?,
            "--mix" => {
                o.mix = val("--mix")?.split(',').map(str::to_owned).collect();
            }
            "--warmup" => o.warmup = parse_num("--warmup", &val("--warmup")?)?,
            "--measure" => o.measure = parse_num("--measure", &val("--measure")?)?,
            "--until" => o.until = Some(parse_num("--until", &val("--until")?)?),
            "--seed" => o.seed = parse_num("--seed", &val("--seed")?)?,
            "--tso" => o.tso = true,
            "--json" => o.json = true,
            "--window" => o.window = parse_num("--window", &val("--window")?)?,
            "--sample" => o.sample = parse_num("--sample", &val("--sample")?)?,
            "--jsonl" => o.jsonl = Some(val("--jsonl")?),
            "--chrome" => o.chrome = Some(val("--chrome")?),
            other => return Err(uerr(format!("unknown option `{other}`"))),
        }
    }
    Ok(o)
}

/// Builds the configuration named by `--design` for `threads` contexts.
/// The design table lives in `shelfsim::analyze` (one source of truth for
/// the CLI, the linter, and the campaign runner).
pub fn design_config(name: &str, threads: usize) -> Result<CoreConfig, CliError> {
    shelfsim::analyze::design_by_name(name, threads).ok_or_else(|| unknown_design(name))
}

/// The standard "unknown design" error, listing every valid name. A bad
/// `--design` value is a usage error, like any other malformed flag.
fn unknown_design(name: &str) -> CliError {
    uerr(format!(
        "unknown design `{name}` (expected one of: {})",
        shelfsim::analyze::DESIGN_NAMES.join(", ")
    ))
}

fn run_one(
    cfg: CoreConfig,
    mix: &[String],
    o: &Options,
    out: &mut String,
) -> Result<f64, CliError> {
    let names: Vec<&str> = mix.iter().map(String::as_str).collect();
    let model = EnergyModel::for_config(&cfg);
    let mut sim = Simulation::from_names(cfg, &names, o.seed).map_err(|e| err(e.to_string()))?;
    // `--until N` switches to equal-work measurement: run until every
    // thread commits N instructions, with `--measure` as the cycle budget.
    // The completion tag in the output says whether the target was reached
    // or the budget expired (formerly silent truncation).
    let r = match o.until {
        Some(insts) => sim.run_until_committed(o.warmup, insts, o.measure),
        None => sim.run(o.warmup, o.measure),
    };
    let rep = model.report(&r);
    if o.json {
        let threads: Vec<String> = r
            .threads
            .iter()
            .map(|t| {
                format!(
                    r#"{{"benchmark":"{}","committed":{},"cpi":{:.4},"in_sequence":{:.4},"mispredict":{:.4}}}"#,
                    t.benchmark,
                    t.committed,
                    t.cpi,
                    t.in_sequence_fraction,
                    t.branch_mispredict_ratio
                )
            })
            .collect();
        writeln!(
            out,
            r#"{{"ipc":{:.4},"cycles":{},"completion":"{}","shelf_fraction":{:.4},"epi":{:.2},"edp":{:.2},"threads":[{}]}}"#,
            r.ipc(),
            r.cycles,
            r.completion.as_str(),
            r.counters.shelf_dispatch_fraction(),
            rep.energy_per_instruction(),
            rep.edp(),
            threads.join(",")
        )
        .expect("write to string");
    } else {
        writeln!(out, "mix: {}", mix.join("+")).expect("write");
        writeln!(
            out,
            "IPC {:.3}   shelf {:.0}%   EPI {:.0}   EDP {:.0}   ({} cycles measured, {})",
            r.ipc(),
            r.counters.shelf_dispatch_fraction() * 100.0,
            rep.energy_per_instruction(),
            rep.edp(),
            r.cycles,
            if r.completion.is_truncated() {
                "TRUNCATED: max cycles expired before the commit target"
            } else {
                r.completion.as_str()
            }
        )
        .expect("write");
        for t in &r.threads {
            writeln!(
                out,
                "  {:<12} cpi {:>8.2}   in-seq {:>5.1}%   mispredict {:>5.1}%",
                t.benchmark,
                t.cpi,
                t.in_sequence_fraction * 100.0,
                t.branch_mispredict_ratio * 100.0
            )
            .expect("write");
        }
        writeln!(
            out,
            "mean occupancy: ROB {:.1}  IQ {:.1}  LQ {:.1}  SQ {:.1}  shelf {:.1}  rename-regs {:.1}",
            r.counters.mean_occupancy(0),
            r.counters.mean_occupancy(1),
            r.counters.mean_occupancy(2),
            r.counters.mean_occupancy(3),
            r.counters.mean_occupancy(4),
            r.counters.mean_occupancy(5),
        )
        .expect("write");
    }
    Ok(r.ipc())
}

/// Executes the CLI for `args` (without the program name); returns the text
/// to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad arguments or
/// unknown benchmarks.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    let Some(cmd) = args.first() else {
        return Err(uerr(USAGE));
    };
    match cmd.as_str() {
        "kernels" => {
            for k in shelfsim::workload::kernels::all() {
                writeln!(out, "{:<10} {}", k.name, k.description).expect("write");
            }
        }
        "suite" => {
            for p in suite::all() {
                writeln!(
                    out,
                    "{:<12} loads {:>4.0}%  stores {:>4.0}%  branches {:>4.0}%  fp {:>4.0}%  chase {:>4.0}%",
                    p.name,
                    p.frac_load * 100.0,
                    p.frac_store * 100.0,
                    p.frac_branch * 100.0,
                    p.frac_fp * 100.0,
                    p.pointer_chase * 100.0
                )
                .expect("write");
            }
        }
        "mixes" => {
            let mut threads = 4usize;
            let mut count = 28usize;
            let mut seed = 7u64;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let v = it
                    .next()
                    .ok_or_else(|| uerr(format!("{a} requires a value")))?;
                match a.as_str() {
                    "--threads" => threads = parse_num("--threads", v)?,
                    "--count" => count = parse_num("--count", v)?,
                    "--seed" => seed = parse_num("--seed", v)?,
                    other => return Err(uerr(format!("unknown option `{other}`"))),
                }
            }
            let names = suite::names();
            for m in balanced_random_mixes(&names, threads, 28, seed)
                .iter()
                .take(count)
            {
                writeln!(out, "{}", m.label()).expect("write");
            }
        }
        "run" => {
            let o = parse_options(&args[1..])?;
            if o.mix.is_empty() {
                return Err(uerr("run requires --mix bench1,bench2,..."));
            }
            let mut cfg = design_config(&o.design, o.mix.len())?;
            if o.tso {
                cfg.memory_model = MemoryModel::Tso;
            }
            run_one(cfg, &o.mix.clone(), &o, &mut out)?;
        }
        "compare" => {
            let o = parse_options(&args[1..])?;
            if o.mix.is_empty() {
                return Err(uerr("compare requires --mix bench1,bench2,..."));
            }
            // The first design (base64) is the comparison baseline; a
            // baseline that committed nothing renders its deltas as `n/a`
            // instead of aborting the whole comparison.
            let mut base_ipc: Option<f64> = None;
            for design in [
                "base64",
                "shelf-cons",
                "shelf-opt",
                "shelf-oracle",
                "base128",
            ] {
                let mut cfg = design_config(design, o.mix.len())?;
                if o.tso {
                    cfg.memory_model = MemoryModel::Tso;
                }
                writeln!(out, "== {design}").expect("write");
                let ipc = run_one(cfg, &o.mix.clone(), &o, &mut out)?;
                match base_ipc {
                    None => base_ipc = Some(ipc),
                    Some(base) if !o.json => {
                        writeln!(
                            out,
                            "IPC vs base64: {}",
                            shelfsim::stats::render_delta(shelfsim::stats::percent_delta(
                                base, ipc
                            ))
                        )
                        .expect("write");
                    }
                    Some(_) => {}
                }
            }
        }
        "sweep" => {
            // Two modes share the verb: the legacy structural parameter
            // sweep (`--param/--values`) and the matrix mode (full design ×
            // thread-count × mix matrix on the work-stealing campaign pool).
            // Any matrix-only flag selects the matrix mode.
            const MATRIX_FLAGS: &[&str] = &[
                "--designs",
                "--thread-counts",
                "--mixes",
                "--workers",
                "--journal-dir",
                "--dry-run",
                "--pareto",
            ];
            if args[1..].iter().any(|a| MATRIX_FLAGS.contains(&a.as_str())) {
                out.push_str(&sweep_matrix(&args[1..])?);
                return Ok(out);
            }
            let mut param = String::new();
            let mut values: Vec<usize> = vec![];
            let mut rest: Vec<String> = vec![];
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--param" => {
                        param = it
                            .next()
                            .ok_or_else(|| uerr("--param needs a value"))?
                            .clone()
                    }
                    "--values" => {
                        let v = it.next().ok_or_else(|| uerr("--values needs a value"))?;
                        values = v
                            .split(',')
                            .map(|x| parse_num("--values", x))
                            .collect::<Result<_, _>>()?;
                    }
                    other => {
                        rest.push(other.to_owned());
                        if let Some(v) = it.next() {
                            rest.push(v.clone());
                        }
                    }
                }
            }
            let o = parse_options(&rest)?;
            if o.mix.is_empty() || param.is_empty() || values.is_empty() {
                return Err(err("sweep requires --param, --values and --mix"));
            }
            for v in values {
                let mut cfg = design_config(&o.design, o.mix.len())?;
                match param.as_str() {
                    "shelf" => cfg.shelf_entries = v,
                    "rob" => cfg.rob_entries = v,
                    "iq" => cfg.iq_entries = v,
                    "lq" => cfg.lq_entries = v,
                    "sq" => cfg.sq_entries = v,
                    "rct-bits" => cfg.rct_bits = v as u32,
                    "plt-columns" => cfg.plt_columns = v as u32,
                    other => return Err(err(format!("unknown sweep parameter `{other}`"))),
                }
                writeln!(out, "== {param} = {v}").expect("write");
                run_one(cfg, &o.mix.clone(), &o, &mut out)?;
            }
        }
        "characterize" => {
            // Functional characterization of benchmarks: measured mix and
            // working-set footprints over a fixed instruction sample.
            let names: Vec<&'static str> =
                if let Some(first) = args.get(1).filter(|a| !a.starts_with("--")) {
                    let name = suite::by_name(first)
                        .ok_or_else(|| err(format!("unknown benchmark `{first}`")))?
                        .name;
                    vec![name]
                } else {
                    suite::names()
                };
            writeln!(
                out,
                "{:<12} {:>6} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
                "benchmark", "load%", "store%", "br%", "fp%", "code-set", "data-set", "mpki-ish"
            )
            .expect("write");
            for name in names {
                let profile = suite::by_name(name).expect("suite");
                let mut t = shelfsim::workload::TraceSource::new(profile.build_program(7), 0);
                let sample = 100_000u64;
                let (mut ld, mut st, mut br, mut fp) = (0u64, 0u64, 0u64, 0u64);
                let mut code: std::collections::HashSet<u64> = Default::default();
                let mut data: std::collections::HashSet<u64> = Default::default();
                let mut bp =
                    shelfsim::uarch::BranchPredictor::new(shelfsim::uarch::BranchPredictorConfig {
                        kind: shelfsim::uarch::PredictorKind::Tournament,
                        ..Default::default()
                    });
                let mut wrong = 0u64;
                // The first half of the sample warms the predictor; only the
                // second half is measured.
                for n in 0..2 * sample {
                    let measured = n >= sample;
                    let (_, i) = t.fetch();
                    if measured {
                        code.insert(i.pc >> 6);
                        match i.op {
                            shelfsim::isa::OpClass::Load => ld += 1,
                            shelfsim::isa::OpClass::Store => st += 1,
                            shelfsim::isa::OpClass::Branch => br += 1,
                            op if op.fu_kind() == shelfsim::isa::FuKind::Fp => fp += 1,
                            _ => {}
                        }
                        if let Some(m) = i.mem {
                            data.insert(m.addr >> 6);
                        }
                    }
                    if let Some(b) = i.branch {
                        let pred = bp.predict(i.pc, b.is_return);
                        let bad = bp.update(
                            i.pc,
                            pred,
                            b.taken,
                            b.next_pc,
                            b.is_call,
                            b.is_return,
                            i.pc + 4,
                        );
                        if measured && bad {
                            wrong += 1;
                        }
                    }
                }
                let pct = |n: u64| n as f64 / sample as f64 * 100.0;
                writeln!(
                    out,
                    "{:<12} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>7}KB {:>7}KB {:>9.1}",
                    name,
                    pct(ld),
                    pct(st),
                    pct(br),
                    pct(fp),
                    code.len() * 64 / 1024,
                    data.len() * 64 / 1024,
                    wrong as f64 / (sample as f64 / 1000.0),
                )
                .expect("write");
            }
        }
        "asm" => {
            // First positional argument: the kernel file.
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return Err(err("asm requires a kernel file path"));
            };
            let program = if let Some(name) = path.strip_prefix("builtin:") {
                shelfsim::workload::kernels::by_name(name)
                    .ok_or_else(|| err(format!("unknown builtin kernel `{name}`")))?
                    .assemble()
                    .map_err(|e| err(format!("builtin {name}: {e}")))?
            } else {
                let src = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
                shelfsim::workload::asm::assemble(&src).map_err(|e| err(format!("{path}: {e}")))?
            };
            let o = parse_options(&args[2..])?;
            let threads = if o.mix.is_empty() {
                1
            } else {
                o.mix.len().max(1)
            };
            let mut cfg = design_config(&o.design, threads)?;
            if o.tso {
                cfg.memory_model = MemoryModel::Tso;
            }
            // Run the same kernel on every thread.
            let traces: Vec<shelfsim::workload::TraceSource> = (0..threads)
                .map(|t| shelfsim::workload::TraceSource::new(program.clone(), t))
                .collect();
            let mut core = shelfsim::Core::new(cfg, traces);
            core.warm_caches();
            core.warm_functional(20_000);
            core.tick_bounded(o.warmup);
            let c0: Vec<u64> = (0..threads).map(|t| core.committed(t)).collect();
            core.tick_bounded(o.measure);
            let total: u64 = (0..threads).map(|t| core.committed(t) - c0[t]).sum();
            writeln!(
                out,
                "kernel {path} x{threads} threads: IPC {:.3} over {} cycles",
                total as f64 / o.measure as f64,
                o.measure
            )
            .expect("write");
            for (t, &before) in c0.iter().enumerate() {
                let committed = core.committed(t) - before;
                writeln!(
                    out,
                    "  t{t}: {} committed, CPI {:.2}, in-seq {:.1}%",
                    committed,
                    o.measure as f64 / committed.max(1) as f64,
                    core.classifier(t).in_sequence_fraction() * 100.0
                )
                .expect("write");
            }
        }
        "trace" => {
            let o = parse_options(&args[1..])?;
            if o.mix.is_empty() {
                return Err(uerr("trace requires --mix bench1,bench2,..."));
            }
            let mut cfg = design_config(&o.design, o.mix.len())?;
            if o.tso {
                cfg.memory_model = MemoryModel::Tso;
            }
            let names: Vec<&str> = o.mix.iter().map(String::as_str).collect();
            let mut sim =
                Simulation::from_names(cfg, &names, o.seed).map_err(|e| err(e.to_string()))?;
            sim.enable_commit_log(48);
            if o.window == 0 {
                return Err(err("--window must be at least 1"));
            }
            sim.enable_tracer(o.window, o.sample.max(1));
            let _ = sim.run(o.warmup, o.measure);
            writeln!(
                out,
                "{:<4} {:>8} {:<8} {:<6} {:>7} {:>8} {:>7} {:>8} {:>7}  pipeline",
                "thr", "seq", "op", "queue", "fetch", "dispatch", "issue", "complete", "commit"
            )
            .expect("write");
            let records: Vec<_> = sim.core().commit_log().copied().collect();
            let base = records.iter().map(|r| r.fetch).min().unwrap_or(0);
            for r in &records {
                let lane = |c: u64| ((c - base) / 2).min(38) as usize;
                let mut bar = vec![b'.'; 40];
                bar[lane(r.fetch)] = b'F';
                bar[lane(r.dispatch)] = b'D';
                bar[lane(r.issue)] = b'I';
                bar[lane(r.complete)] = b'C';
                bar[lane(r.commit)] = b'R';
                writeln!(
                    out,
                    "t{:<3} {:>8} {:<8} {:<6} {:>7} {:>8} {:>7} {:>8} {:>7}  {}{}",
                    r.thread,
                    r.seq,
                    r.op.to_string(),
                    match r.steer {
                        shelfsim::core::Steer::Iq => "IQ",
                        shelfsim::core::Steer::Shelf => "shelf",
                    },
                    r.fetch,
                    r.dispatch,
                    r.issue,
                    r.complete,
                    r.commit,
                    String::from_utf8_lossy(&bar),
                    if r.in_sequence { "  in-seq" } else { "" }
                )
                .expect("write");
            }
            let tracer = sim.tracer().expect("tracer enabled above");
            out.push_str("\nstall attribution (% of measured cycles per thread):\n");
            out.push_str(&tracer.stall_summary());
            if let Some(path) = &o.jsonl {
                std::fs::write(path, tracer.export_jsonl())
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                writeln!(out, "wrote {path}").expect("write");
            }
            if let Some(path) = &o.chrome {
                std::fs::write(path, tracer.export_chrome())
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                writeln!(out, "wrote {path}").expect("write");
            }
        }
        "campaign" => {
            let mut designs: Vec<String> = vec!["base64".to_owned(), "shelf-opt".to_owned()];
            let mut threads = 4usize;
            let mut mix_count = 4usize;
            let mut explicit_mixes: Vec<Vec<String>> = vec![];
            let mut seed = 7u64;
            let mut warmup = 2_000u64;
            let mut measure = 10_000u64;
            let mut watchdog: Option<u64> = Some(100_000);
            let mut attempts = 3u32;
            let mut workers = 2usize;
            let mut journal: Option<String> = None;
            let mut trace_dir: Option<String> = None;
            let mut fault_mix = shelfsim::FaultMix::default();
            let mut fault_seed = 0u64;
            let mut json = false;
            let mut preflight = true;
            let mut validate = false;
            let mut overrides: Vec<(String, String)> = vec![];
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--json" {
                    json = true;
                    continue;
                }
                if a == "--no-preflight" {
                    preflight = false;
                    continue;
                }
                if a == "--validate" {
                    validate = true;
                    continue;
                }
                let v = it
                    .next()
                    .ok_or_else(|| uerr(format!("{a} requires a value")))?;
                match a.as_str() {
                    "--designs" => {
                        designs = v.split(',').map(str::to_owned).collect();
                        for d in &designs {
                            design_config(d, 1)?;
                        }
                    }
                    "--threads" => threads = parse_num("--threads", v)?,
                    "--mixes" => mix_count = parse_num("--mixes", v)?,
                    "--mix" => {
                        explicit_mixes.push(v.split(',').map(str::to_owned).collect());
                    }
                    "--seed" => seed = parse_num("--seed", v)?,
                    "--warmup" => warmup = parse_num("--warmup", v)?,
                    "--measure" => measure = parse_num("--measure", v)?,
                    "--watchdog" => {
                        let w: u64 = parse_num("--watchdog", v)?;
                        watchdog = (w > 0).then_some(w);
                    }
                    "--attempts" => attempts = parse_num("--attempts", v)?,
                    "--workers" => workers = parse_num("--workers", v)?,
                    "--journal" => journal = Some(v.clone()),
                    "--trace-dir" => trace_dir = Some(v.clone()),
                    "--fault-panics" => fault_mix.panics = parse_num("--fault-panics", v)?,
                    "--fault-persistent-panics" => {
                        fault_mix.persistent_panics = parse_num("--fault-persistent-panics", v)?
                    }
                    "--fault-stalls" => fault_mix.stalls = parse_num("--fault-stalls", v)?,
                    "--fault-livelocks" => fault_mix.livelocks = parse_num("--fault-livelocks", v)?,
                    "--fault-seed" => fault_seed = parse_num("--fault-seed", v)?,
                    "--override" => {
                        let (k, val) = v.split_once('=').ok_or_else(|| {
                            err(format!("--override: expected key=value, got `{v}`"))
                        })?;
                        overrides.push((k.to_owned(), val.to_owned()));
                    }
                    other => return Err(uerr(format!("unknown option `{other}`"))),
                }
            }
            let mixes: Vec<Vec<String>> = if explicit_mixes.is_empty() {
                let names = suite::names();
                balanced_random_mixes(&names, threads, names.len(), seed)
                    .iter()
                    .take(mix_count)
                    .map(|m| m.benchmarks.iter().map(|b| (*b).to_owned()).collect())
                    .collect()
            } else {
                explicit_mixes
            };
            let mut runs = shelfsim::CampaignSpec::matrix(&designs, &mixes, seed, warmup, measure);
            if !overrides.is_empty() {
                for r in &mut runs {
                    r.overrides = overrides.clone();
                }
                // Surface a malformed override as an argument error up front
                // rather than quarantining every run one by one.
                if let Some(r) = runs.first() {
                    r.resolved_config().map_err(err)?;
                }
            }
            let n_runs = runs.len();
            let n_faults = fault_mix.panics
                + fault_mix.persistent_panics
                + fault_mix.stalls
                + fault_mix.livelocks;
            if n_faults > n_runs {
                return Err(err(format!(
                    "fault injection wants {n_faults} victim runs but the campaign has only \
                     {n_runs}"
                )));
            }
            let mut spec = shelfsim::CampaignSpec::new(runs)
                .with_watchdog(watchdog)
                .with_max_attempts(attempts)
                .with_workers(workers)
                .with_preflight(preflight)
                .with_validate(validate);
            if let Some(path) = journal {
                spec = spec.with_journal(path);
            }
            if let Some(dir) = trace_dir {
                spec = spec.with_trace_dir(dir);
            }
            if n_faults > 0 {
                spec = spec.with_faults(shelfsim::FaultPlan::seeded(fault_seed, n_runs, fault_mix));
            }
            let report =
                shelfsim::run_campaign(&spec).map_err(|e| err(format!("campaign journal: {e}")))?;
            out.push_str(&if json {
                let mut j = report.render_json();
                j.push('\n');
                j
            } else {
                report.render_text()
            });
        }
        "analyze" => {
            let mut bounds = false;
            let mut design = "shelf-opt".to_owned();
            let mut threads = 1usize;
            let mut seed = 7u64;
            let mut format_json = false;
            let mut targets: Vec<String> = vec![];
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--bounds" => bounds = true,
                    "--json" => format_json = true,
                    "--design" => {
                        design = it
                            .next()
                            .ok_or_else(|| uerr("--design requires a value"))?
                            .clone()
                    }
                    "--threads" => {
                        threads = parse_num(
                            "--threads",
                            it.next()
                                .ok_or_else(|| uerr("--threads requires a value"))?,
                        )?
                    }
                    "--seed" => {
                        seed = parse_num(
                            "--seed",
                            it.next().ok_or_else(|| uerr("--seed requires a value"))?,
                        )?
                    }
                    other if other.starts_with("--") => {
                        return Err(uerr(format!("unknown option `{other}`")))
                    }
                    target => targets.push(target.to_owned()),
                }
            }
            if targets.is_empty() {
                return Err(err(
                    "analyze requires at least one TARGET (.s kernel file, built-in \
                     kernel name, or suite benchmark name)",
                ));
            }
            let cfg = design_config(&design, threads)?;
            let mut diags = shelfsim::analyze::lint_config(&cfg);
            // Each target resolves to a program: a `.s` file keeps its
            // source spans, a built-in kernel or suite benchmark does not.
            let mut programs: Vec<(String, shelfsim::workload::program::Program)> = vec![];
            for target in &targets {
                if target.ends_with(".s") {
                    let text = std::fs::read_to_string(target)
                        .map_err(|e| err(format!("cannot read `{target}`: {e}")))?;
                    match shelfsim::workload::asm::assemble_with_lines(&text) {
                        Ok((program, lines)) => {
                            diags.extend(shelfsim::analyze::lint_program(
                                &program,
                                Some((target, &lines)),
                            ));
                            diags.extend(shelfsim::analyze::check_adequacy(
                                &program,
                                &cfg,
                                Some((target, &lines)),
                            ));
                            programs.push((target.clone(), program));
                        }
                        Err(e) => diags.push(
                            shelfsim::Diagnostic::new(
                                "SA000",
                                shelfsim::Severity::Error,
                                format!("assembly failed: {}", e.message),
                            )
                            .with_span(target, e.line),
                        ),
                    }
                } else {
                    let program = if let Some(k) = shelfsim::workload::kernels::by_name(target) {
                        k.assemble().map_err(|e| err(format!("{target}: {e}")))?
                    } else if let Some(p) = suite::by_name(target) {
                        p.build_program(shelfsim::core::thread_program_seed(seed, programs.len()))
                    } else {
                        return Err(err(format!(
                            "unknown target `{target}` (expected a .s file, a built-in \
                             kernel, or a suite benchmark)"
                        )));
                    };
                    diags.extend(shelfsim::analyze::lint_program(&program, None));
                    diags.extend(shelfsim::analyze::check_adequacy(&program, &cfg, None));
                    programs.push((target.clone(), program));
                }
            }
            let mut reports: Vec<shelfsim::IpcBoundReport> = vec![];
            if bounds {
                for (name, p) in &programs {
                    let mut r = shelfsim::ipc_bound(p, &cfg);
                    r.name = name.clone();
                    diags.push(r.diagnostic());
                    reports.push(r);
                }
            }
            let report = shelfsim::Report::new(diags);
            let rendered = if format_json {
                report.render_json()
            } else {
                let mut text = report.render_text();
                if !reports.is_empty() {
                    writeln!(
                        text,
                        "static IPC bounds on {design} ({threads} thread{}):",
                        if threads == 1 { "" } else { "s" }
                    )
                    .expect("write");
                    writeln!(
                        text,
                        "  {:<12} {:>6} {:>7} {:>7}  binding",
                        "program", "width", "fu-cap", "bound"
                    )
                    .expect("write");
                    for r in &reports {
                        writeln!(
                            text,
                            "  {:<12} {:>6.1} {:>7.1} {:>7.3}  {}",
                            r.name, r.width, r.fu_capacity, r.bound, r.binding
                        )
                        .expect("write");
                    }
                    if reports.len() > 1 {
                        writeln!(
                            text,
                            "  aggregate SMT bound: {:.3}",
                            shelfsim::aggregate_bound(&reports, &cfg)
                        )
                        .expect("write");
                    }
                }
                text
            };
            if report.has_errors() {
                return Err(err(rendered));
            }
            out.push_str(&rendered);
        }
        "lint" => {
            let mut format_json = false;
            let mut deny_warnings = false;
            let mut design: Option<String> = None;
            let mut threads = 4usize;
            let mut files: Vec<String> = vec![];
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--deny-warnings" => deny_warnings = true,
                    "--explain" => {
                        let code = it.next().ok_or_else(|| uerr("--explain requires a code"))?;
                        let info = shelfsim::analyze::code_info(&code.to_uppercase()).ok_or_else(
                            || {
                                err(format!(
                                    "unknown diagnostic code `{code}` (expected one of: {})",
                                    shelfsim::analyze::REGISTRY
                                        .iter()
                                        .map(|c| c.code)
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ))
                            },
                        )?;
                        writeln!(out, "{} ({:?}): {}", info.code, info.severity, info.summary)
                            .expect("write");
                        writeln!(out, "\n{}", info.explain.trim()).expect("write");
                        return Ok(out);
                    }
                    "--format" => {
                        let v = it.next().ok_or_else(|| uerr("--format requires a value"))?;
                        match v.as_str() {
                            "json" => format_json = true,
                            "text" => format_json = false,
                            other => {
                                return Err(err(format!(
                                    "--format: expected `text` or `json`, got `{other}`"
                                )))
                            }
                        }
                    }
                    "--design" => {
                        design = Some(
                            it.next()
                                .ok_or_else(|| uerr("--design requires a value"))?
                                .clone(),
                        )
                    }
                    "--threads" => {
                        threads = parse_num(
                            "--threads",
                            it.next()
                                .ok_or_else(|| uerr("--threads requires a value"))?,
                        )?
                    }
                    other if other.starts_with("--") => {
                        return Err(uerr(format!("unknown option `{other}`")))
                    }
                    file => files.push(file.to_owned()),
                }
            }
            if files.is_empty() && design.is_none() {
                return Err(err(
                    "lint requires at least one FILE (.s kernel or key=value config) \
                     or --design NAME",
                ));
            }
            let mut diags = Vec::new();
            if let Some(name) = &design {
                let cfg = shelfsim::analyze::design_by_name(name, threads)
                    .ok_or_else(|| unknown_design(name))?;
                diags.extend(shelfsim::analyze::lint_config(&cfg));
            }
            for path in &files {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
                if path.ends_with(".s") {
                    diags.extend(shelfsim::analyze::lint_kernel_source(&text, path));
                } else {
                    let (_, d) = shelfsim::analyze::lint_config_file(&text, path);
                    diags.extend(d);
                }
            }
            let report = shelfsim::Report::new(diags);
            let rendered = if format_json {
                report.render_json()
            } else {
                report.render_text()
            };
            // Error-severity findings fail the invocation (nonzero exit from
            // `main`); warnings and notes report but pass — unless
            // `--deny-warnings` promotes warnings to failures (CI mode).
            let denied_warning = deny_warnings
                && report
                    .diagnostics()
                    .iter()
                    .any(|d| d.severity == shelfsim::Severity::Warning);
            if report.has_errors() || denied_warning {
                return Err(err(rendered));
            }
            out.push_str(&rendered);
        }
        "bench" => {
            // Engine-throughput bench: a fixed seeded matrix of designs x
            // mixes whose wall-clock/kIPS numbers form the repo's perf
            // trajectory (BENCH_core.json). `--out -` skips the file.
            let mut campaign_bench = false;
            let mut measure: Option<u64> = None;
            let mut seed = 7u64;
            let mut out_path: Option<String> = None;
            let mut compare_path: Option<String> = None;
            let mut workers = vec![1usize, 2, 4];
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--campaign" => campaign_bench = true,
                    "--workers" => {
                        let v = it.next().ok_or_else(|| uerr("--workers needs a value"))?;
                        workers = v
                            .split(',')
                            .map(|x| parse_num("--workers", x))
                            .collect::<Result<_, _>>()?;
                        if workers.is_empty() || workers[0] != 1 {
                            return Err(uerr(
                                "--workers: the list must start at 1 (the speedup baseline)",
                            ));
                        }
                    }
                    "--measure" => {
                        let v = it.next().ok_or_else(|| uerr("--measure needs a value"))?;
                        measure = Some(parse_num::<u64>("--measure", v)?);
                    }
                    "--seed" => {
                        let v = it.next().ok_or_else(|| uerr("--seed needs a value"))?;
                        seed = parse_num::<u64>("--seed", v)?;
                    }
                    "--out" => {
                        out_path = Some(
                            it.next()
                                .ok_or_else(|| uerr("--out needs a value"))?
                                .clone(),
                        );
                    }
                    "--compare" => {
                        compare_path = Some(
                            it.next()
                                .ok_or_else(|| uerr("--compare needs a value"))?
                                .clone(),
                        );
                    }
                    other => return Err(err(format!("unknown bench option `{other}`"))),
                }
            }
            if campaign_bench {
                // Worker-scaling bench of the sweep runner itself: the
                // matrix once per worker count plus the cached replay;
                // writes BENCH_campaign.json unless --out -.
                if compare_path.is_some() {
                    return Err(uerr("--compare applies to the engine bench only"));
                }
                let measure = measure.unwrap_or(shelfsim_bench::campaign::DEFAULT_MEASURE);
                let out_path = out_path.unwrap_or_else(|| "BENCH_campaign.json".to_owned());
                let report = shelfsim_bench::campaign::run_campaign_bench(measure, seed, &workers)
                    .map_err(err)?;
                out.push_str(&report.render_text());
                if out_path != "-" {
                    std::fs::write(&out_path, report.to_json())
                        .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
                    writeln!(out, "wrote {out_path}").expect("write");
                }
                return Ok(out);
            }
            let measure = measure.unwrap_or(shelfsim_bench::engine::DEFAULT_MEASURE);
            let out_path = out_path.unwrap_or_else(|| "BENCH_core.json".to_owned());
            // Parse the baseline before the (slow) matrix runs so a bad
            // path fails fast.
            let baseline = match &compare_path {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| err(format!("cannot read {path}: {e}")))?;
                    Some(
                        shelfsim_bench::engine::parse_baseline(&text).ok_or_else(|| {
                            err(format!("{path} is not a shelfsim-bench-v1 document"))
                        })?,
                    )
                }
                None => None,
            };
            let plan = shelfsim_bench::engine::engine_micro(measure, seed);
            let report = shelfsim_bench::engine::run_plan(&plan).map_err(err)?;
            out.push_str(&report.render_text());
            if let Some(base) = &baseline {
                out.push_str(&report.render_compare(base));
            }
            if out_path != "-" {
                std::fs::write(&out_path, report.to_json())
                    .map_err(|e| err(format!("cannot write {out_path}: {e}")))?;
                writeln!(out, "wrote {out_path}").expect("write");
            }
        }
        "validate" => return cmd_validate(&args[1..]),
        "help" | "--help" | "-h" => out.push_str(USAGE),
        other => return Err(uerr(format!("unknown command `{other}`\n{USAGE}"))),
    }
    Ok(out)
}

/// Options for `shelfsim validate`.
struct ValidateOptions {
    designs: Vec<String>,
    threads: usize,
    kernels: Vec<String>,
    suite_mixes: usize,
    generated: usize,
    seed: u64,
    commits: u64,
    max_cycles: u64,
    warmup: u64,
    sweep: bool,
    json: bool,
    no_skip: bool,
    shrink_dir: Option<String>,
    #[cfg(feature = "chaos")]
    chaos: Option<shelfsim::core::ChaosPlan>,
}

fn parse_validate_options(args: &[String]) -> Result<ValidateOptions, CliError> {
    let mut o = ValidateOptions {
        designs: vec!["base64".to_owned(), "shelf-opt".to_owned()],
        threads: 2,
        kernels: vec!["all".to_owned()],
        suite_mixes: 0,
        generated: 0,
        seed: 7,
        commits: 2_000,
        max_cycles: 400_000,
        warmup: 1_000,
        sweep: false,
        json: false,
        no_skip: false,
        shrink_dir: None,
        #[cfg(feature = "chaos")]
        chaos: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| uerr(format!("{name} requires a value")))
        };
        match a.as_str() {
            "--designs" => o.designs = val("--designs")?.split(',').map(str::to_owned).collect(),
            "--threads" => o.threads = parse_num("--threads", &val("--threads")?)?,
            "--kernels" => o.kernels = val("--kernels")?.split(',').map(str::to_owned).collect(),
            "--suite" => o.suite_mixes = parse_num("--suite", &val("--suite")?)?,
            "--generated" => o.generated = parse_num("--generated", &val("--generated")?)?,
            "--seed" => o.seed = parse_num("--seed", &val("--seed")?)?,
            "--commits" => o.commits = parse_num("--commits", &val("--commits")?)?,
            "--max-cycles" => o.max_cycles = parse_num("--max-cycles", &val("--max-cycles")?)?,
            "--warmup" => o.warmup = parse_num("--warmup", &val("--warmup")?)?,
            "--sweep" => o.sweep = true,
            "--json" => o.json = true,
            "--no-skip" => o.no_skip = true,
            "--shrink-dir" => o.shrink_dir = Some(val("--shrink-dir")?),
            "--chaos" => {
                let spec = val("--chaos")?;
                #[cfg(feature = "chaos")]
                {
                    o.chaos = Some(parse_chaos_plan(&spec)?);
                }
                #[cfg(not(feature = "chaos"))]
                {
                    let _ = spec;
                    return Err(uerr(
                        "--chaos requires a chaos-enabled build \
                         (cargo run --features chaos -- validate ...)",
                    ));
                }
            }
            other => return Err(uerr(format!("unknown option `{other}`"))),
        }
    }
    if o.threads == 0 {
        return Err(uerr("--threads: must be at least 1"));
    }
    if o.designs.len() == 1 && o.designs[0] == "all" {
        o.designs = shelfsim::analyze::DESIGN_NAMES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
    }
    if o.kernels.len() == 1 && o.kernels[0] == "all" {
        o.kernels = shelfsim::workload::kernels::all()
            .iter()
            .map(|k| k.name.to_owned())
            .collect();
    } else if o.kernels.len() == 1 && o.kernels[0] == "none" {
        o.kernels.clear();
    }
    Ok(o)
}

/// Parses `KIND:TRIGGER` (e.g. `skip-writeback:100`) into a chaos plan.
#[cfg(feature = "chaos")]
fn parse_chaos_plan(spec: &str) -> Result<shelfsim::core::ChaosPlan, CliError> {
    use shelfsim::core::{ChaosKind, ChaosPlan};
    let (kind_s, trig_s) = spec
        .split_once(':')
        .ok_or_else(|| uerr(format!("--chaos: expected KIND:TRIGGER, got `{spec}`")))?;
    let kind = ChaosKind::by_name(kind_s).ok_or_else(|| {
        uerr(format!(
            "--chaos: unknown mutation `{kind_s}` (expected one of: {})",
            ChaosKind::ALL.map(|k| k.as_str()).join(", ")
        ))
    })?;
    let trigger = parse_num("--chaos trigger", trig_s)?;
    Ok(ChaosPlan { kind, trigger })
}

/// `shelfsim validate`: differential validation of the out-of-order core
/// against the in-order functional reference. Returns the report on
/// success; renders the same report into the error on divergence (exit 3)
/// or invariant violation (exit 4).
fn cmd_validate(args: &[String]) -> Result<String, CliError> {
    use shelfsim::validate::{
        render_json, render_text, run_lockstep, run_sweep, GenSpec, LockstepConfig, RunReport,
        Verdict,
    };
    let o = parse_validate_options(args)?;
    let lcfg = LockstepConfig {
        commits_per_thread: o.commits,
        max_cycles: o.max_cycles,
        warmup_insts: o.warmup,
        cycle_skipping: !o.no_skip,
        #[cfg(feature = "chaos")]
        chaos: o.chaos,
        ..LockstepConfig::default()
    };

    // Assemble the workload list: kernels, suite mixes, generated programs.
    // A generated workload keeps its GenSpec so a divergence can be shrunk.
    let mut workloads: Vec<(String, Vec<shelfsim::workload::Program>, Option<GenSpec>)> =
        Vec::new();
    for name in &o.kernels {
        let k = shelfsim::workload::kernels::by_name(name)
            .ok_or_else(|| err(format!("unknown kernel `{name}`")))?;
        let p = k.assemble().map_err(|e| err(e.to_string()))?;
        workloads.push((format!("kernel:{name}"), vec![p; o.threads], None));
    }
    if o.suite_mixes > 0 {
        let names = suite::names();
        for m in balanced_random_mixes(&names, o.threads, 28, o.seed)
            .iter()
            .take(o.suite_mixes)
        {
            let programs: Vec<_> = m
                .benchmarks
                .iter()
                .enumerate()
                .map(|(t, b)| {
                    suite::by_name(b)
                        .expect("mix benchmarks come from the suite")
                        .build_program(shelfsim::core::thread_program_seed(o.seed, t))
                })
                .collect();
            workloads.push((format!("suite:{}", m.label()), programs, None));
        }
    }
    for i in 0..o.generated {
        let spec = GenSpec::from_seed(o.seed.wrapping_add(i as u64));
        let p = spec.build_program();
        workloads.push((
            format!("gen:{:#x}", spec.seed),
            vec![p; o.threads],
            Some(spec),
        ));
    }
    if workloads.is_empty() {
        return Err(uerr(
            "validate: nothing to do (--kernels none with no --suite/--generated)",
        ));
    }

    let mut runs: Vec<RunReport> = Vec::new();
    for design in &o.designs {
        let cfg = design_config(design, o.threads)?;
        for (label, programs, spec) in &workloads {
            let verdict = run_lockstep(&cfg, programs, &lcfg);
            let sweep = (o.sweep && verdict.is_clean()).then(|| run_sweep(&cfg, programs, &lcfg));
            // Divergent generated programs shrink to a minimal failing case
            // which is persisted for regression if --shrink-dir is given.
            let mut regression = None;
            if let (Verdict::Diverged(d), Some(spec), Some(dir)) = (&verdict, spec, &o.shrink_dir) {
                let min = shelfsim::validate::shrink_to_minimal(spec, |s| {
                    !run_lockstep(&cfg, &vec![s.build_program(); o.threads], &lcfg).is_clean()
                });
                let path = shelfsim::validate::persist_regression(
                    std::path::Path::new(dir),
                    &min,
                    &format!("{design} x{} {label}\n{d}", o.threads),
                )
                .map_err(|e| err(format!("cannot write regression case: {e}")))?;
                regression = Some(path.display().to_string());
            }
            runs.push(RunReport {
                design: design.clone(),
                threads: o.threads,
                workload: label.clone(),
                verdict,
                sweep,
                regression,
            });
        }
    }

    let rendered = if o.json {
        render_json(&runs)
    } else {
        render_text(&runs)
    };
    let t = shelfsim::validate::totals(&runs);
    if t.diverged > 0 {
        Err(CliError::new(rendered, exit_codes::DIVERGENCE))
    } else if t.invariant > 0 {
        Err(CliError::new(rendered, exit_codes::INVARIANT))
    } else {
        Ok(rendered)
    }
}

/// Matrix-mode `shelfsim sweep`: the full design × thread-count × mix
/// matrix (with the implied single-thread STP references) expanded by
/// [`shelfsim::SweepSpec`], deduplicated against merged journal history
/// by the config-hash [`shelfsim::ResultCache`], and executed on the
/// work-stealing campaign pool with one journal shard per worker.
/// `--dry-run` prints the matrix size, initial shard plan, and cache-hit
/// preview without simulating a cycle; `--pareto` appends the
/// STP/EDP/area Pareto report over the merged history.
fn sweep_matrix(args: &[String]) -> Result<String, CliError> {
    let mut designs: Vec<String> = vec!["base64".to_owned(), "shelf-opt".to_owned()];
    let mut thread_counts: Vec<usize> = vec![2, 4];
    let mut mixes = 2usize;
    let mut seed = 7u64;
    let mut warmup = 2_000u64;
    let mut measure = 10_000u64;
    let mut workers = 2usize;
    let mut journal_dir: Option<String> = None;
    let mut watchdog: Option<u64> = Some(100_000);
    let mut attempts = 3u32;
    let mut preflight = true;
    let mut dry_run = false;
    let mut pareto = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dry-run" => {
                dry_run = true;
                continue;
            }
            "--pareto" => {
                pareto = true;
                continue;
            }
            "--json" => {
                json = true;
                continue;
            }
            "--no-preflight" => {
                preflight = false;
                continue;
            }
            _ => {}
        }
        let v = it
            .next()
            .ok_or_else(|| uerr(format!("{a} requires a value")))?;
        match a.as_str() {
            "--designs" => {
                designs = v.split(',').map(str::to_owned).collect();
                for d in &designs {
                    design_config(d, 1)?;
                }
            }
            "--thread-counts" => {
                thread_counts = v
                    .split(',')
                    .map(|x| parse_num("--thread-counts", x))
                    .collect::<Result<_, _>>()?;
            }
            "--mixes" => mixes = parse_num("--mixes", v)?,
            "--seed" => seed = parse_num("--seed", v)?,
            "--warmup" => warmup = parse_num("--warmup", v)?,
            "--measure" => measure = parse_num("--measure", v)?,
            "--workers" => workers = parse_num("--workers", v)?,
            "--journal-dir" => journal_dir = Some(v.clone()),
            "--watchdog" => {
                let w: u64 = parse_num("--watchdog", v)?;
                watchdog = (w > 0).then_some(w);
            }
            "--attempts" => attempts = parse_num("--attempts", v)?,
            other => return Err(uerr(format!("unknown option `{other}`"))),
        }
    }
    if thread_counts.is_empty() || thread_counts.contains(&0) {
        return Err(uerr("--thread-counts: need at least one count >= 1"));
    }
    let sweep = shelfsim::SweepSpec {
        designs: designs.clone(),
        thread_counts,
        mixes_per_count: mixes,
        seed,
        warmup,
        measure,
    };
    let runs = sweep.expand();
    if runs.is_empty() {
        return Err(err("sweep matrix is empty"));
    }
    let workers = workers.clamp(1, runs.len());

    // Admission preview against merged journal history (shared by the
    // dry run and the real run's header).
    let sharded = journal_dir.as_deref().map(shelfsim::ShardedJournal::new);
    let cache = shelfsim::ResultCache::load(sharded.as_ref(), None)
        .map_err(|e| err(format!("sweep journal: {e}")))?;
    let admission = cache.admit(&runs);

    let mut header = String::new();
    let breakdown: Vec<String> = sweep
        .mix_plan()
        .iter()
        .map(|(t, m)| format!("{} @ {}t", m.len(), t))
        .collect();
    writeln!(
        header,
        "sweep matrix: {} designs x ({}) workloads = {} runs",
        designs.len(),
        breakdown.join(" + "),
        runs.len()
    )
    .expect("write");
    writeln!(
        header,
        "cache: {} hits, {} misses ({:.1}% cached, {} journaled entries)",
        admission.hits.len(),
        admission.misses.len(),
        admission.hit_rate() * 100.0,
        cache.len()
    )
    .expect("write");

    if dry_run {
        let plan = shelfsim::shard_plan(admission.misses.len(), workers);
        if json {
            let shards: Vec<String> = plan
                .iter()
                .map(|&(start, len)| format!("{{\"start\":{start},\"len\":{len}}}"))
                .collect();
            return Ok(format!(
                "{{\"runs\":{},\"hits\":{},\"misses\":{},\"workers\":{},\"shards\":[{}]}}\n",
                runs.len(),
                admission.hits.len(),
                admission.misses.len(),
                workers,
                shards.join(",")
            ));
        }
        let mut out = header;
        for (w, &(start, len)) in plan.iter().enumerate() {
            writeln!(
                out,
                "  worker {w}: {len} pending runs (slots {start}..{})",
                start + len
            )
            .expect("write");
        }
        out.push_str("dry run: 0 cycles simulated\n");
        return Ok(out);
    }

    let mut spec = shelfsim::CampaignSpec::new(runs)
        .with_watchdog(watchdog)
        .with_max_attempts(attempts)
        .with_workers(workers)
        .with_preflight(preflight);
    if let Some(dir) = &journal_dir {
        spec = spec.with_journal_dir(dir);
    }
    let report = shelfsim::run_campaign(&spec).map_err(|e| err(format!("sweep journal: {e}")))?;

    // Pareto scores over the full merged history when a journal directory
    // is present (earlier sweeps contribute points); otherwise over this
    // invocation's records.
    let pareto_entries = if pareto {
        Some(match &sharded {
            Some(sj) => sj
                .load_merged()
                .map_err(|e| err(format!("sweep journal: {e}")))?,
            None => report
                .records
                .iter()
                .map(|r| {
                    let e = r.to_journal_entry();
                    (e.key.clone(), e)
                })
                .collect(),
        })
    } else {
        None
    };

    if json {
        // Machine output stays pure JSON: the Pareto report when asked
        // for, the campaign report otherwise.
        return Ok(match &pareto_entries {
            Some(entries) => shelfsim::pareto_report(entries, workers).render_json(),
            None => {
                let mut j = report.render_json();
                j.push('\n');
                j
            }
        });
    }
    let mut out = header;
    out.push_str(&report.render_text());
    if let Some(entries) = &pareto_entries {
        out.push_str(&shelfsim::pareto_report(entries, workers).render_text());
    }
    Ok(out)
}

/// Usage text.
pub const USAGE: &str = "\
shelfsim — SMT out-of-order core simulator with hybrid shelf dispatch

USAGE:
  shelfsim suite
  shelfsim mixes   [--threads N] [--count N] [--seed N]
  shelfsim run     --mix b1,b2,... [--design D] [--warmup N] [--measure N]
                   [--seed N] [--tso] [--json]
  shelfsim compare --mix b1,b2,... [--warmup N] [--measure N] [--seed N] [--tso]
  shelfsim sweep   --param P --values v1,v2,... --mix b1,b2,... [--design D]
  shelfsim sweep   [--designs d1,d2] [--thread-counts 2,4] [--mixes N]
                   [--seed N] [--warmup N] [--measure N] [--workers N]
                   [--journal-dir DIR] [--watchdog N] [--attempts N]
                   [--dry-run] [--pareto] [--json] [--no-preflight]
                   (matrix mode: the full design x thread-count x mix matrix
                   — plus the implied single-thread STP references — runs on
                   the work-stealing campaign pool, one journal shard per
                   worker under --journal-dir; requested runs dedupe against
                   all merged journal history by config hash, so re-invoking
                   the same sweep re-simulates nothing. --dry-run prints the
                   matrix size, initial shard plan, and cache-hit preview
                   without simulating a cycle; --pareto appends the
                   STP vs energy-delay vs area Pareto frontier over the
                   merged history)
  shelfsim trace   --mix b1,b2,... [--design D] [--warmup N] [--measure N]
                   [--seed N] [--window N] [--sample N]
                   [--jsonl FILE] [--chrome FILE]
                   (lane view of the last 48 committed insts, per-thread
                   dispatch/issue stall attribution, and optional exports:
                   --jsonl writes instruction lifecycles + occupancy samples
                   as JSON lines, --chrome writes a Chrome trace-event file
                   loadable in Perfetto/about:tracing; --window bounds the
                   lifecycle ring, --sample sets the occupancy period)
  shelfsim asm     FILE.s [--design D] [--mix x,x] (run a hand-written kernel;
                   kernel syntax: see shelfsim_workload::asm)
  shelfsim characterize [BENCH]                    (measured mix & footprints)
  shelfsim kernels                                 (list built-in kernels; run
                   one with: shelfsim asm builtin:NAME)
  shelfsim lint    [--format text|json] [--design D] [--threads N]
                   [--deny-warnings] [FILE...]
                   (static checks: .s kernels get the SA dataflow lints,
                   key=value config files and --design get the SC
                   contradiction lints; errors exit nonzero, and
                   --deny-warnings promotes warnings to failures)
  shelfsim lint    --explain CODE      (document one diagnostic code)
  shelfsim analyze [--bounds] [--design D] [--threads N] [--seed N] [--json]
                   TARGET...
                   (full static analysis of each target — a .s kernel file,
                   a built-in kernel, or a suite benchmark: dataflow lints,
                   resource-adequacy proofs against the design, and with
                   --bounds a sound static IPC upper-bound table plus the
                   aggregate SMT bound; errors exit nonzero)
  shelfsim validate [--designs d1,d2|all] [--threads N] [--kernels k1,k2|all|none]
                   [--suite N] [--generated N] [--seed N] [--commits N]
                   [--max-cycles N] [--warmup N] [--sweep] [--json]
                   [--no-skip] [--shrink-dir DIR]
                   (differential validation: the core's committed stream is
                   compared in lockstep against an in-order functional
                   reference over kernels, N suite mixes, and N generated
                   programs; --sweep additionally perturbs one structure
                   size at a time and asserts the streams stay identical;
                   divergent generated programs shrink to a minimal case
                   persisted under --shrink-dir; --no-skip disables
                   event-driven cycle skipping (results are bit-identical
                   either way — running both proves it). Exit codes: 0 clean,
                   2 usage error, 3 divergence, 4 invariant violation.
                   Chaos builds (--features chaos) accept
                   --chaos KIND:TRIGGER to arm a seeded commit-path
                   mutation the harness must then detect)
  shelfsim bench   [--measure N] [--seed N] [--out FILE] [--compare FILE]
                   (engine-throughput matrix `engine_micro`: designs x mixes,
                   reports wall seconds, simulated cycles/s, and committed
                   kIPS per run; writes BENCH_core.json unless --out -;
                   --compare prints a report-only old-vs-new kIPS delta
                   table against a committed BENCH_core.json baseline)
  shelfsim bench   --campaign [--workers 1,2,4] [--measure N] [--seed N]
                   [--out FILE]
                   (worker-scaling bench of the sweep runner: a 220-run
                   seeded matrix once per worker count — fresh journal
                   shards per row — reporting runs/s, speedup over one
                   worker, and efficiency against the host's ideal
                   min(workers, host_cores), plus a cached replay that
                   must dedupe 100% of the matrix; writes
                   BENCH_campaign.json unless --out -)
  shelfsim campaign [--designs d1,d2] [--threads N] [--mixes N | --mix b1,b2 ...]
                   [--seed N] [--warmup N] [--measure N] [--watchdog N]
                   [--attempts N] [--workers N] [--journal FILE] [--json]
                   [--trace-dir DIR] (dump lifecycle traces of watchdog-
                   diagnosed failures in the diagnostics tier)
                   [--fault-panics N] [--fault-persistent-panics N]
                   [--fault-stalls N] [--fault-livelocks N] [--fault-seed N]
                   [--override key=value ...] [--no-preflight] [--validate]
                   (fault-tolerant design x mix sweep: per-run panic isolation,
                   forward-progress watchdog, retry escalation, quarantine, and
                   a resumable journal — re-invoking with the same --journal
                   skips completed runs; --watchdog 0 disables the watchdog.
                   Every queued run passes a static-analysis pre-flight first:
                   provably misconfigured runs are rejected before simulating
                   a cycle and journaled as analysis-rejected; --no-preflight
                   opts out. --override tweaks the design point, e.g.
                   --override shelf=8. --validate lockstep-checks each run
                   against the in-order functional reference before timing it;
                   a divergence quarantines the run with no retries and clean
                   runs journal validated:clean)

DESIGNS: base64, base128, shelf-cons, shelf-opt, shelf-oracle, shelf-inorder
SWEEP PARAMS: shelf, rob, iq, lq, sq, rct-bits, plt-columns
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn suite_lists_all_benchmarks() {
        let out = run_cli(&args("suite")).expect("ok");
        assert_eq!(out.lines().count(), 28);
        assert!(out.contains("mcf"));
    }

    #[test]
    fn mixes_respects_count() {
        let out = run_cli(&args("mixes --threads 4 --count 3")).expect("ok");
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn run_produces_summary() {
        let out = run_cli(&args(
            "run --mix hmmer,gcc --design shelf-opt --warmup 1000 --measure 4000",
        ))
        .expect("ok");
        assert!(out.contains("IPC"));
        assert!(out.contains("hmmer"));
        assert!(out.contains("gcc"));
    }

    #[test]
    fn run_json_is_machine_readable() {
        let out = run_cli(&args(
            "run --mix hmmer --design base64 --warmup 500 --measure 2000 --json",
        ))
        .expect("ok");
        assert!(out.trim_start().starts_with('{'));
        assert!(out.contains("\"ipc\""));
        assert!(out.contains("\"benchmark\":\"hmmer\""));
    }

    #[test]
    fn unknown_design_is_an_error() {
        let e = run_cli(&args("run --mix gcc --design warp-drive")).unwrap_err();
        assert!(e.message.contains("unknown design"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let e = run_cli(&args("run --mix notabench --warmup 100 --measure 100")).unwrap_err();
        assert!(e.message.contains("notabench"));
    }

    #[test]
    fn missing_command_shows_usage() {
        let e = run_cli(&[]).unwrap_err();
        assert!(e.message.contains("USAGE"));
    }

    #[test]
    fn sweep_runs_each_value() {
        let out = run_cli(&args(
            "sweep --param shelf --values 16,32 --mix hmmer,gcc --warmup 500 --measure 2000",
        ))
        .expect("ok");
        assert!(out.contains("shelf = 16"));
        assert!(out.contains("shelf = 32"));
    }

    #[test]
    fn validate_runs_clean_on_a_kernel() {
        let out = run_cli(&args(
            "validate --kernels daxpy --designs base64 --commits 300 --warmup 200",
        ))
        .expect("ok");
        assert!(
            out.starts_with("validate: 1 runs, 1 clean, 0 diverged"),
            "{out}"
        );
        assert!(out.contains("kernel:daxpy"));
    }

    #[test]
    fn validate_json_report_is_machine_readable() {
        let out = run_cli(&args(
            "validate --kernels daxpy --designs base64 --commits 300 --warmup 200 --json",
        ))
        .expect("ok");
        assert!(
            out.starts_with("{\"schema\":\"shelfsim-validate-v1\""),
            "{out}"
        );
        assert!(out.contains("\"verdict\":\"clean\""));
    }

    #[test]
    fn validate_usage_errors_echo_the_offending_value() {
        let e = run_cli(&args("validate --commits banana")).unwrap_err();
        assert!(e.message.contains("--commits"), "{}", e.message);
        assert!(e.message.contains("`banana`"), "{}", e.message);
        assert_eq!(e.code, exit_codes::USAGE);

        let e = run_cli(&args("validate --frobnicate")).unwrap_err();
        assert!(e.message.contains("--frobnicate"), "{}", e.message);
        assert_eq!(e.code, exit_codes::USAGE);

        let e = run_cli(&args("validate --kernels none")).unwrap_err();
        assert!(e.message.contains("nothing to do"), "{}", e.message);
        assert_eq!(e.code, exit_codes::USAGE);

        let e = run_cli(&args("validate --designs warp-drive")).unwrap_err();
        assert!(e.message.contains("unknown design"), "{}", e.message);
        assert_eq!(e.code, exit_codes::USAGE);
    }

    #[test]
    fn validate_unknown_kernel_is_a_general_error() {
        let e = run_cli(&args("validate --kernels warpcore")).unwrap_err();
        assert!(e.message.contains("warpcore"), "{}", e.message);
        assert_eq!(e.code, exit_codes::GENERAL);
    }

    #[test]
    fn failure_classes_map_to_distinct_exit_codes() {
        // Usage: mistyped flag. General: a run that fails to build.
        let usage = run_cli(&args("validate --commits nope")).unwrap_err();
        let general = run_cli(&args("run --mix notabench")).unwrap_err();
        assert_eq!(usage.code, exit_codes::USAGE);
        assert_eq!(general.code, exit_codes::GENERAL);
        assert_ne!(usage.code, general.code);
        assert_ne!(exit_codes::DIVERGENCE, exit_codes::INVARIANT);
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn chaos_flag_requires_the_chaos_build() {
        let e = run_cli(&args("validate --chaos skip-writeback:10")).unwrap_err();
        assert!(e.message.contains("chaos-enabled build"), "{}", e.message);
        assert_eq!(e.code, exit_codes::USAGE);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_mutations_are_detected_with_divergence_exit_code() {
        let e = run_cli(&args(
            "validate --kernels branchy --designs base64 --commits 800 --chaos skip-writeback:100",
        ))
        .unwrap_err();
        assert_eq!(e.code, exit_codes::DIVERGENCE);
        assert!(e.message.contains("diverged"), "{}", e.message);

        let e = run_cli(&args("validate --chaos bogus:5")).unwrap_err();
        assert_eq!(e.code, exit_codes::USAGE);
        assert!(e.message.contains("bogus"), "{}", e.message);
    }

    #[test]
    fn trace_shows_pipeline_lanes() {
        let out = run_cli(&args(
            "trace --mix hmmer,gcc --design shelf-opt --warmup 1000 --measure 4000",
        ))
        .expect("ok");
        assert!(out.contains("pipeline"));
        assert!(out.lines().count() > 40, "should show ~48 records");
        assert!(out.contains("shelf") || out.contains("IQ"));
        // The reworked subcommand also prints the stall-attribution table.
        assert!(out.contains("stall attribution"), "summary table present");
        assert!(out.contains("dispatch") && out.contains("issue"));
    }

    #[test]
    fn trace_writes_jsonl_and_chrome_exports() {
        let dir = std::env::temp_dir().join(format!("shelfsim-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let jsonl = dir.join("t.jsonl");
        let chrome = dir.join("t.json");
        let cmd = format!(
            "trace --mix gcc,mcf --design base64 --warmup 500 --measure 2000 \
             --window 128 --sample 4 --jsonl {} --chrome {}",
            jsonl.display(),
            chrome.display()
        );
        let out = run_cli(&args(&cmd)).expect("ok");
        assert!(out.contains("wrote"), "reports the files it wrote");
        let j = std::fs::read_to_string(&jsonl).expect("jsonl written");
        assert!(j.lines().count() > 8, "meta + insts + occ + stalls");
        assert!(j.starts_with("{\"type\":\"meta\""));
        assert!(j.contains("\"type\":\"inst\""));
        let c = std::fs::read_to_string(&chrome).expect("chrome written");
        assert!(c.starts_with("{\"displayTimeUnit\""));
        assert!(c.contains("\"ph\":\"X\"") && c.contains("\"ph\":\"C\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn builtin_kernels_run_via_asm() {
        let out = run_cli(&args("asm builtin:triad --warmup 500 --measure 2000")).expect("ok");
        assert!(out.contains("IPC"));
        let e = run_cli(&args("asm builtin:nope")).unwrap_err();
        assert!(e.message.contains("unknown builtin"));
    }

    #[test]
    fn kernels_lists_the_library() {
        let out = run_cli(&args("kernels")).expect("ok");
        assert!(out.contains("triad"));
        assert!(out.contains("chase"));
        assert!(out.lines().count() >= 8);
    }

    #[test]
    fn characterize_reports_measured_mix() {
        let out = run_cli(&args("characterize mcf")).expect("ok");
        assert!(out.contains("mcf"));
        assert!(out.contains("data-set"));
        assert_eq!(out.lines().count(), 2, "header + one row");
    }

    #[test]
    fn bench_compare_renders_delta_table_and_rejects_bad_baselines() {
        let dir = std::env::temp_dir().join("shelfsim_bench_compare_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let baseline = dir.join("base.json");
        // A tiny real bench provides a schema-true baseline document.
        let mut plan = shelfsim_bench::engine::engine_micro(1_000, 7);
        plan.warmup = 200;
        plan.entries.truncate(1);
        let rep = shelfsim_bench::engine::run_plan(&plan).expect("plan runs");
        std::fs::write(&baseline, rep.to_json()).expect("write baseline");

        let out = run_cli(&args(&format!(
            "bench --measure 1000 --out - --compare {}",
            baseline.display()
        )))
        .expect("ok");
        assert!(out.contains("baseline comparison"), "{out}");
        assert!(out.contains("aggregate kIPS:"), "{out}");
        // The truncated baseline covers one cell; the rest render n/a.
        assert!(out.contains("n/a"), "{out}");

        let missing = dir.join("nope.json");
        let e = run_cli(&args(&format!(
            "bench --measure 1000 --out - --compare {}",
            missing.display()
        )))
        .unwrap_err();
        assert!(e.message.contains("cannot read"), "{}", e.message);

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "{\"schema\": \"other\"}").expect("write");
        let e = run_cli(&args(&format!(
            "bench --measure 1000 --out - --compare {}",
            garbage.display()
        )))
        .unwrap_err();
        assert!(
            e.message.contains("not a shelfsim-bench-v1"),
            "{}",
            e.message
        );
    }

    #[test]
    fn asm_runs_a_kernel_from_disk() {
        let dir = std::env::temp_dir().join("shelfsim_asm_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("k.s");
        std::fs::write(&path, "top:\n add r8, r8\n loop top, trips=50\n").expect("write");
        let out = run_cli(&[
            "asm".to_owned(),
            path.to_string_lossy().into_owned(),
            "--warmup".to_owned(),
            "500".to_owned(),
            "--measure".to_owned(),
            "2000".to_owned(),
        ])
        .expect("ok");
        assert!(out.contains("IPC"));
        assert!(out.contains("committed"));
    }

    #[test]
    fn asm_reports_parse_errors_with_location() {
        let dir = std::env::temp_dir().join("shelfsim_asm_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bad.s");
        std::fs::write(&path, "add r8, r8\nbogus r1\n").expect("write");
        let e = run_cli(&["asm".to_owned(), path.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.message.contains("line 2"), "{}", e.message);
    }

    /// Path of a kernel shipped in the repository's `kernels/` directory.
    fn shipped_kernel(name: &str) -> String {
        format!("{}/../../kernels/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn lint_shipped_kernels_are_clean() {
        for k in ["chase.s", "daxpy.s", "store_forward.s"] {
            let out = run_cli(&["lint".to_owned(), shipped_kernel(k)])
                .unwrap_or_else(|e| panic!("{k} should lint clean:\n{e}"));
            assert!(
                out.contains("0 error(s), 0 warning(s)"),
                "{k} not clean:\n{out}"
            );
        }
    }

    #[test]
    fn lint_catches_seeded_def_before_use() {
        let dir = std::env::temp_dir().join("shelfsim_lint_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("buggy.s");
        // r15 is never written and is not an input register.
        std::fs::write(&path, "top:\n add r8, r15\n loop top, trips=50\n").expect("write");
        let e = run_cli(&["lint".to_owned(), path.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.message.contains("SA001"), "{}", e.message);
        assert!(e.message.contains("r15"), "{}", e.message);
        assert!(
            e.message.contains("buggy.s:2"),
            "span should point at the read: {}",
            e.message
        );
    }

    #[test]
    fn lint_catches_contradictory_config() {
        let dir = std::env::temp_dir().join("shelfsim_lint_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bad.cfg");
        // 4 threads cannot each dispatch into a 4-entry ROB.
        std::fs::write(&path, "design = base64\nthreads = 4\nrob = 4\n").expect("write");
        let e = run_cli(&["lint".to_owned(), path.to_string_lossy().into_owned()]).unwrap_err();
        assert!(e.message.contains("SC001"), "{}", e.message);
        assert!(e.message.contains("error"), "{}", e.message);
    }

    #[test]
    fn lint_design_reports_clean_for_evaluated_designs() {
        for d in ["base64", "base128", "shelf-cons", "shelf-opt"] {
            let out = run_cli(&args(&format!("lint --design {d}"))).expect("clean design");
            assert!(out.contains("0 error(s)"), "{d}: {out}");
        }
    }

    #[test]
    fn lint_json_format_is_structured() {
        let out = run_cli(&[
            "lint".to_owned(),
            "--format".to_owned(),
            "json".to_owned(),
            shipped_kernel("daxpy.s"),
        ])
        .expect("ok");
        assert!(out.trim_start().starts_with('['), "{out}");
        assert!(
            out.contains("\"code\":\"SA004\""),
            "series estimate expected: {out}"
        );
    }

    #[test]
    fn lint_requires_an_input() {
        let e = run_cli(&args("lint")).unwrap_err();
        assert!(
            e.message.contains("requires at least one FILE"),
            "{}",
            e.message
        );
    }

    #[test]
    fn lint_rejects_unknown_design_and_option() {
        let e = run_cli(&args("lint --design warp-drive")).unwrap_err();
        assert!(e.message.contains("unknown design"), "{}", e.message);
        let e = run_cli(&args("lint --frobnicate x.s")).unwrap_err();
        assert!(e.message.contains("unknown option"), "{}", e.message);
    }

    #[test]
    fn numeric_flag_errors_echo_the_offending_value() {
        let e = run_cli(&args("run --mix gcc --warmup abc")).unwrap_err();
        assert!(e.message.contains("--warmup"), "{}", e.message);
        assert!(e.message.contains("`abc`"), "{}", e.message);
        let e = run_cli(&args("sweep --param shelf --values 16,banana --mix gcc")).unwrap_err();
        assert!(e.message.contains("`banana`"), "{}", e.message);
        let e = run_cli(&args("mixes --count -3")).unwrap_err();
        assert!(e.message.contains("`-3`"), "{}", e.message);
    }

    #[test]
    fn unknown_design_error_lists_valid_names() {
        let e = run_cli(&args("run --mix gcc --design warp-drive")).unwrap_err();
        assert!(e.message.contains("warp-drive"), "{}", e.message);
        assert!(e.message.contains("base64"), "{}", e.message);
        assert!(e.message.contains("shelf-opt"), "{}", e.message);
    }

    #[test]
    fn run_until_reports_truncation() {
        // An absurd commit target with a tiny cycle budget must be reported
        // as truncated, not silently passed off as a full measurement.
        let out = run_cli(&args(
            "run --mix hmmer --design base64 --warmup 200 --until 1000000 --measure 500",
        ))
        .expect("ok");
        assert!(out.contains("TRUNCATED"), "{out}");
        let out = run_cli(&args(
            "run --mix hmmer --design base64 --warmup 200 --until 1000000 --measure 500 --json",
        ))
        .expect("ok");
        assert!(
            out.contains("\"completion\":\"max-cycles-expired\""),
            "{out}"
        );
    }

    fn campaign_journal(name: &str) -> String {
        let dir = std::env::temp_dir().join("shelfsim_cli_campaign");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn campaign_runs_faulted_matrix_and_resumes() {
        let journal = campaign_journal("cli.jsonl");
        let cmd = format!(
            "campaign --designs base64,shelf-opt --mix gcc,mcf --mix hmmer,lbm \
             --warmup 200 --measure 1200 --watchdog 5000 --workers 2 \
             --fault-panics 1 --fault-persistent-panics 1 --fault-seed 3 \
             --journal {journal}"
        );
        let out = run_cli(&args(&cmd)).expect("campaign completes despite faults");
        assert!(out.contains("campaign: 4 runs"), "{out}");
        assert!(out.contains("3 completed, 1 quarantined"), "{out}");
        assert!(out.contains("taxonomy:"), "{out}");
        // Same invocation again: everything resumes from the journal.
        let out = run_cli(&args(&cmd)).expect("resume");
        assert!(out.contains("4 resumed from journal"), "{out}");
    }

    #[test]
    fn campaign_json_output_is_structured() {
        let out = run_cli(&args(
            "campaign --designs base64 --mix gcc,mcf --warmup 200 --measure 1200 --json",
        ))
        .expect("ok");
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"completed\":1"), "{out}");
        assert!(out.contains("\"per_design\""), "{out}");
    }

    #[test]
    fn campaign_validates_designs_and_fault_budget() {
        let e = run_cli(&args("campaign --designs warp-drive --mix gcc,mcf")).unwrap_err();
        assert!(e.message.contains("unknown design"), "{}", e.message);
        let e = run_cli(&args(
            "campaign --designs base64 --mix gcc,mcf --fault-panics 5",
        ))
        .unwrap_err();
        assert!(e.message.contains("victim"), "{}", e.message);
        let e = run_cli(&args("campaign --workers nope")).unwrap_err();
        assert!(e.message.contains("`nope`"), "{}", e.message);
    }

    fn sweep_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("shelfsim_cli_sweep_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn sweep_matrix_dry_run_previews_without_simulating() {
        let dir = sweep_dir("dry");
        let cmd = format!(
            "sweep --designs base64 --thread-counts 2 --mixes 1 --workers 2 \
             --warmup 100 --measure 400 --journal-dir {dir}"
        );
        // Cold preview: every run is a miss, nothing simulates (the
        // journal directory is never even created).
        let out = run_cli(&args(&format!("{cmd} --dry-run"))).expect("dry run");
        assert!(out.contains("sweep matrix: 1 designs"), "{out}");
        assert!(out.contains("0 hits, 3 misses"), "{out}");
        assert!(out.contains("dry run: 0 cycles simulated"), "{out}");
        assert!(!std::path::Path::new(&dir).exists(), "dry run wrote files");

        // Real run, then a warm preview: everything dedupes by config hash.
        let out = run_cli(&args(&cmd)).expect("sweep");
        assert!(out.contains("3 completed"), "{out}");
        let out = run_cli(&args(&format!("{cmd} --dry-run"))).expect("warm dry run");
        assert!(out.contains("3 hits, 0 misses (100.0% cached"), "{out}");

        let out = run_cli(&args(&format!("{cmd} --dry-run --json"))).expect("json dry run");
        assert!(out.contains("\"misses\":0"), "{out}");
        assert!(out.contains("\"shards\":["), "{out}");
    }

    #[test]
    fn sweep_matrix_runs_resumes_and_reports_pareto() {
        let dir = sweep_dir("pareto");
        let cmd = format!(
            "sweep --designs base64,shelf-opt --thread-counts 2 --mixes 1 \
             --workers 2 --warmup 100 --measure 400 --journal-dir {dir}"
        );
        let out = run_cli(&args(&cmd)).expect("sweep");
        assert!(out.contains("sweep matrix: 2 designs"), "{out}");
        assert!(out.contains("6 completed"), "{out}");

        // Re-invoking with --pareto: 100% cache hits, frontier over the
        // merged shards.
        let out = run_cli(&args(&format!("{cmd} --pareto"))).expect("pareto");
        assert!(out.contains("6 hits, 0 misses"), "{out}");
        assert!(out.contains("6 resumed from journal"), "{out}");
        assert!(out.contains("pareto: 2 design points"), "{out}");
        assert!(out.contains("[*]"), "{out}");

        let out = run_cli(&args(&format!("{cmd} --pareto --json"))).expect("pareto json");
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"on_frontier\":true"), "{out}");
    }

    #[test]
    fn sweep_matrix_works_without_a_journal_and_validates_flags() {
        // Journal-less one-shot sweep with an inline Pareto report.
        let out = run_cli(&args(
            "sweep --designs base64 --thread-counts 2 --mixes 1 \
             --warmup 100 --measure 400 --pareto",
        ))
        .expect("journal-less sweep");
        assert!(out.contains("pareto: 1 design points"), "{out}");

        let e = run_cli(&args("sweep --designs warp-drive --dry-run")).unwrap_err();
        assert!(e.message.contains("unknown design"), "{}", e.message);
        let e = run_cli(&args("sweep --thread-counts 2,0 --dry-run")).unwrap_err();
        assert!(e.message.contains("--thread-counts"), "{}", e.message);
        let e = run_cli(&args("sweep --designs base64 --frontier yes")).unwrap_err();
        assert!(e.message.contains("unknown option"), "{}", e.message);
        let e = run_cli(&args("sweep --designs base64 --workers")).unwrap_err();
        assert!(e.message.contains("requires a value"), "{}", e.message);
    }

    #[test]
    fn analyze_bounds_reports_a_table_and_sb001() {
        let out = run_cli(&args("analyze --bounds --design base64 reduce daxpy")).expect("ok");
        assert!(out.contains("SB001"), "{out}");
        assert!(out.contains("static IPC bounds"), "{out}");
        assert!(out.contains("recurrence"), "reduce is chain-bound: {out}");
        assert!(out.contains("aggregate SMT bound"), "{out}");
    }

    #[test]
    fn analyze_accepts_suite_benchmarks_and_files() {
        let out = run_cli(&args("analyze --design shelf-opt --threads 2 gcc mcf")).expect("ok");
        assert!(out.contains("0 error(s)"), "{out}");
        let out = run_cli(&[
            "analyze".to_owned(),
            "--bounds".to_owned(),
            shipped_kernel("daxpy.s"),
        ])
        .expect("ok");
        assert!(out.contains("daxpy"), "{out}");
        let e = run_cli(&args("analyze --bounds notathing")).unwrap_err();
        assert!(e.message.contains("unknown target"), "{}", e.message);
        let e = run_cli(&args("analyze")).unwrap_err();
        assert!(e.message.contains("TARGET"), "{}", e.message);
    }

    #[test]
    fn analyze_rejects_starved_shelf_with_a_span() {
        let dir = std::env::temp_dir().join("shelfsim_analyze_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("chain.s");
        // A 4-long dependent chain cannot drain a 2-entry per-thread shelf
        // (the 64-entry shelf split 32 ways).
        std::fs::write(
            &path,
            "top:\n add r8, r8\n add r8, r8\n add r8, r8\n add r8, r8\n loop top, trips=50\n",
        )
        .expect("write");
        let e = run_cli(&[
            "analyze".to_owned(),
            "--design".to_owned(),
            "shelf-inorder".to_owned(),
            "--threads".to_owned(),
            "32".to_owned(),
            path.to_string_lossy().into_owned(),
        ])
        .unwrap_err();
        assert!(e.message.contains("SR001"), "{}", e.message);
        assert!(
            e.message.contains("chain.s:"),
            "span points at the run: {}",
            e.message
        );
    }

    #[test]
    fn lint_explain_documents_codes() {
        let out = run_cli(&args("lint --explain SR001")).expect("ok");
        assert!(out.contains("SR001"), "{out}");
        assert!(out.contains("deadlock"), "{out}");
        let e = run_cli(&args("lint --explain XX999")).unwrap_err();
        assert!(
            e.message.contains("unknown diagnostic code"),
            "{}",
            e.message
        );
        assert!(
            e.message.contains("SA001"),
            "lists valid codes: {}",
            e.message
        );
    }

    #[test]
    fn lint_deny_warnings_promotes_warnings() {
        let dir = std::env::temp_dir().join("shelfsim_lint_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("warny.s");
        // The `dead` block is unreachable (nothing jumps to it): SA002,
        // a warning — clean by default, fatal under --deny-warnings.
        std::fs::write(
            &path,
            "top:\n add r8, r8\n jmp top\ndead:\n add r8, r8\n jmp dead\n",
        )
        .expect("write");
        let file = path.to_string_lossy().into_owned();
        run_cli(&["lint".to_owned(), file.clone()]).expect("warnings pass by default");
        let e = run_cli(&["lint".to_owned(), "--deny-warnings".to_owned(), file]).unwrap_err();
        assert!(e.message.contains("warning"), "{}", e.message);
    }

    #[test]
    fn campaign_preflight_rejects_and_override_applies() {
        let cmd = "campaign --designs shelf-inorder --mix gcc,mcf --override shelf=2 \
                   --warmup 200 --measure 1200";
        let out = run_cli(&args(cmd)).expect("campaign completes");
        assert!(out.contains("1 rejected"), "{out}");
        assert!(out.contains("analysis-rejected"), "{out}");
        assert!(
            out.contains("[shelf=2]"),
            "label carries the override: {out}"
        );
        // Opting out lets the run reach the simulator.
        let out = run_cli(&args(&format!("{cmd} --no-preflight"))).expect("ok");
        assert!(out.contains("0 rejected"), "{out}");
        // Malformed and unknown overrides are argument errors.
        let e = run_cli(&args("campaign --mix gcc --override shelf")).unwrap_err();
        assert!(e.message.contains("key=value"), "{}", e.message);
        let e = run_cli(&args("campaign --mix gcc --override warp=9")).unwrap_err();
        assert!(e.message.contains("unknown config key"), "{}", e.message);
    }

    #[test]
    fn campaign_validate_tier_journals_clean_runs() {
        let dir = std::env::temp_dir().join("shelfsim_cli_campaign_validate");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let journal = dir.join("j.jsonl");
        let _ = std::fs::remove_file(&journal);
        let cmd = format!(
            "campaign --designs base64 --mix gcc,mcf --warmup 200 --measure 1200 \
             --workers 1 --journal {}",
            journal.to_string_lossy()
        );
        let out = run_cli(&args(&format!("{cmd} --validate"))).expect("campaign completes");
        assert!(out.contains("0 quarantined"), "{out}");
        let text = std::fs::read_to_string(&journal).expect("journal written");
        assert!(
            text.contains("\"validated\":\"clean\""),
            "validated runs are journaled as clean: {text}"
        );
        // Resuming skips the journaled run entirely.
        let out = run_cli(&args(&format!("{cmd} --validate"))).expect("resume completes");
        assert!(out.contains("1 resumed"), "{out}");
    }

    #[test]
    fn tso_flag_is_accepted() {
        let out = run_cli(&args(
            "run --mix hmmer --design shelf-opt --tso --warmup 500 --measure 2000",
        ))
        .expect("ok");
        assert!(out.contains("IPC"));
    }
}
