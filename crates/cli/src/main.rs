//! `shelfsim` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match shelfsim_cli::run_cli(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
