//! `shelfsim` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match shelfsim_cli::run_cli(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            // Distinct failure classes get distinct exit codes (see
            // `shelfsim_cli::exit_codes`): 2 usage, 3 divergence, 4
            // invariant violation, 1 everything else.
            ExitCode::from(e.code)
        }
    }
}
