//! Property tests for the CLI: arbitrary argument soup must never panic —
//! every failure is a clean `CliError` — and valid invocations round-trip.

use proptest::prelude::*;
use shelfsim_cli::{design_config, run_cli};

fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("run".to_owned()),
        Just("compare".to_owned()),
        Just("sweep".to_owned()),
        Just("suite".to_owned()),
        Just("mixes".to_owned()),
        Just("kernels".to_owned()),
        Just("--mix".to_owned()),
        Just("--design".to_owned()),
        Just("--warmup".to_owned()),
        Just("--measure".to_owned()),
        Just("--seed".to_owned()),
        Just("--tso".to_owned()),
        Just("--json".to_owned()),
        Just("gcc,mcf".to_owned()),
        Just("base64".to_owned()),
        Just("shelf-opt".to_owned()),
        Just("100".to_owned()),
        Just("-5".to_owned()),
        Just("not_a_number".to_owned()),
        Just("…unicode…".to_owned()),
        "[a-z]{1,8}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cli_never_panics_on_argument_soup(tokens in prop::collection::vec(arb_token(), 0..6)) {
        // Keep any accidental simulation tiny.
        let mut args = tokens;
        if args.first().map(String::as_str) == Some("run")
            || args.first().map(String::as_str) == Some("compare")
        {
            args.extend(["--warmup".into(), "10".into(), "--measure".into(), "50".into()]);
        }
        let _ = run_cli(&args); // Ok or Err(CliError); must not panic
    }

    #[test]
    fn design_config_is_total_over_valid_names(threads in 1usize..=4) {
        for name in ["base64", "base128", "shelf-cons", "shelf-opt", "shelf-oracle", "shelf-inorder"] {
            let cfg = design_config(name, threads).expect("valid design");
            cfg.validate();
            prop_assert_eq!(cfg.threads, threads);
        }
        prop_assert!(design_config("hyperdrive", threads).is_err());
    }
}
