use shelfsim_core::{CoreConfig, SteerPolicy};
use shelfsim_energy::EnergyModel;

fn main() {
    let base = EnergyModel::for_config(&CoreConfig::base64(4));
    let shelf =
        EnergyModel::for_config(&CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true));
    let big = EnergyModel::for_config(&CoreConfig::base128(4));
    for include_l1 in [false, true] {
        let a0 = base.core_area(include_l1);
        println!(
            "L1={} shelf +{:.1}%  base128 +{:.1}%  (paper: {} / {})",
            include_l1,
            (shelf.core_area(include_l1) / a0 - 1.0) * 100.0,
            (big.core_area(include_l1) / a0 - 1.0) * 100.0,
            if include_l1 { "2.1%" } else { "3.1%" },
            if include_l1 { "6.6%" } else { "9.7%" }
        );
    }
}
