//! The core-level energy/area model: structure inventory per design point,
//! event-driven dynamic energy, leakage, area, and energy-delay product.

use crate::structures::StructureGeometry;
use shelfsim_core::{CoreConfig, RunResult, SteerPolicy};

/// Per-operation functional-unit energies (arbitrary units), indexed like
/// `FuKind`: int ALU, int mul/div, FP, memory port (AGU + TLB).
const FU_ENERGY: [f64; 4] = [220.0, 900.0, 1100.0, 320.0];
/// Front-end energy per fetched instruction (fetch + decode logic).
const FETCH_ENERGY: f64 = 240.0;
/// Rename/dispatch datapath energy per dispatched instruction (excluding
/// the RAT/free-list arrays counted separately).
const DISPATCH_ENERGY: f64 = 120.0;
/// Commit datapath energy per committed instruction.
const COMMIT_ENERGY: f64 = 60.0;
/// Area of the core's fixed logic (decoders, functional units, bypass
/// network, pipeline latches) in the same arbitrary area units as the
/// arrays. Calibrated so the Base-128 / Base-64 core-area ratio lands near
/// the paper's Table II (+9.7% without L1s).
const FIXED_LOGIC_AREA: f64 = 480_000.0;
/// Leakage per cycle of the fixed logic.
const FIXED_LOGIC_LEAKAGE: f64 = 0.0005 * FIXED_LOGIC_AREA;

/// The structure inventory and derived constants for one design point.
#[derive(Clone, Debug)]
pub struct EnergyModel {
    structures: Vec<StructureGeometry>,
    l1_structures: Vec<StructureGeometry>,
    l2: StructureGeometry,
    iq_entries: usize,
    lsq_entries: usize,
}

/// The energy breakdown of one measured run.
#[derive(Clone, Debug)]
pub struct EnergyReport {
    /// Dynamic energy (arbitrary units) over the measured window.
    pub dynamic: f64,
    /// Leakage energy over the measured window.
    pub leakage: f64,
    /// Per-structure dynamic energy, for breakdown tables.
    pub per_structure: Vec<(&'static str, f64)>,
    /// Committed instructions in the window.
    pub committed: u64,
    /// Cycles in the window.
    pub cycles: u64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }

    /// Energy per committed instruction.
    pub fn energy_per_instruction(&self) -> f64 {
        self.total() / self.committed.max(1) as f64
    }

    /// Aggregate cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.committed.max(1) as f64
    }

    /// Energy-delay product for a fixed-work comparison.
    ///
    /// For a workload of `N` instructions, `EDP = (EPI·N) × (CPI·N) ∝
    /// EPI × CPI`; with the same `N` across design points the constant
    /// cancels, so this returns `EPI × CPI` directly. Lower is better.
    pub fn edp(&self) -> f64 {
        self.energy_per_instruction() * self.cpi()
    }
}

impl EnergyModel {
    /// Builds the structure inventory for a design point, mirroring the
    /// paper's McPAT extensions (§V): shelf, RAT/free lists, expanded
    /// scheduling logic, SSRs, dependency tracking, and steering structures.
    pub fn for_config(cfg: &CoreConfig) -> Self {
        let t = cfg.threads;
        let iw = cfg.issue_width;
        let dw = cfg.dispatch_width;
        let arch = shelfsim_isa::NUM_ARCH_REGS;
        let tag_bits = (usize::BITS - (cfg.num_tags().max(2) - 1).leading_zeros()) as usize;

        let mut s = vec![
            // Reorder buffer: written at dispatch, read at commit.
            StructureGeometry::ram("rob", cfg.rob_entries, 76, dw + cfg.commit_width),
            // Issue queue: CAM wakeup across all entries.
            StructureGeometry::cam("iq", cfg.iq_entries, 32 + 3 * tag_bits, dw + iw),
            // Load/store queues: address CAMs.
            StructureGeometry::cam("lq", cfg.lq_entries, 52, 4),
            StructureGeometry::cam("sq", cfg.sq_entries, 116, 4),
            // Physical register file.
            StructureGeometry::ram("prf", cfg.num_phys_regs(), 64, 2 * iw + iw),
            // RAT: per-thread mapping of arch reg -> (PRI, tag).
            StructureGeometry::ram("rat", t * arch, 2 * tag_bits, 3 * dw),
            // Free lists.
            StructureGeometry::ram("freelist", cfg.num_phys_regs(), tag_bits, dw),
            // Branch predictor (PHT + BTB + RAS).
            StructureGeometry::ram("bpred", (1 << 12) + (1 << 11) * 24 / 2, 2, 2),
        ];
        if cfg.shelf_entries > 0 {
            // The shelf FIFO: narrow ports (dispatch write, head read).
            s.push(StructureGeometry::ram(
                "shelf",
                cfg.shelf_entries,
                40 + 3 * tag_bits,
                2,
            ));
            // Extension free list for the decoupled tag space. Tags return
            // out of order (whenever a superseding writer retires), so the
            // hardware is a bitmap with a priority encoder, not a FIFO:
            // one bit per tag.
            s.push(StructureGeometry::ram(
                "ext_freelist",
                cfg.num_ext_tags(),
                1,
                dw,
            ));
            // Issue-tracking bitvectors (one bit per ROB entry) + shelf
            // retire bitvector (2x shelf indices) + SSR pair.
            s.push(StructureGeometry::ram(
                "issue_track",
                cfg.rob_entries,
                1,
                iw + dw,
            ));
            s.push(StructureGeometry::ram(
                "shelf_retire",
                2 * cfg.shelf_entries,
                1,
                4,
            ));
            s.push(StructureGeometry::ram("ssr", 2 * t, 8, 2));
            // Shelf head dependence-check / select / rename-multiplexing
            // logic (Figure 8), modeled as an equivalent array.
            s.push(StructureGeometry::ram(
                "shelf_sched",
                cfg.shelf_entries,
                48,
                4,
            ));
            if cfg.steer == SteerPolicy::Practical || cfg.steer == SteerPolicy::Oracle {
                // Steering hardware: RCT counters and the PLT bit matrix.
                s.push(StructureGeometry::ram(
                    "rct",
                    t * arch,
                    cfg.rct_bits as usize,
                    2 * dw,
                ));
                s.push(StructureGeometry::ram(
                    "plt",
                    t * arch,
                    cfg.plt_columns as usize,
                    2 * dw,
                ));
            }
        }

        let l1_structures = vec![
            StructureGeometry::dense_ram("l1i", cfg.hierarchy.l1i.size_bytes / 8, 64, 2),
            StructureGeometry::dense_ram("l1d", cfg.hierarchy.l1d.size_bytes / 8, 64, 2),
        ];
        let l2 = StructureGeometry::dense_ram("l2", cfg.hierarchy.l2.size_bytes / 8, 64, 2);

        EnergyModel {
            structures: s,
            l1_structures,
            l2,
            iq_entries: cfg.iq_entries,
            lsq_entries: cfg.lq_entries + cfg.sq_entries,
        }
    }

    fn geometry(&self, name: &str) -> &StructureGeometry {
        self.structures
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("structure {name} not in this design point"))
    }

    fn maybe_geometry(&self, name: &str) -> Option<&StructureGeometry> {
        self.structures.iter().find(|s| s.name == name)
    }

    /// Core area, optionally including the L1 caches (Table II reports
    /// both). The L2 is not part of the core.
    pub fn core_area(&self, include_l1: bool) -> f64 {
        let arrays: f64 = self.structures.iter().map(StructureGeometry::area).sum();
        let l1: f64 = if include_l1 {
            self.l1_structures.iter().map(StructureGeometry::area).sum()
        } else {
            0.0
        };
        FIXED_LOGIC_AREA + arrays + l1
    }

    /// Computes the energy report for a measured run on this design point.
    ///
    /// Follows the paper: "We report on the power consumption of the core
    /// including L1 caches" — the L2 is excluded.
    pub fn report(&self, r: &RunResult) -> EnergyReport {
        let c = &r.counters;
        let mut per: Vec<(&'static str, f64)> = Vec::new();
        let push = |name: &'static str, e: f64, per: &mut Vec<(&'static str, f64)>| {
            per.push((name, e));
        };

        let rob = self.geometry("rob").access_energy();
        push("rob", (c.rob_writes + c.rob_reads) as f64 * rob, &mut per);

        let iq = self.geometry("iq");
        let iq_access = iq.access_energy();
        // Wakeup is counted per entry compared; a full-array CAM access
        // costs `access_energy`, so one compared entry costs that divided by
        // the entry count.
        let per_entry_cam = iq_access / self.iq_entries.max(1) as f64;
        push(
            "iq",
            (c.iq_writes + c.iq_issues) as f64 * iq_access + c.iq_wakeup_cam as f64 * per_entry_cam,
            &mut per,
        );

        let lq = self.geometry("lq").access_energy();
        let sq = self.geometry("sq").access_energy();
        let per_entry_lsq = (lq + sq) / 2.0 / self.lsq_entries.max(1) as f64 * 2.0;
        push(
            "lsq",
            c.lq_writes as f64 * lq
                + c.sq_writes as f64 * sq
                + c.lsq_searches as f64 * per_entry_lsq,
            &mut per,
        );

        let prf = self.geometry("prf").access_energy();
        push("prf", (c.prf_reads + c.prf_writes) as f64 * prf, &mut per);

        let rat = self.geometry("rat").access_energy();
        push("rat", (c.rat_reads + c.rat_writes) as f64 * rat, &mut per);

        let fl = self.geometry("freelist").access_energy();
        push(
            "freelist",
            (c.freelist_ops + c.ext_freelist_ops) as f64 * fl,
            &mut per,
        );

        let bp = self.geometry("bpred").access_energy();
        push("bpred", c.bpred_lookups as f64 * bp, &mut per);

        if let Some(shelf) = self.maybe_geometry("shelf") {
            let e = shelf.access_energy();
            push(
                "shelf",
                (c.shelf_writes + c.shelf_reads) as f64 * e,
                &mut per,
            );
            let track = self.geometry("issue_track").access_energy()
                + self.geometry("shelf_retire").access_energy()
                + self.geometry("ssr").access_energy();
            // Tracking structures toggle roughly once per dispatch + issue.
            push(
                "shelf_tracking",
                (c.dispatched + c.issued) as f64 * track * 0.5,
                &mut per,
            );
        }
        if let Some(rct) = self.maybe_geometry("rct") {
            let e = rct.access_energy();
            push("steering", c.rct_ops as f64 * e, &mut per);
        }
        if let Some(plt) = self.maybe_geometry("plt") {
            let e = plt.access_energy();
            push("plt", c.plt_ops as f64 * e, &mut per);
        }

        // Functional units and fixed pipeline energy.
        let fu: f64 = c
            .fu_ops
            .iter()
            .zip(FU_ENERGY)
            .map(|(&n, e)| n as f64 * e)
            .sum();
        push("fu", fu, &mut per);
        push("frontend", c.fetched as f64 * FETCH_ENERGY, &mut per);
        push(
            "pipeline",
            c.dispatched as f64 * DISPATCH_ENERGY + c.committed as f64 * COMMIT_ENERGY,
            &mut per,
        );

        // L1 caches (included in core power, per the paper).
        let l1i_e = self.l1_structures[0].access_energy();
        let l1d_e = self.l1_structures[1].access_energy();
        push("l1i", r.l1i.accesses as f64 * l1i_e, &mut per);
        push("l1d", r.l1d.accesses as f64 * l1d_e, &mut per);

        let dynamic: f64 = per.iter().map(|(_, e)| e).sum();
        let leak_per_cycle: f64 = self
            .structures
            .iter()
            .chain(self.l1_structures.iter())
            .map(StructureGeometry::leakage_per_cycle)
            .sum::<f64>()
            + FIXED_LOGIC_LEAKAGE;
        let leakage = leak_per_cycle * r.cycles as f64;
        let committed: u64 = r.threads.iter().map(|t| t.committed).sum();

        EnergyReport {
            dynamic,
            leakage,
            per_structure: per,
            committed,
            cycles: r.cycles,
        }
    }

    /// The L2 geometry (for reports that want uncore context).
    pub fn l2(&self) -> &StructureGeometry {
        &self.l2
    }

    /// The structure inventory (for breakdown tables and tests).
    pub fn structures(&self) -> &[StructureGeometry] {
        &self.structures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_core::{CoreConfig, Simulation};

    #[test]
    fn area_ordering_matches_table2() {
        let base = EnergyModel::for_config(&CoreConfig::base64(4));
        let shelf =
            EnergyModel::for_config(&CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true));
        let big = EnergyModel::for_config(&CoreConfig::base128(4));
        let a0 = base.core_area(false);
        let a1 = shelf.core_area(false);
        let a2 = big.core_area(false);
        assert!(a1 > a0, "the shelf adds area");
        assert!(a2 > a1, "doubling all structures adds much more");
        let shelf_pct = (a1 / a0 - 1.0) * 100.0;
        let big_pct = (a2 / a0 - 1.0) * 100.0;
        // Table II: +3.1% and +9.7% without L1s. Enforce the shape loosely.
        assert!(
            shelf_pct > 0.5 && shelf_pct < 8.0,
            "shelf area +{shelf_pct:.1}%"
        );
        assert!(
            big_pct > 5.0 && big_pct < 20.0,
            "Base-128 area +{big_pct:.1}%"
        );
        assert!(
            big_pct > 2.0 * shelf_pct,
            "shelf is much cheaper than doubling"
        );
    }

    #[test]
    fn including_l1_dilutes_the_increase() {
        let base = EnergyModel::for_config(&CoreConfig::base64(4));
        let big = EnergyModel::for_config(&CoreConfig::base128(4));
        let without = big.core_area(false) / base.core_area(false);
        let with = big.core_area(true) / base.core_area(true);
        assert!(with < without, "L1 area is common to both designs");
    }

    #[test]
    fn report_accounts_energy() {
        let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
        let model = EnergyModel::for_config(&cfg);
        let mut sim = Simulation::from_names(cfg, &["hmmer", "gcc"], 4).unwrap();
        let r = sim.run(2_000, 8_000);
        let rep = model.report(&r);
        assert!(rep.dynamic > 0.0);
        assert!(rep.leakage > 0.0);
        assert!(rep.total() > rep.dynamic);
        assert!(rep.edp() > 0.0);
        let shelf_part = rep.per_structure.iter().find(|(n, _)| *n == "shelf");
        assert!(
            shelf_part.is_some_and(|(_, e)| *e > 0.0),
            "shelf energy counted"
        );
        // The IQ CAM should dominate the shelf FIFO.
        let iq_e = rep
            .per_structure
            .iter()
            .find(|(n, _)| *n == "iq")
            .unwrap()
            .1;
        let shelf_e = shelf_part.unwrap().1;
        assert!(
            iq_e > shelf_e,
            "IQ ({iq_e}) should out-consume the shelf ({shelf_e})"
        );
    }

    #[test]
    fn base_config_has_no_shelf_structures() {
        let model = EnergyModel::for_config(&CoreConfig::base64(4));
        assert!(model.structures().iter().all(|s| s.name != "shelf"));
    }

    #[test]
    #[should_panic(expected = "not in this design point")]
    fn missing_structure_panics() {
        let model = EnergyModel::for_config(&CoreConfig::base64(4));
        let _ = model.geometry("shelf");
    }
}
