//! CACTI-style geometry scaling for SRAM/CAM structures.

/// Whether an array is addressed (RAM) or searched (CAM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayKind {
    /// Decoded-address SRAM array (ROB, PRF, FIFO shelf, caches).
    Ram,
    /// Content-addressable array: every access drives match lines across
    /// all entries (IQ wakeup, LSQ search). Much more expensive per access.
    Cam,
}

/// Geometry of one storage structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureGeometry {
    /// Human-readable name (report keys).
    pub name: &'static str,
    /// Number of entries.
    pub entries: usize,
    /// Bits per entry.
    pub bits: usize,
    /// Total read + write ports.
    pub ports: usize,
    /// RAM or CAM.
    pub kind: ArrayKind,
    /// Cell-area scale: 1.0 for loose multiported core arrays, ~0.35 for
    /// dense 6T cache SRAM.
    pub cell_scale: f64,
}

/// Energy multiplier of a CAM access relative to a RAM access of the same
/// geometry (all match lines toggle).
const CAM_ENERGY_FACTOR: f64 = 2.5;
/// Area multiplier of a CAM cell relative to a RAM cell.
const CAM_AREA_FACTOR: f64 = 2.0;

impl StructureGeometry {
    /// Creates a RAM structure.
    pub fn ram(name: &'static str, entries: usize, bits: usize, ports: usize) -> Self {
        StructureGeometry {
            name,
            entries,
            bits,
            ports,
            kind: ArrayKind::Ram,
            cell_scale: 1.0,
        }
    }

    /// Creates a dense-SRAM structure (caches: 6T cells, single-ported
    /// banks, ~0.35x the cell area of the loose multiported core arrays).
    pub fn dense_ram(name: &'static str, entries: usize, bits: usize, ports: usize) -> Self {
        StructureGeometry {
            name,
            entries,
            bits,
            ports,
            kind: ArrayKind::Ram,
            cell_scale: 0.35,
        }
    }

    /// Creates a CAM structure.
    pub fn cam(name: &'static str, entries: usize, bits: usize, ports: usize) -> Self {
        StructureGeometry {
            name,
            entries,
            bits,
            ports,
            kind: ArrayKind::Cam,
            cell_scale: 1.0,
        }
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> f64 {
        (self.entries * self.bits) as f64
    }

    /// Per-access dynamic energy in arbitrary energy units.
    ///
    /// RAM access energy scales with the accessed word (`bits`) plus the
    /// bitline/wordline overhead that grows with `sqrt(entries)`; CAM access
    /// energy scales with the *whole* array (every entry compares), which is
    /// what makes a FIFO shelf fundamentally cheaper than an unordered IQ of
    /// the same capacity — the paper's core energy argument.
    pub fn access_energy(&self) -> f64 {
        let e = self.entries.max(1) as f64;
        let b = self.bits as f64;
        match self.kind {
            ArrayKind::Ram => b * (1.0 + 0.15 * e.sqrt()),
            ArrayKind::Cam => CAM_ENERGY_FACTOR * b * (1.0 + 0.038 * e),
        }
    }

    /// Area in arbitrary area units: cell area grows roughly linearly with
    /// port count (each port adds a wordline and a bitline pair, and large
    /// multiported arrays are banked rather than fully multiported); CAM
    /// cells are larger.
    pub fn area(&self) -> f64 {
        let cell = match self.kind {
            ArrayKind::Ram => 1.0,
            ArrayKind::Cam => CAM_AREA_FACTOR,
        };
        let p = self.ports.max(1) as f64;
        self.total_bits() * cell * self.cell_scale * (0.6 + 0.35 * p)
    }

    /// Leakage power per cycle in arbitrary units (proportional to area).
    pub fn leakage_per_cycle(&self) -> f64 {
        0.0005 * self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_costs_more_than_ram_per_access() {
        let ram = StructureGeometry::ram("a", 32, 64, 4);
        let cam = StructureGeometry::cam("b", 32, 64, 4);
        assert!(cam.access_energy() > 2.0 * ram.access_energy());
        assert!(cam.area() > ram.area());
    }

    #[test]
    fn cam_energy_scales_linearly_with_entries() {
        let small = StructureGeometry::cam("s", 32, 40, 4);
        let big = StructureGeometry::cam("b", 64, 40, 4);
        let ratio = big.access_energy() / small.access_energy();
        assert!(
            ratio > 1.4,
            "doubling a CAM should scale its access energy strongly: {ratio}"
        );
    }

    #[test]
    fn ram_energy_scales_sublinearly_with_entries() {
        let small = StructureGeometry::ram("s", 32, 40, 4);
        let big = StructureGeometry::ram("b", 64, 40, 4);
        let ratio = big.access_energy() / small.access_energy();
        assert!(
            ratio < 1.5,
            "RAM access energy grows ~sqrt(entries): {ratio}"
        );
    }

    #[test]
    fn area_scales_with_ports() {
        // (0.6 + 0.35p): 8 ports vs 2 ports is (3.4 / 1.3) ~ 2.6x.
        let few = StructureGeometry::ram("f", 64, 64, 2);
        let many = StructureGeometry::ram("m", 64, 64, 8);
        assert!(many.area() > 2.0 * few.area());
        assert!(many.area() < 4.0 * few.area());
    }

    #[test]
    fn dense_cells_shrink_caches() {
        let loose = StructureGeometry::ram("l", 4096, 64, 2);
        let dense = StructureGeometry::dense_ram("d", 4096, 64, 2);
        assert!((dense.area() - 0.35 * loose.area()).abs() < 1e-9);
    }

    #[test]
    fn shelf_vs_iq_asymmetry() {
        // A 64-entry FIFO (2 ports: push + pop) is far cheaper than a
        // 32-entry IQ CAM with full issue-width ports — the design's premise.
        let shelf = StructureGeometry::ram("shelf", 64, 80, 2);
        let iq = StructureGeometry::cam("iq", 32, 80, 8);
        assert!(iq.access_energy() > 1.5 * shelf.access_energy());
        assert!(iq.area() > shelf.area());
    }

    #[test]
    fn leakage_tracks_area() {
        let s = StructureGeometry::ram("s", 128, 64, 2);
        assert!(s.leakage_per_cycle() > 0.0);
        let big = StructureGeometry::ram("b", 256, 64, 2);
        assert!(big.leakage_per_cycle() > s.leakage_per_cycle());
    }
}
