//! `shelfsim-energy` — a McPAT-style analytic energy, power, and area model
//! for the shelfsim core.
//!
//! The paper uses McPAT (with the Xi et al. HPCA 2015 corrections) to model
//! a physical-register-file OOO core, extended with "the shelf, RAT/free
//! list, rename logic, expanded issue/scheduling logic, speculation shift
//! registers, dependency tracking, and steering structures/logic" (§V). We
//! reproduce the same *methodology*: every structure is described by its
//! geometry (entries × bits × ports, RAM or CAM), per-access energy and area
//! follow CACTI-style scaling laws, dynamic energy is events × per-event
//! energy using the simulator's counters, and leakage is proportional to
//! area. Absolute joules are arbitrarily calibrated; the figures of merit
//! are the *relative* EDP (Figure 13) and area (Table II) across design
//! points, which depend only on the scaling laws.
//!
//! # Example
//!
//! ```
//! use shelfsim_core::CoreConfig;
//! use shelfsim_energy::EnergyModel;
//!
//! let base = EnergyModel::for_config(&CoreConfig::base64(4));
//! let big = EnergyModel::for_config(&CoreConfig::base128(4));
//! assert!(big.core_area(false) > base.core_area(false));
//! ```

pub mod model;
pub mod structures;

pub use model::{EnergyModel, EnergyReport};
pub use structures::{ArrayKind, StructureGeometry};
