//! Golden end-to-end determinism: the simulator is a pure function of
//! (config, workload, seed). Two fresh processes-worth of state driven with
//! the same inputs must agree on every architectural counter bit-for-bit,
//! and a resumed campaign must reproduce its journal byte-for-byte.
//!
//! These tests are the safety net for engine-throughput work: any hot-path
//! "optimization" that changes scheduling order, wakeup timing, or RNG
//! consumption trips them immediately.

use shelfsim::analyze::design_by_name;
use shelfsim::campaign::{run_campaign, CampaignSpec};
use shelfsim::Simulation;

const MIX4: &[&str] = &["gcc", "mcf", "hmmer", "lbm"];
const MIX2: &[&str] = &["astar", "sjeng"];

/// Runs one design twice from scratch and demands bit-identical results.
fn assert_golden(design: &str, mix: &[&str], seed: u64, warmup: u64, measure: u64) {
    let run = |_: usize| {
        let cfg = design_by_name(design, mix.len()).expect("known design");
        let mut sim = Simulation::from_names(cfg, mix, seed).expect("suite benchmarks");
        sim.run(warmup, measure)
    };
    let (a, b) = (run(0), run(1));
    assert_eq!(
        a.counters, b.counters,
        "{design} {mix:?} seed {seed}: counters diverged between identical runs"
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(
        a.ipc().to_bits(),
        b.ipc().to_bits(),
        "{design}: IPC must match to the last bit"
    );
    for (ta, tb) in a.threads.iter().zip(&b.threads) {
        assert_eq!(ta.committed, tb.committed);
        assert_eq!(ta.cpi.to_bits(), tb.cpi.to_bits());
    }
    assert!(a.counters.committed > 0, "{design}: golden run must commit");
}

/// Every design point of the bench matrix (plus the steering variants) is
/// bit-deterministic on a 4-thread and a 2-thread mix.
#[test]
fn identical_runs_produce_identical_counters() {
    for design in [
        "base64",
        "shelf-cons",
        "shelf-opt",
        "shelf-oracle",
        "base128",
    ] {
        assert_golden(design, MIX4, 7, 1_000, 6_000);
    }
    assert_golden("shelf-opt", MIX2, 9, 500, 4_000);
}

/// The seed matters: a different seed must not silently reproduce the same
/// run (guards against the golden harness comparing constants).
#[test]
fn different_seeds_diverge() {
    let cfg = design_by_name("shelf-opt", MIX4.len()).expect("known design");
    let a = Simulation::from_names(cfg.clone(), MIX4, 7)
        .expect("suite")
        .run(1_000, 6_000);
    let b = Simulation::from_names(cfg, MIX4, 8)
        .expect("suite")
        .run(1_000, 6_000);
    assert_ne!(
        a.counters, b.counters,
        "distinct seeds should produce distinct runs"
    );
}

fn temp_journal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("shelfsim_golden_tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn campaign_matrix() -> Vec<shelfsim::campaign::RunSpec> {
    CampaignSpec::matrix(
        &["base64".to_owned(), "shelf-opt".to_owned()],
        &[
            vec!["gcc".to_owned(), "mcf".to_owned()],
            vec!["hmmer".to_owned(), "lbm".to_owned()],
        ],
        7,     // seed
        300,   // warm-up cycles
        1_500, // measured cycles
    )
}

/// A campaign journal is a pure function of its spec (single worker), and a
/// killed-then-resumed campaign reproduces it byte-for-byte.
#[test]
fn campaign_resume_reproduces_journal_byte_for_byte() {
    // Reference: one uninterrupted campaign.
    let reference = temp_journal("golden_ref.jsonl");
    let spec = CampaignSpec::new(campaign_matrix())
        .with_watchdog(Some(5_000))
        .with_workers(1)
        .with_journal(&reference);
    let report = run_campaign(&spec).expect("reference campaign");
    assert_eq!(report.completed(), 4);
    let ref_bytes = std::fs::read(&reference).expect("reference journal");
    assert!(!ref_bytes.is_empty());

    // Determinism: the identical spec into a fresh journal writes the same
    // bytes.
    let rerun = temp_journal("golden_rerun.jsonl");
    let spec2 = CampaignSpec::new(campaign_matrix())
        .with_watchdog(Some(5_000))
        .with_workers(1)
        .with_journal(&rerun);
    run_campaign(&spec2).expect("rerun campaign");
    assert_eq!(
        ref_bytes,
        std::fs::read(&rerun).expect("rerun journal"),
        "identical campaigns must journal identical bytes"
    );

    // Kill/resume: journal only a prefix, then re-invoke the full campaign
    // against the same file. The resumed half appends exactly the missing
    // lines — the final journal is byte-identical to the uninterrupted one.
    let resumed = temp_journal("golden_resumed.jsonl");
    let prefix = CampaignSpec::new(campaign_matrix()[..2].to_vec())
        .with_watchdog(Some(5_000))
        .with_workers(1)
        .with_journal(&resumed);
    assert_eq!(run_campaign(&prefix).expect("prefix").completed(), 2);
    let full = CampaignSpec::new(campaign_matrix())
        .with_watchdog(Some(5_000))
        .with_workers(1)
        .with_journal(&resumed);
    let resumed_report = run_campaign(&full).expect("resume");
    assert_eq!(resumed_report.resumed, 2, "the journaled prefix is skipped");
    assert_eq!(
        ref_bytes,
        std::fs::read(&resumed).expect("resumed journal"),
        "resume must reproduce the uninterrupted journal byte-for-byte"
    );
}

/// Trace exports are part of the determinism contract: two fresh
/// simulations of the same (config, workload, seed) with tracing enabled
/// must export byte-identical JSONL and Chrome trace-event documents.
#[test]
fn trace_exports_are_byte_identical_across_reruns() {
    let run = |_: usize| {
        let cfg = design_by_name("shelf-opt", MIX2.len()).expect("known design");
        let mut sim = Simulation::from_names(cfg, MIX2, 11).expect("suite benchmarks");
        sim.enable_tracer(256, 8);
        sim.run(500, 4_000);
        let tracer = sim.tracer().expect("tracer enabled");
        (tracer.export_jsonl(), tracer.export_chrome())
    };
    let (jsonl_a, chrome_a) = run(0);
    let (jsonl_b, chrome_b) = run(1);
    assert!(
        jsonl_a.lines().count() > 8,
        "traced run must retain lifecycle records"
    );
    assert_eq!(jsonl_a, jsonl_b, "JSONL export must be byte-identical");
    assert_eq!(chrome_a, chrome_b, "Chrome export must be byte-identical");
}

/// Tracing must not perturb the simulation: architectural counters with
/// the tracer on are bit-identical to the untraced run.
#[test]
fn tracing_does_not_perturb_architectural_state() {
    let run = |traced: bool| {
        let cfg = design_by_name("base64", MIX2.len()).expect("known design");
        let mut sim = Simulation::from_names(cfg, MIX2, 5).expect("suite benchmarks");
        if traced {
            sim.enable_tracer(128, 4);
        }
        sim.run(500, 4_000)
    };
    let (plain, traced) = (run(false), run(true));
    assert_eq!(
        plain.counters, traced.counters,
        "enabling the tracer must not change a single counter bit"
    );
}
