//! # shelfsim
//!
//! A cycle-level simultaneous-multithreading (SMT) out-of-order core
//! simulator with **hybrid shelf dispatch**, reproducing:
//!
//! > Faissal M. Sleiman and Thomas F. Wenisch. *Efficiently Scaling
//! > Out-of-Order Cores for Simultaneous Multithreading.* ISCA 2016.
//!
//! The paper's observation: in an SMT core, thread interleaving spreads
//! dependent instructions apart, so **more than half** of instructions in a
//! 4-thread window issue *in program order* after all false dependences
//! have resolved ("in-sequence"). Such instructions gain nothing from the
//! expensive out-of-order machinery they occupy. The proposed design adds a
//! per-thread FIFO issue queue — the **shelf** — and steers predicted
//! in-sequence instructions to it at *instruction granularity*; shelf
//! instructions allocate no ROB, IQ, LSQ, or physical-register resources,
//! effectively doubling the instruction window for a ~3% core-area cost.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`workload`] — 28 synthetic SPEC CPU2006-analogue benchmarks and
//!   balanced-random SMT mixes;
//! * [`mem`] — the L1I/L1D/L2/DRAM hierarchy with MSHRs;
//! * [`uarch`] — the microarchitectural building blocks (ROB, IQ, shelf,
//!   rename with the decoupled tag space, issue tracking, SSRs, store sets,
//!   branch prediction, ICOUNT, steering tables);
//! * [`core`] — the cycle-level pipeline and the [`Simulation`] driver;
//! * [`energy`] — the McPAT-style energy/area model;
//! * [`stats`] — STP, weighted CDFs, and aggregation helpers;
//! * [`analyze`] — the static-analysis framework: CFG + worklist dataflow
//!   passes, kernel/config lints, static IPC upper bounds, resource-adequacy
//!   proofs, and the campaign [`preflight`] bundle (the feature-gated
//!   dynamic invariant sanitizer rides in `--features sanitize`);
//! * [`campaign`] — the fault-tolerant sweep runner (per-run isolation,
//!   forward-progress watchdog, retry escalation, resumable journals,
//!   deterministic fault injection) scaled out with work-stealing worker
//!   deques, per-worker journal shards merged on read, a config-hash
//!   result cache, and a Pareto-frontier report (STP vs energy-delay vs
//!   area);
//! * [`trace`] — the bounded observability layer (instruction lifecycle
//!   ring, occupancy sampling, per-thread stall attribution, JSONL and
//!   Chrome trace-event exporters);
//! * [`validate`] — the differential validation harness: lockstep
//!   comparison against an in-order functional reference, structure-size
//!   sensitivity sweeps, divergence shrinking over generated programs, and
//!   (behind `--features chaos`) mutation testing of the validator itself.
//!
//! # Quickstart
//!
//! ```
//! use shelfsim::{CoreConfig, Simulation, SteerPolicy};
//!
//! // A 4-thread SMT core with a 64-entry ROB plus a 64-entry shelf,
//! // steering with the practical RCT/PLT hardware of paper §IV-B.
//! let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
//! let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 42).unwrap();
//! let result = sim.run(2_000, 10_000);
//! assert!(result.counters.issued_shelf > 0);
//! println!("IPC: {:.2}", result.ipc());
//! ```

pub use shelfsim_analyze as analyze;
pub use shelfsim_campaign as campaign;
pub use shelfsim_core as core;
pub use shelfsim_energy as energy;
pub use shelfsim_isa as isa;
pub use shelfsim_mem as mem;
pub use shelfsim_stats as stats;
pub use shelfsim_trace as trace;
pub use shelfsim_uarch as uarch;
pub use shelfsim_validate as validate;
pub use shelfsim_workload as workload;

pub use shelfsim_analyze::{
    aggregate_bound, apply_override, check_adequacy, ipc_bound, preflight, Diagnostic,
    IpcBoundReport, Report, Severity,
};
pub use shelfsim_campaign::{
    pareto_report, run_campaign, shard_plan, CampaignReport, CampaignSpec, FaultKind, FaultMix,
    FaultPlan, ParetoReport, ResultCache, RunSpec, ShardedJournal, SweepSpec,
};
pub use shelfsim_core::{
    Completion, Core, CoreConfig, Counters, MemoryModel, RunMeta, RunResult, SimError, Simulation,
    SteerPolicy, ThreadResult, Watchdog,
};
pub use shelfsim_energy::{EnergyModel, EnergyReport};
pub use shelfsim_stats::{geomean, stp, WeightedCdf};
pub use shelfsim_trace::{Lifecycle, OccupancySample, StallCause, Tracer};
pub use shelfsim_workload::{balanced_random_mixes, suite, Mix};
