//! Model-based property tests for the window structures: each structure is
//! compared against a simple reference implementation under random
//! operation sequences.

use proptest::prelude::*;
use shelfsim_uarch::{FreeList, IssueTracker, OrderedQueue, StoreSets};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum QueueOp {
    Push(u32),
    Pop,
    Truncate(u64),
}

fn arb_queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(QueueOp::Push),
            Just(QueueOp::Pop),
            (0u64..64).prop_map(QueueOp::Truncate),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn ordered_queue_matches_reference(ops in arb_queue_ops(), cap in 1usize..32) {
        let mut q = OrderedQueue::new(cap);
        // Reference: (index, value) pairs plus a next-index counter.
        let mut reference: VecDeque<(u64, u32)> = VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    let got = q.push(v);
                    if reference.len() < cap {
                        prop_assert_eq!(got, Ok(next));
                        reference.push_back((next, v));
                        next += 1;
                    } else {
                        prop_assert!(got.is_err());
                    }
                }
                QueueOp::Pop => {
                    prop_assert_eq!(q.pop_front(), reference.pop_front());
                }
                QueueOp::Truncate(from) => {
                    let removed = q.truncate_from(from);
                    let mut expected = Vec::new();
                    while reference.back().is_some_and(|&(i, _)| i >= from) {
                        expected.push(reference.pop_back().expect("non-empty").1);
                    }
                    prop_assert_eq!(removed, expected);
                    // The allocator may rewind on truncation; stay aligned
                    // with the implementation's next index.
                    next = q.next_index();
                }
            }
            prop_assert_eq!(q.len(), reference.len());
            prop_assert_eq!(q.head_index(), reference.front().map(|&(i, _)| i));
            prop_assert_eq!(q.tail_index(), reference.back().map(|&(i, _)| i));
            for &(i, v) in &reference {
                prop_assert_eq!(q.get(i), Some(&v));
            }
        }
    }

    #[test]
    fn freelist_never_hands_out_duplicates(
        cap in 1u32..64,
        ops in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut fl = FreeList::new(100, cap);
        let mut live: Vec<u32> = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(id) = fl.allocate() {
                    prop_assert!(!live.contains(&id), "duplicate allocation of {id}");
                    prop_assert!(fl.contains_range(id));
                    live.push(id);
                } else {
                    prop_assert_eq!(live.len(), cap as usize);
                }
            } else if let Some(id) = live.pop() {
                fl.free(id);
            }
            prop_assert_eq!(fl.available() + live.len(), cap as usize);
        }
    }

    #[test]
    fn issue_tracker_head_is_oldest_unissued(order in prop::collection::vec(0usize..32, 1..32)) {
        // Dispatch N instructions, then issue them in an arbitrary order
        // derived from `order`; the head must always equal the oldest
        // unissued index.
        let n = order.len() as u64;
        let mut t = IssueTracker::new();
        for i in 0..n {
            t.dispatch(i);
        }
        let mut unissued: Vec<u64> = (0..n).collect();
        for pick in order {
            if unissued.is_empty() {
                break;
            }
            let idx = unissued.remove(pick % unissued.len());
            t.issue(idx);
            let expect_head = unissued.iter().copied().min().unwrap_or(n);
            prop_assert_eq!(t.head(), expect_head);
            prop_assert_eq!(t.eligible(expect_head), true);
            if let Some(&m) = unissued.iter().min() {
                prop_assert!(!t.eligible(m + 1));
            }
        }
    }

    #[test]
    fn store_sets_dependences_point_at_live_older_stores(
        pcs in prop::collection::vec((0u64..64, 0u64..64), 1..60),
    ) {
        let mut ss = StoreSets::new(256, 16);
        for (token, (store_pc, load_pc)) in pcs.into_iter().enumerate() {
            let token = token as u64;
            ss.train_violation(store_pc * 4, load_pc * 4);
            ss.store_dispatched(store_pc * 4, token);
            // The trained load must now see the just-dispatched store.
            prop_assert_eq!(ss.load_dependence(load_pc * 4), Some(token));
            ss.store_resolved(store_pc * 4, token);
            prop_assert_eq!(ss.load_dependence(load_pc * 4), None);
        }
    }
}
