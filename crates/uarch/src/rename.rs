//! The register alias table with the paper's decoupled tag space.
//!
//! Paper §III-C, Figures 6–8: in a conventional PRF-based core the physical
//! register index (PRI) doubles as the wakeup tag. Because several shelf
//! instructions may *overwrite the same physical register*, the tag must be
//! decoupled from the PRI: every mapping-table entry maps an architectural
//! register to **both** a PRI and a tag. IQ instructions allocate a fresh
//! PRI from the physical free list (tag = PRI); shelf instructions keep the
//! current PRI and allocate a tag from the *extension* free list.

use shelfsim_isa::NUM_ARCH_REGS;

/// A physical register index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PhysReg(pub u32);

/// A wakeup tag: either a physical tag (`0..num_phys_regs`, equal to the
/// PRI it names) or an extension tag (`num_phys_regs..`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tag(pub u32);

impl Tag {
    /// Flat index into tag-keyed tables (the scoreboard).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PhysReg {
    /// Flat index into PRF-keyed tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The physical tag naming this register (paper: "both its destination
    /// PRI and tag are set to that register's index").
    #[inline]
    pub fn as_tag(self) -> Tag {
        Tag(self.0)
    }
}

/// One RAT entry: the current *(PRI, tag)* pair of an architectural register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mapping {
    /// Physical register holding (or about to hold) the value.
    pub pri: PhysReg,
    /// Wakeup tag of the most recent writer.
    pub tag: Tag,
}

impl Mapping {
    /// Returns `true` when the tag comes from the extension space (i.e., the
    /// latest writer was a shelf instruction).
    pub fn tag_is_extended(&self) -> bool {
        self.tag.0 != self.pri.0
    }
}

/// A per-thread register alias table mapping architectural registers to
/// *(PRI, tag)* pairs.
///
/// Squash recovery is walk-back based: the pipeline records each
/// instruction's previous mapping at rename and calls [`RenameTable::set`]
/// in reverse program order to restore (the paper's design extends the
/// conventional RAT checkpoint/walk machinery; the simulator models the
/// state, not the recovery circuit).
///
/// # Example
///
/// ```
/// use shelfsim_isa::ArchReg;
/// use shelfsim_uarch::{Mapping, PhysReg, RenameTable};
///
/// let mut rat = RenameTable::new(|i| Mapping { pri: PhysReg(i as u32), tag: PhysReg(i as u32).as_tag() });
/// let r1 = ArchReg::int(1);
/// let old = rat.get(r1);
/// rat.set(r1, Mapping { pri: PhysReg(99), tag: PhysReg(99).as_tag() });
/// assert_ne!(rat.get(r1), old);
/// ```
#[derive(Clone, Debug)]
pub struct RenameTable {
    map: [Mapping; NUM_ARCH_REGS],
}

impl RenameTable {
    /// Creates a table initialized by `init(arch_index)`.
    pub fn new(init: impl Fn(usize) -> Mapping) -> Self {
        let map = std::array::from_fn(init);
        RenameTable { map }
    }

    /// Current mapping of `reg`.
    #[inline]
    pub fn get(&self, reg: shelfsim_isa::ArchReg) -> Mapping {
        self.map[reg.index()]
    }

    /// Replaces the mapping of `reg`, returning the previous one (the value
    /// the instruction must remember for retirement-time freeing and squash
    /// recovery).
    #[inline]
    pub fn set(&mut self, reg: shelfsim_isa::ArchReg, m: Mapping) -> Mapping {
        std::mem::replace(&mut self.map[reg.index()], m)
    }

    /// Iterates over all `(arch_index, mapping)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Mapping)> + '_ {
        self.map.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_isa::ArchReg;

    fn identity() -> RenameTable {
        RenameTable::new(|i| Mapping {
            pri: PhysReg(i as u32),
            tag: Tag(i as u32),
        })
    }

    #[test]
    fn initial_mappings_are_physical() {
        let rat = identity();
        for (_, m) in rat.iter() {
            assert!(!m.tag_is_extended());
        }
    }

    #[test]
    fn set_returns_previous_mapping() {
        let mut rat = identity();
        let r = ArchReg::int(3);
        let prev = rat.set(
            r,
            Mapping {
                pri: PhysReg(70),
                tag: Tag(70),
            },
        );
        assert_eq!(prev.pri, PhysReg(3));
        assert_eq!(rat.get(r).pri, PhysReg(70));
    }

    #[test]
    fn extension_tag_detection() {
        // A shelf write keeps the PRI but installs an extension tag.
        let m = Mapping {
            pri: PhysReg(5),
            tag: Tag(200),
        };
        assert!(m.tag_is_extended());
        let m2 = Mapping {
            pri: PhysReg(5),
            tag: Tag(5),
        };
        assert!(!m2.tag_is_extended());
    }

    #[test]
    fn walk_back_restores_state() {
        let mut rat = identity();
        let r = ArchReg::fp(0);
        let before = rat.get(r);
        // Three nested renames, then restore in reverse order.
        let p1 = rat.set(
            r,
            Mapping {
                pri: PhysReg(80),
                tag: Tag(80),
            },
        );
        let p2 = rat.set(
            r,
            Mapping {
                pri: PhysReg(80),
                tag: Tag(130),
            },
        );
        let p3 = rat.set(
            r,
            Mapping {
                pri: PhysReg(81),
                tag: Tag(81),
            },
        );
        rat.set(r, p3);
        rat.set(r, p2);
        rat.set(r, p1);
        assert_eq!(rat.get(r), before);
    }

    #[test]
    fn phys_reg_tag_round_trip() {
        assert_eq!(PhysReg(7).as_tag(), Tag(7));
        assert_eq!(Tag(7).index(), 7);
        assert_eq!(PhysReg(7).index(), 7);
    }
}
