//! The Parent Loads Table of the practical steering mechanism
//! (paper §IV-B, Figure 9).
//!
//! A small bit matrix tracks which architectural registers depend (directly
//! or transitively) on a *sampled* in-flight load. Columns are loads (the
//! paper finds 4 per thread sufficient); rows are architectural registers.
//! When a register's Ready Cycle Table counter reaches zero but the register
//! is not actually ready — the tell-tale of an L1 miss — the register's
//! parent-load bits are loaded into the *stalled loads* bitvector and every
//! register sharing a stalled parent has its RCT counter frozen, pushing the
//! predicted schedule of the whole dependence tree back one cycle per cycle.

use shelfsim_isa::NUM_ARCH_REGS;

/// The per-thread parent-loads bit matrix plus the stalled-loads bitvector.
#[derive(Clone, Debug)]
pub struct ParentLoadsTable {
    /// `rows[r]` = bitmask of load columns register `r` depends on.
    rows: [u8; NUM_ARCH_REGS],
    /// Bit `r` set iff `rows[r] != 0`; lets per-cycle scans visit only
    /// registers that actually depend on a sampled load.
    nonzero: u64,
    /// Columns currently assigned to an in-flight load.
    allocated: u8,
    /// Columns whose load is known to be running late.
    stalled: u8,
    num_columns: u32,
}

impl ParentLoadsTable {
    /// Creates a table with `columns` load slots (1..=8).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= columns <= 8`.
    pub fn new(columns: u32) -> Self {
        assert!((1..=8).contains(&columns), "column count must be 1..=8");
        ParentLoadsTable {
            rows: [0; NUM_ARCH_REGS],
            nonzero: 0,
            allocated: 0,
            stalled: 0,
            num_columns: columns,
        }
    }

    /// Tries to assign a free column to a newly steered load writing `dest`.
    ///
    /// Returns the column bit, or `None` if every column is busy (the load
    /// simply goes unsampled — the paper notes sampling is sufficient). The
    /// destination row is set to the load's own column OR'd with its
    /// operands' parents, since the load itself may depend on earlier loads.
    pub fn sample_load(&mut self, dest: shelfsim_isa::ArchReg, operand_mask: u8) -> Option<u8> {
        let free = (0..self.num_columns)
            .map(|c| 1u8 << c)
            .find(|bit| self.allocated & bit == 0)?;
        self.allocated |= free;
        self.set_row(dest.index(), free | operand_mask);
        Some(free)
    }

    /// Propagates parentage to a non-load instruction's destination: the
    /// destination depends on the union of its operands' parent loads.
    pub fn propagate(&mut self, dest: shelfsim_isa::ArchReg, operand_mask: u8) {
        self.set_row(dest.index(), operand_mask);
    }

    #[inline]
    fn set_row(&mut self, index: usize, mask: u8) {
        self.rows[index] = mask;
        if mask != 0 {
            self.nonzero |= 1u64 << index;
        } else {
            self.nonzero &= !(1u64 << index);
        }
    }

    /// The parent-load mask of `reg` (to be OR'd across an instruction's
    /// operands).
    #[inline]
    pub fn mask(&self, reg: shelfsim_isa::ArchReg) -> u8 {
        self.rows[reg.index()]
    }

    /// Marks the columns in `mask` as stalled (an RCT counter hit zero while
    /// the register was still not ready).
    pub fn mark_stalled(&mut self, mask: u8) {
        self.stalled |= mask & self.allocated;
    }

    /// The load owning `column_bit` completed: clear its column everywhere
    /// and free it for reuse.
    pub fn load_completed(&mut self, column_bit: u8) {
        self.allocated &= !column_bit;
        self.stalled &= !column_bit;
        let mut live = self.nonzero;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            let row = self.rows[i] & !column_bit;
            self.rows[i] = row;
            if row == 0 {
                self.nonzero &= !(1u64 << i);
            }
        }
    }

    /// Should `reg`'s RCT counter be frozen this cycle? True when it shares
    /// a parent load with the stalled set.
    #[inline]
    pub fn frozen(&self, reg_index: usize) -> bool {
        self.rows[reg_index] & self.stalled != 0
    }

    /// Currently stalled column bits.
    pub fn stalled_mask(&self) -> u8 {
        self.stalled
    }

    /// Bitmask over register indices whose parent-load row is nonzero.
    #[inline]
    pub fn nonzero_rows(&self) -> u64 {
        self.nonzero
    }

    /// Number of columns currently tracking a load.
    pub fn columns_in_use(&self) -> u32 {
        self.allocated.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_isa::ArchReg;

    #[test]
    fn sampling_assigns_distinct_columns_until_full() {
        let mut plt = ParentLoadsTable::new(2);
        let a = plt.sample_load(ArchReg::int(1), 0).unwrap();
        let b = plt.sample_load(ArchReg::int(2), 0).unwrap();
        assert_ne!(a, b);
        assert!(
            plt.sample_load(ArchReg::int(3), 0).is_none(),
            "only 2 columns"
        );
        assert_eq!(plt.columns_in_use(), 2);
    }

    #[test]
    fn dependence_propagates_transitively() {
        let mut plt = ParentLoadsTable::new(4);
        let col = plt.sample_load(ArchReg::int(1), 0).unwrap();
        // r2 = f(r1); r3 = f(r2): both inherit the load's column.
        let m1 = plt.mask(ArchReg::int(1));
        plt.propagate(ArchReg::int(2), m1);
        let m2 = plt.mask(ArchReg::int(2));
        plt.propagate(ArchReg::int(3), m2);
        assert_eq!(plt.mask(ArchReg::int(3)), col);
    }

    #[test]
    fn stall_freezes_whole_tree() {
        let mut plt = ParentLoadsTable::new(4);
        let col = plt.sample_load(ArchReg::int(1), 0).unwrap();
        plt.propagate(ArchReg::int(2), col);
        plt.propagate(ArchReg::int(3), 0); // independent
        plt.mark_stalled(col);
        assert!(plt.frozen(ArchReg::int(1).index()));
        assert!(plt.frozen(ArchReg::int(2).index()));
        assert!(!plt.frozen(ArchReg::int(3).index()));
    }

    #[test]
    fn completion_releases_column_and_stall() {
        let mut plt = ParentLoadsTable::new(1);
        let col = plt.sample_load(ArchReg::int(1), 0).unwrap();
        plt.mark_stalled(col);
        plt.load_completed(col);
        assert!(!plt.frozen(ArchReg::int(1).index()));
        assert_eq!(plt.stalled_mask(), 0);
        assert_eq!(plt.mask(ArchReg::int(1)), 0);
        assert!(
            plt.sample_load(ArchReg::int(5), 0).is_some(),
            "column reusable"
        );
    }

    #[test]
    fn nested_loads_union_masks() {
        let mut plt = ParentLoadsTable::new(4);
        let c1 = plt.sample_load(ArchReg::int(1), 0).unwrap();
        // Pointer chase: second load's address depends on the first load.
        let c2 = plt
            .sample_load(ArchReg::int(2), plt.mask(ArchReg::int(1)))
            .unwrap();
        assert_eq!(plt.mask(ArchReg::int(2)), c1 | c2);
    }

    #[test]
    fn mark_stalled_ignores_unallocated_columns() {
        let mut plt = ParentLoadsTable::new(4);
        plt.mark_stalled(0b1111);
        assert_eq!(plt.stalled_mask(), 0, "no allocated columns yet");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn zero_columns_panics() {
        let _ = ParentLoadsTable::new(0);
    }
}
