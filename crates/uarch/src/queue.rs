//! A bounded circular buffer addressed by monotonically increasing indices.
//!
//! The ROB, the shelf, and the load/store queues are all circular buffers
//! with head and tail pointers (paper §III: "We implement the shelf as a
//! circular buffer with head and tail pointers, much like the ROB"). Using a
//! monotonic `u64` index as the external handle makes age comparisons
//! trivial and models the paper's *virtual index space* (§III-B: the shelf
//! index space spans double the shelf size so entries can be recycled while
//! indices stay reserved) without wraparound corner cases — the hardware
//! wraparound is an implementation detail the simulator does not need to
//! reproduce bit-exactly.

use std::collections::VecDeque;

/// A bounded FIFO whose entries are addressed by the monotonically
/// increasing index assigned at push time.
///
/// Supports the three mutations every in-order window structure needs:
/// `push` at the tail, `pop_front` at the head, and `truncate_from` (squash
/// rollback at the tail).
///
/// # Example
///
/// ```
/// use shelfsim_uarch::OrderedQueue;
///
/// let mut q = OrderedQueue::new(2);
/// let a = q.push("a").unwrap();
/// let b = q.push("b").unwrap();
/// assert!(q.push("c").is_err()); // full
/// assert_eq!(q.get(a), Some(&"a"));
/// assert_eq!(q.pop_front(), Some((a, "a")));
/// assert_eq!(q.head_index(), Some(b));
/// ```
#[derive(Clone, Debug)]
pub struct OrderedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Index the next pushed entry will receive.
    next_index: u64,
}

/// Error returned by [`OrderedQueue::push`] when the queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue is at capacity")
    }
}

impl std::error::Error for QueueFull {}

impl<T> OrderedQueue<T> {
    /// Creates an empty queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        OrderedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            next_index: 0,
        }
    }

    /// Pushes `item` at the tail, returning its permanent index.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when `len() == capacity()`.
    pub fn push(&mut self, item: T) -> Result<u64, QueueFull> {
        if self.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        let idx = self.next_index;
        self.items.push_back(item);
        self.next_index += 1;
        Ok(idx)
    }

    /// Removes and returns the head entry with its index.
    pub fn pop_front(&mut self) -> Option<(u64, T)> {
        let head = self.head_index()?;
        self.items.pop_front().map(|t| (head, t))
    }

    /// Index of the head (oldest) entry, if any.
    pub fn head_index(&self) -> Option<u64> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.next_index - self.items.len() as u64)
        }
    }

    /// Index of the youngest entry, if any.
    pub fn tail_index(&self) -> Option<u64> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.next_index - 1)
        }
    }

    /// The index the *next* push will receive (the "tail pointer" recorded
    /// at dispatch by shelf instructions and by the shelf squash index).
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Reference to the head entry.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable reference to the head entry.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Reference to the entry at `index`, if it is still in the queue.
    pub fn get(&self, index: u64) -> Option<&T> {
        let head = self.head_index()?;
        if index < head || index >= self.next_index {
            return None;
        }
        self.items.get((index - head) as usize)
    }

    /// Mutable reference to the entry at `index`.
    pub fn get_mut(&mut self, index: u64) -> Option<&mut T> {
        let head = self.head_index()?;
        if index < head || index >= self.next_index {
            return None;
        }
        self.items.get_mut((index - head) as usize)
    }

    /// Removes every entry with `index >= from`, returning them
    /// youngest-first (squash rollback order). The next push reuses `from`.
    pub fn truncate_from(&mut self, from: u64) -> Vec<T> {
        let Some(head) = self.head_index() else {
            // Empty queue: just rewind the allocator if asked to.
            self.next_index = self.next_index.min(from.max(self.next_index_floor()));
            return Vec::new();
        };
        if from >= self.next_index {
            return Vec::new();
        }
        let keep = from.saturating_sub(head) as usize;
        let mut removed: Vec<T> = self.items.drain(keep..).collect();
        removed.reverse();
        self.next_index = head + keep as u64;
        removed
    }

    fn next_index_floor(&self) -> u64 {
        self.next_index - self.items.len() as u64
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-first over `(index, entry)` pairs.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (u64, &T)> {
        let head = self.next_index - self.items.len() as u64;
        self.items
            .iter()
            .enumerate()
            .map(move |(i, t)| (head + i as u64, t))
    }

    /// Iterates oldest-first over `(index, entry)` with mutable entries.
    pub fn iter_mut(&mut self) -> impl DoubleEndedIterator<Item = (u64, &mut T)> {
        let head = self.next_index - self.items.len() as u64;
        self.items
            .iter_mut()
            .enumerate()
            .map(move |(i, t)| (head + i as u64, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_monotonic_across_pops() {
        let mut q = OrderedQueue::new(2);
        let a = q.push(1).unwrap();
        q.pop_front();
        let b = q.push(2).unwrap();
        let c = q.push(3).unwrap();
        assert!(a < b && b < c);
        assert_eq!(q.head_index(), Some(b));
        assert_eq!(q.tail_index(), Some(c));
    }

    #[test]
    fn push_full_fails_without_losing_entries() {
        let mut q = OrderedQueue::new(1);
        q.push("x").unwrap();
        assert_eq!(q.push("y"), Err(QueueFull));
        assert_eq!(q.len(), 1);
        assert_eq!(q.front(), Some(&"x"));
    }

    #[test]
    fn get_by_index() {
        let mut q = OrderedQueue::new(4);
        let a = q.push(10).unwrap();
        let b = q.push(20).unwrap();
        assert_eq!(q.get(a), Some(&10));
        assert_eq!(q.get(b), Some(&20));
        q.pop_front();
        assert_eq!(q.get(a), None, "popped entries are gone");
        assert_eq!(q.get(b), Some(&20));
        assert_eq!(q.get(b + 1), None, "future indices are absent");
        *q.get_mut(b).unwrap() = 25;
        assert_eq!(q.get(b), Some(&25));
    }

    #[test]
    fn truncate_from_returns_youngest_first() {
        let mut q = OrderedQueue::new(8);
        for v in 0..5 {
            q.push(v).unwrap();
        }
        let removed = q.truncate_from(2);
        assert_eq!(removed, vec![4, 3, 2]);
        assert_eq!(q.len(), 2);
        // Indices are reused after a rollback, as in hardware tail rewind.
        assert_eq!(q.push(99).unwrap(), 2);
    }

    #[test]
    fn truncate_past_tail_is_noop() {
        let mut q = OrderedQueue::new(4);
        q.push(1).unwrap();
        assert!(q.truncate_from(5).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn truncate_everything() {
        let mut q = OrderedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let removed = q.truncate_from(0);
        assert_eq!(removed, vec![2, 1]);
        assert!(q.is_empty());
        assert_eq!(q.push(3).unwrap(), 0);
    }

    #[test]
    fn iter_is_oldest_first_with_indices() {
        let mut q = OrderedQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.pop_front();
        q.push('c').unwrap();
        let v: Vec<_> = q.iter().collect();
        assert_eq!(v, vec![(1, &'b'), (2, &'c')]);
    }

    #[test]
    fn next_index_tracks_tail_pointer() {
        let mut q: OrderedQueue<u8> = OrderedQueue::new(4);
        assert_eq!(q.next_index(), 0);
        q.push(0).unwrap();
        assert_eq!(q.next_index(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: OrderedQueue<u8> = OrderedQueue::new(0);
    }
}
