//! The per-thread issue-tracking bitvector (paper §III-A, Figure 4).
//!
//! IQ instructions are dynamically scheduled, so dispatch order is not issue
//! order. To let the shelf head establish that *all elder IQ instructions of
//! its run have issued*, the paper allocates a per-thread bitvector with one
//! bit per ROB entry: the bit is cleared at dispatch and set at issue, and a
//! head pointer (like the ROB's) tracks the oldest unissued IQ instruction.
//! A shelf instruction records the ROB tail at its dispatch; it becomes
//! order-eligible once the head pointer advances past that index.

/// Issue-order tracking over a thread's ROB entries.
///
/// Indices are the monotonic ROB indices of [`crate::OrderedQueue`]; the
/// hardware's wrap-around bitvector is modeled by a sliding window.
///
/// # Example
///
/// ```
/// use shelfsim_uarch::IssueTracker;
///
/// let mut t = IssueTracker::new();
/// t.dispatch(0);
/// t.dispatch(1);
/// // A shelf instruction dispatched now records barrier = 2 (the ROB tail).
/// assert!(!t.eligible(2));
/// t.issue(1); // younger IQ inst issues first: head stays at 0
/// assert!(!t.eligible(2));
/// t.issue(0);
/// assert!(t.eligible(2)); // head passed both
/// ```
#[derive(Clone, Debug, Default)]
pub struct IssueTracker {
    /// `window[i]` = has ROB index `head + i` issued?
    window: std::collections::VecDeque<bool>,
    /// Oldest unissued ROB index (the head pointer of Figure 4).
    head: u64,
    /// Next ROB index expected at dispatch.
    next: u64,
}

impl IssueTracker {
    /// Creates an empty tracker (head at index 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the dispatch of the IQ instruction at ROB index `idx`
    /// (clears its bit).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not the next consecutive ROB index — ROB
    /// allocation is in program order.
    pub fn dispatch(&mut self, idx: u64) {
        assert_eq!(idx, self.next, "ROB indices must be dispatched in order");
        self.window.push_back(false);
        self.next += 1;
    }

    /// Registers the issue of the IQ instruction at ROB index `idx` (sets
    /// its bit) and advances the head pointer over issued instructions.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has not been dispatched or has already been passed by
    /// the head pointer.
    pub fn issue(&mut self, idx: u64) {
        assert!(
            idx >= self.head && idx < self.next,
            "issue of untracked ROB index {idx}"
        );
        let off = (idx - self.head) as usize;
        debug_assert!(!self.window[off], "double issue of ROB index {idx}");
        self.window[off] = true;
        while self.window.front() == Some(&true) {
            self.window.pop_front();
            self.head += 1;
        }
    }

    /// The head pointer: the oldest unissued ROB index (equals the next
    /// dispatch index when everything has issued).
    #[inline]
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The shelf-head order check: have all IQ instructions older than
    /// `barrier` (a recorded ROB tail) issued?
    #[inline]
    pub fn eligible(&self, barrier: u64) -> bool {
        self.head >= barrier
    }

    /// Squash rollback: forget all dispatched-but-unissued state at indices
    /// `>= from`. In-flight issued state older than `from` is unaffected.
    pub fn squash_from(&mut self, from: u64) {
        if from >= self.next {
            return;
        }
        if from <= self.head {
            self.window.clear();
            self.head = from;
        } else {
            self.window.truncate((from - self.head) as usize);
        }
        self.next = from;
    }

    /// Number of dispatched, unretired-by-head indices still tracked.
    pub fn tracked(&self) -> usize {
        self.window.len()
    }

    /// The next ROB index the tracker expects (the ROB tail pointer a shelf
    /// instruction records at dispatch).
    #[inline]
    pub fn next_index(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_advances_only_over_contiguous_issues() {
        let mut t = IssueTracker::new();
        for i in 0..4 {
            t.dispatch(i);
        }
        t.issue(2);
        t.issue(3);
        assert_eq!(t.head(), 0);
        t.issue(0);
        assert_eq!(t.head(), 1);
        t.issue(1);
        assert_eq!(t.head(), 4);
    }

    #[test]
    fn eligibility_matches_run_semantics() {
        let mut t = IssueTracker::new();
        t.dispatch(0); // IQ inst A
        let barrier = t.next_index(); // shelf inst dispatched here records 1
        assert!(!t.eligible(barrier));
        t.issue(0);
        assert!(t.eligible(barrier));
        // A shelf instruction with no preceding IQ instruction (barrier 0
        // at reset) is immediately eligible.
        assert!(t.eligible(0));
    }

    #[test]
    fn out_of_order_issue_keeps_barrier() {
        let mut t = IssueTracker::new();
        t.dispatch(0);
        t.dispatch(1);
        t.dispatch(2);
        let barrier = t.next_index(); // 3
        t.issue(1);
        t.issue(2);
        assert!(!t.eligible(barrier), "inst 0 unissued: shelf must wait");
        t.issue(0);
        assert!(t.eligible(barrier));
    }

    #[test]
    fn squash_rewinds_tail() {
        let mut t = IssueTracker::new();
        for i in 0..5 {
            t.dispatch(i);
        }
        t.issue(0);
        t.squash_from(2);
        assert_eq!(t.next_index(), 2);
        assert_eq!(t.head(), 1);
        t.dispatch(2);
        t.issue(1);
        t.issue(2);
        assert_eq!(t.head(), 3);
    }

    #[test]
    fn squash_below_head_resets() {
        let mut t = IssueTracker::new();
        t.dispatch(0);
        t.issue(0);
        t.squash_from(0);
        assert_eq!(t.head(), 0);
        assert_eq!(t.next_index(), 0);
        t.dispatch(0);
        assert_eq!(t.head(), 0);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn non_consecutive_dispatch_panics() {
        let mut t = IssueTracker::new();
        t.dispatch(1);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn issue_of_future_index_panics() {
        let mut t = IssueTracker::new();
        t.issue(0);
    }
}
