//! Branch prediction: gshare direction predictor, branch target buffer, and
//! a return-address stack.
//!
//! The paper does not detail its predictor (gem5's default O3 setup); we
//! provide a conventional gshare/BTB/RAS combination with per-thread
//! history, which yields realistic mispredict rates for the synthetic
//! workloads (a few percent for loopy code, more for data-dependent
//! branches).

/// Direction-predictor organization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// PC-indexed 2-bit counters only (no history).
    Bimodal,
    /// Global-history-XOR-PC indexed 2-bit counters.
    #[default]
    Gshare,
    /// Bimodal + gshare with a per-PC chooser (gem5's default O3 style).
    Tournament,
    /// Tagged geometric-history predictor (see [`crate::tage`]).
    Tage,
}

/// Configuration of the branch predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Direction-predictor organization.
    pub kind: PredictorKind,
    /// log2 of the pattern history table size.
    pub pht_bits: u32,
    /// Global history length in bits.
    pub history_bits: u32,
    /// log2 of the BTB entry count.
    pub btb_bits: u32,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig {
            kind: PredictorKind::Gshare,
            pht_bits: 12,
            history_bits: 12,
            btb_bits: 13,
            ras_depth: 16,
        }
    }
}

/// The outcome of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the BTB (or RAS) knows one.
    pub target: Option<u64>,
    /// PHT index the direction came from; [`BranchPredictor::update`] trains
    /// this exact entry so predict/train pairs stay consistent even though
    /// the global history advances between fetch and resolve.
    pub pht_index: usize,
    /// Bimodal/chooser index (tournament mode); equals `pht_index` otherwise.
    pub bimodal_index: usize,
    /// What the gshare side said (tournament chooser training).
    pub gshare_taken: bool,
    /// What the bimodal side said (tournament chooser training).
    pub bimodal_taken: bool,
    /// TAGE bookkeeping (TAGE mode only).
    pub tage: crate::tage::TageInfo,
}

#[derive(Clone, Copy, Debug)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
}

/// A per-thread direction predictor (bimodal / gshare / tournament) with a
/// BTB and a return-address stack.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    /// 2-bit saturating counters (history-indexed side).
    pht: Vec<u8>,
    /// 2-bit saturating counters (PC-indexed side; tournament/bimodal).
    bimodal: Vec<u8>,
    /// 2-bit chooser: >=2 selects gshare (tournament only).
    chooser: Vec<u8>,
    btb: Vec<BtbEntry>,
    ras: Vec<u64>,
    history: u64,
    tage: crate::tage::Tage,
    /// Total direction lookups (conditional branches predicted).
    pub lookups: u64,
    /// Direction mispredictions observed at update time.
    pub direction_mispredicts: u64,
    /// Target mispredictions (taken branch, wrong/unknown target).
    pub target_mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters.
    pub fn new(config: BranchPredictorConfig) -> Self {
        BranchPredictor {
            pht: vec![1; 1 << config.pht_bits],
            bimodal: vec![1; 1 << config.pht_bits],
            chooser: vec![2; 1 << config.pht_bits],
            btb: vec![
                BtbEntry {
                    tag: 0,
                    target: 0,
                    valid: false
                };
                1 << config.btb_bits
            ],
            ras: Vec::with_capacity(config.ras_depth),
            history: 0,
            tage: crate::tage::Tage::new(),
            lookups: 0,
            direction_mispredicts: 0,
            target_mispredicts: 0,
            config,
        }
    }

    #[inline]
    fn pht_index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.config.pht_bits) - 1;
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        (((pc >> 2) ^ (self.history & hist_mask)) & mask) as usize
    }

    #[inline]
    fn btb_index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.config.btb_bits) - 1;
        ((pc >> 2) & mask) as usize
    }

    /// Predicts the branch at `pc`. `is_return` consults the RAS for the
    /// target.
    pub fn predict(&mut self, pc: u64, is_return: bool) -> Prediction {
        self.lookups += 1;
        let pht_index = self.pht_index(pc);
        let mask = (1u64 << self.config.pht_bits) - 1;
        let bimodal_index = ((pc >> 2) & mask) as usize;
        let gshare_taken = self.pht[pht_index] >= 2;
        let bimodal_taken = self.bimodal[bimodal_index] >= 2;
        let mut tage_info = crate::tage::TageInfo::default();
        let taken = match self.config.kind {
            PredictorKind::Bimodal => bimodal_taken,
            PredictorKind::Gshare => gshare_taken,
            PredictorKind::Tournament => {
                if self.chooser[bimodal_index] >= 2 {
                    gshare_taken
                } else {
                    bimodal_taken
                }
            }
            PredictorKind::Tage => {
                let (t, info) = self.tage.predict(pc);
                tage_info = info;
                t
            }
        };
        let target = if is_return {
            self.ras.last().copied()
        } else {
            let e = &self.btb[self.btb_index(pc)];
            (e.valid && e.tag == pc).then_some(e.target)
        };
        Prediction {
            taken,
            target,
            pht_index,
            bimodal_index,
            gshare_taken,
            bimodal_taken,
            tage: tage_info,
        }
    }

    /// Trains the predictor with the resolved outcome and returns whether
    /// the earlier prediction would have been wrong (direction or, for taken
    /// branches, target).
    ///
    /// `predicted` must be the value returned by [`BranchPredictor::predict`]
    /// for this instance of the branch.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        pc: u64,
        predicted: Prediction,
        taken: bool,
        target: u64,
        is_call: bool,
        is_return: bool,
        fallthrough: u64,
    ) -> bool {
        // Direction training (2-bit saturating counters) — train the entries
        // the prediction actually came from.
        fn train(c: &mut u8, taken: bool) {
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        train(&mut self.pht[predicted.pht_index], taken);
        train(&mut self.bimodal[predicted.bimodal_index], taken);
        // Chooser: move toward whichever side was right (when they differ).
        if predicted.gshare_taken != predicted.bimodal_taken {
            train(
                &mut self.chooser[predicted.bimodal_index],
                predicted.gshare_taken == taken,
            );
        }
        if self.config.kind == PredictorKind::Tage {
            self.tage.update(pc, predicted.tage, taken);
        }
        // Speculative history update would be cleaner; updating at resolve
        // keeps the model simple and is a common simulator simplification.
        self.history = (self.history << 1) | taken as u64;

        // Target training.
        if taken && !is_return {
            let bi = self.btb_index(pc);
            self.btb[bi] = BtbEntry {
                tag: pc,
                target,
                valid: true,
            };
        }
        if is_call {
            if self.ras.len() == self.config.ras_depth {
                self.ras.remove(0);
            }
            self.ras.push(fallthrough);
        }
        if is_return {
            self.ras.pop();
        }

        let dir_wrong = predicted.taken != taken;
        let tgt_wrong = taken && predicted.target != Some(target);
        if dir_wrong {
            self.direction_mispredicts += 1;
        } else if tgt_wrong {
            self.target_mispredicts += 1;
        }
        dir_wrong || tgt_wrong
    }

    /// Overall mispredict ratio observed so far (0.0 with no lookups).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.direction_mispredicts + self.target_mispredicts) as f64 / self.lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::default())
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = bp();
        let pc = 0x400;
        let mut wrong = 0;
        for _ in 0..100 {
            let pred = p.predict(pc, false);
            if p.update(pc, pred, true, 0x800, false, false, pc + 4) {
                wrong += 1;
            }
        }
        // gshare must fill its global history (12 bits) before the PHT index
        // stabilizes, so allow roughly history-length cold mispredicts.
        assert!(
            wrong <= 16,
            "should converge after history warm-up, got {wrong} mispredicts"
        );
        // Once warm, the branch is predicted perfectly.
        let pred = p.predict(pc, false);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(0x800));
    }

    #[test]
    fn learns_loop_exit_pattern_poorly_but_body_well() {
        let mut p = bp();
        let pc = 0x100;
        let mut wrong = 0;
        // 20 iterations of a 10-body loop: taken 9x, not-taken once.
        for _ in 0..20 {
            for i in 0..10 {
                let taken = i != 9;
                let pred = p.predict(pc, false);
                if p.update(pc, pred, taken, 0x100, false, false, pc + 4) {
                    wrong += 1;
                }
            }
        }
        // Roughly one mispredict per exit after warmup.
        assert!(wrong < 50, "got {wrong}");
        assert!(wrong > 5, "loop exits are data-dependent, got {wrong}");
    }

    #[test]
    fn btb_provides_target_after_training() {
        let mut p = bp();
        let pred0 = p.predict(0x40, false);
        assert_eq!(pred0.target, None);
        p.update(0x40, pred0, true, 0x1000, false, false, 0x44);
        let pred1 = p.predict(0x40, false);
        assert_eq!(pred1.target, Some(0x1000));
    }

    #[test]
    fn ras_predicts_return_targets() {
        let mut p = bp();
        // Call at 0x10 returning to 0x14.
        let pc_call = 0x10;
        let pred = p.predict(pc_call, false);
        p.update(pc_call, pred, true, 0x2000, true, false, 0x14);
        let pred_ret = p.predict(0x2008, true);
        assert_eq!(pred_ret.target, Some(0x14));
        p.update(0x2008, pred_ret, true, 0x14, false, true, 0x200c);
        // Stack is now empty.
        assert_eq!(p.predict(0x3000, true).target, None);
    }

    #[test]
    fn mispredict_ratio_counts() {
        let mut p = bp();
        let pred = p.predict(0x40, false);
        p.update(0x40, pred, true, 0x1000, false, false, 0x44);
        assert!(p.mispredict_ratio() > 0.0); // cold target miss or direction
        assert_eq!(p.lookups, 1);
    }
}
