//! The ICOUNT SMT fetch policy (Tullsen et al., ISCA 1996; paper Table I).
//!
//! Each cycle, fetch is given to the eligible thread with the fewest
//! instructions in the pre-issue stages of the pipeline, which steers fetch
//! bandwidth toward fast-moving threads and prevents a stalled thread from
//! monopolizing the window. The paper highlights that ICOUNT is synergistic
//! with shelf steering: slow-moving threads get steered to the shelf,
//! avoiding IQ congestion (§IV-B).

/// ICOUNT thread selection with round-robin tie breaking.
#[derive(Clone, Debug, Default)]
pub struct Icount {
    last_selected: usize,
}

impl Icount {
    /// Creates the policy state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks the eligible thread with the lowest in-flight count.
    ///
    /// `counts[t]` is thread `t`'s instruction count in the front end and
    /// pre-issue window; `eligible[t]` is false for threads that cannot
    /// fetch this cycle (I-cache miss pending, redirect in progress, buffer
    /// full, or stream exhausted). Ties go round-robin starting after the
    /// previously selected thread, so equal-count threads share bandwidth.
    ///
    /// Returns `None` when no thread is eligible.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn select(&mut self, counts: &[usize], eligible: &[bool]) -> Option<usize> {
        assert_eq!(
            counts.len(),
            eligible.len(),
            "counts and eligibility must align"
        );
        let n = counts.len();
        let mut best: Option<usize> = None;
        for off in 1..=n {
            let t = (self.last_selected + off) % n;
            if !eligible[t] {
                continue;
            }
            match best {
                Some(b) if counts[t] >= counts[b] => {}
                _ => best = Some(t),
            }
        }
        if let Some(b) = best {
            self.last_selected = b;
        }
        best
    }

    /// The thread the policy last granted fetch to (round-robin anchor).
    /// The engine's cycle-skip snapshot includes it: two idle cycles that
    /// would rotate the anchor differently are not a fixed point.
    pub fn last_selected(&self) -> usize {
        self.last_selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_lowest_count() {
        let mut ic = Icount::new();
        let sel = ic.select(&[10, 3, 7, 5], &[true; 4]);
        assert_eq!(sel, Some(1));
    }

    #[test]
    fn skips_ineligible_threads() {
        let mut ic = Icount::new();
        let sel = ic.select(&[10, 3, 7, 5], &[true, false, true, true]);
        assert_eq!(sel, Some(3));
    }

    #[test]
    fn round_robin_on_ties() {
        let mut ic = Icount::new();
        let counts = [2, 2, 2];
        let a = ic.select(&counts, &[true; 3]).unwrap();
        let b = ic.select(&counts, &[true; 3]).unwrap();
        let c = ic.select(&counts, &[true; 3]).unwrap();
        let mut seen = [a, b, c];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1, 2], "all threads share bandwidth under ties");
    }

    #[test]
    fn none_when_no_thread_eligible() {
        let mut ic = Icount::new();
        assert_eq!(ic.select(&[1, 2], &[false, false]), None);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let mut ic = Icount::new();
        let _ = ic.select(&[1], &[true, true]);
    }
}
