//! The store-sets memory dependence predictor (Chrysos & Emer, ISCA 1998).
//!
//! Paper §III-D: "We use a 'store sets' memory dependence predictor to
//! prevent frequent squashes. Shelf stores use their store set identifier to
//! release dependent younger loads, just as IQ stores do."
//!
//! Two tables: the Store Set ID Table (SSIT), indexed by instruction PC,
//! assigns loads and stores to sets; the Last Fetched Store Table (LFST)
//! remembers the youngest in-flight store of each set. A load whose PC maps
//! to a set with an in-flight store must wait for that store to execute.

/// Opaque identifier for an in-flight store (the simulator uses its global
/// age).
pub type StoreToken = u64;

const INVALID_SET: u32 = u32::MAX;

/// A store-sets predictor instance (one per thread).
#[derive(Clone, Debug)]
pub struct StoreSets {
    /// PC-indexed store-set IDs.
    ssit: Vec<u32>,
    /// Per-set youngest in-flight store.
    lfst: Vec<Option<StoreToken>>,
    next_set: u32,
    /// Violations recorded (set-forming events).
    pub violations_trained: u64,
}

impl StoreSets {
    /// Creates a predictor with `ssit_entries` SSIT slots and `sets`
    /// possible store sets.
    ///
    /// # Panics
    ///
    /// Panics if `ssit_entries` is not a power of two or `sets` is zero.
    pub fn new(ssit_entries: usize, sets: usize) -> Self {
        assert!(
            ssit_entries.is_power_of_two(),
            "SSIT size must be a power of two"
        );
        assert!(sets > 0, "need at least one store set");
        StoreSets {
            ssit: vec![INVALID_SET; ssit_entries],
            lfst: vec![None; sets],
            next_set: 0,
            violations_trained: 0,
        }
    }

    #[inline]
    fn ssit_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.ssit.len() - 1)
    }

    /// A store was dispatched: record it as the last fetched store of its
    /// set (if it belongs to one). Returns its set, if any.
    pub fn store_dispatched(&mut self, pc: u64, token: StoreToken) -> Option<u32> {
        let set = self.ssit[self.ssit_index(pc)];
        if set == INVALID_SET {
            return None;
        }
        self.lfst[set as usize] = Some(token);
        Some(set)
    }

    /// A store executed (or was squashed): release dependents waiting on it.
    pub fn store_resolved(&mut self, pc: u64, token: StoreToken) {
        let set = self.ssit[self.ssit_index(pc)];
        if set != INVALID_SET {
            let slot = &mut self.lfst[set as usize];
            if *slot == Some(token) {
                *slot = None;
            }
        }
    }

    /// Which in-flight store (if any) must the load at `pc` wait for?
    pub fn load_dependence(&self, pc: u64) -> Option<StoreToken> {
        let set = self.ssit[self.ssit_index(pc)];
        if set == INVALID_SET {
            return None;
        }
        self.lfst[set as usize]
    }

    /// The store set `pc` belongs to, if any (used to match a load against
    /// all in-flight stores of its set when the LFST entry is younger than
    /// the load — the hardware's store-chaining achieves the same ordering).
    pub fn set_of(&self, pc: u64) -> Option<u32> {
        let set = self.ssit[self.ssit_index(pc)];
        (set != INVALID_SET).then_some(set)
    }

    /// A memory-order violation occurred between the store at `store_pc`
    /// and the load at `load_pc`: place both in the same set so the load
    /// waits next time.
    pub fn train_violation(&mut self, store_pc: u64, load_pc: u64) {
        self.violations_trained += 1;
        let si = self.ssit_index(store_pc);
        let li = self.ssit_index(load_pc);
        let (s_set, l_set) = (self.ssit[si], self.ssit[li]);
        let merged = match (s_set, l_set) {
            (INVALID_SET, INVALID_SET) => {
                let set = self.next_set;
                self.next_set = (self.next_set + 1) % self.lfst.len() as u32;
                // A recycled set may have a stale in-flight store; clear it.
                self.lfst[set as usize] = None;
                set
            }
            (s, INVALID_SET) => s,
            (INVALID_SET, l) => l,
            // Both assigned: merge into the smaller set id (the classic
            // "declare winner" rule).
            (s, l) => s.min(l),
        };
        self.ssit[si] = merged;
        self.ssit[li] = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_load_is_free() {
        let ss = StoreSets::new(1024, 64);
        assert_eq!(ss.load_dependence(0x40), None);
    }

    #[test]
    fn violation_creates_dependence() {
        let mut ss = StoreSets::new(1024, 64);
        ss.train_violation(0x100, 0x200);
        // Next occurrence: the store dispatches, the load must wait for it.
        ss.store_dispatched(0x100, 7);
        assert_eq!(ss.load_dependence(0x200), Some(7));
        // Once the store resolves the load runs free.
        ss.store_resolved(0x100, 7);
        assert_eq!(ss.load_dependence(0x200), None);
    }

    #[test]
    fn resolved_ignores_stale_token() {
        let mut ss = StoreSets::new(1024, 64);
        ss.train_violation(0x100, 0x200);
        ss.store_dispatched(0x100, 7);
        ss.store_dispatched(0x100, 9); // younger instance
        ss.store_resolved(0x100, 7); // elder resolves: must not clear
        assert_eq!(ss.load_dependence(0x200), Some(9));
    }

    #[test]
    fn merging_sets() {
        let mut ss = StoreSets::new(1024, 64);
        ss.train_violation(0x100, 0x200);
        ss.train_violation(0x300, 0x400);
        // A violation links 0x100 and 0x400: both move to the smaller set.
        // (Classic store-sets merging only migrates the two PCs involved;
        // other members of the losing set migrate on their own next
        // violation.)
        ss.train_violation(0x100, 0x400);
        ss.store_dispatched(0x100, 42);
        assert_eq!(ss.load_dependence(0x400), Some(42));
        assert_eq!(
            ss.load_dependence(0x200),
            Some(42),
            "0x200 was already in the winning set"
        );
        // 0x300 remains in its original set, untouched by the merge.
        ss.store_dispatched(0x300, 50);
        assert_eq!(ss.load_dependence(0x400), Some(42));
    }

    #[test]
    fn counts_training_events() {
        let mut ss = StoreSets::new(64, 4);
        ss.train_violation(0, 4);
        ss.train_violation(8, 12);
        assert_eq!(ss.violations_trained, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_ssit_size_panics() {
        let _ = StoreSets::new(1000, 4);
    }
}
