//! Free lists for physical registers and extension tags.
//!
//! Paper §III-C manages the decoupled tag space with "two free lists, one
//! physical free list for the original tag space and one extension free list
//! for the extension". Both are instances of [`FreeList`].

/// A FIFO free list over a contiguous identifier range.
///
/// Identifiers are handed out oldest-freed-first, which mirrors hardware
/// free-list circular buffers and maximizes the time before an identifier is
/// reused (useful when debugging rename).
///
/// # Example
///
/// ```
/// use shelfsim_uarch::FreeList;
///
/// let mut fl = FreeList::new(10, 2); // ids 10 and 11
/// let a = fl.allocate().unwrap();
/// fl.free(a);
/// assert_eq!(fl.available(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct FreeList {
    ids: std::collections::VecDeque<u32>,
    base: u32,
    count: u32,
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    outstanding: std::collections::HashSet<u32>,
}

impl FreeList {
    /// Creates a free list over the identifier range `base..base + count`,
    /// all initially free.
    pub fn new(base: u32, count: u32) -> Self {
        FreeList {
            ids: (base..base + count).collect(),
            base,
            count,
            #[cfg(any(debug_assertions, feature = "sanitize"))]
            outstanding: std::collections::HashSet::new(),
        }
    }

    /// Allocates the oldest free identifier, or `None` if exhausted.
    pub fn allocate(&mut self) -> Option<u32> {
        let id = self.ids.pop_front()?;
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        self.outstanding.insert(id);
        Some(id)
    }

    /// Returns `id` to the list.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside this list's range, or (in debug builds and
    /// under the `sanitize` feature) if `id` was not currently allocated — a
    /// double free, which in the real design would corrupt the rename state.
    pub fn free(&mut self, id: u32) {
        assert!(
            id >= self.base && id < self.base + self.count,
            "sanitizer: identifier {id} outside free-list range {}..{} \
             (free of a foreign or fabricated token)",
            self.base,
            self.base + self.count
        );
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        assert!(
            self.outstanding.remove(&id),
            "sanitizer: double free of identifier {id} \
             ({} of {} ids outstanding, range {}..{})",
            self.in_use(),
            self.count,
            self.base,
            self.base + self.count
        );
        self.ids.push_back(id);
    }

    /// Number of identifiers currently free.
    pub fn available(&self) -> usize {
        self.ids.len()
    }

    /// Number of identifiers currently allocated (the conserved-token count
    /// the sanitizer audits against the pipeline's own accounting).
    pub fn in_use(&self) -> usize {
        self.count as usize - self.ids.len()
    }

    /// Returns `true` when nothing can be allocated.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total identifiers managed (free + allocated).
    pub fn capacity(&self) -> usize {
        self.count as usize
    }

    /// Returns `true` if `id` falls in this list's identifier range.
    pub fn contains_range(&self, id: u32) -> bool {
        id >= self.base && id < self.base + self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_whole_range_then_exhausts() {
        let mut fl = FreeList::new(5, 3);
        let mut got = vec![];
        while let Some(id) = fl.allocate() {
            got.push(id);
        }
        got.sort_unstable();
        assert_eq!(got, vec![5, 6, 7]);
        assert!(fl.is_empty());
    }

    #[test]
    fn free_makes_id_reusable() {
        let mut fl = FreeList::new(0, 1);
        let a = fl.allocate().unwrap();
        assert!(fl.allocate().is_none());
        fl.free(a);
        assert_eq!(fl.allocate(), Some(a));
    }

    #[test]
    fn fifo_reuse_order() {
        let mut fl = FreeList::new(0, 3);
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        let c = fl.allocate().unwrap();
        fl.free(b);
        fl.free(c);
        fl.free(a);
        assert_eq!(fl.allocate(), Some(b));
        assert_eq!(fl.allocate(), Some(c));
        assert_eq!(fl.allocate(), Some(a));
    }

    #[test]
    #[should_panic(expected = "outside free-list range")]
    fn free_out_of_range_panics() {
        FreeList::new(10, 2).free(9);
    }

    #[cfg(any(debug_assertions, feature = "sanitize"))]
    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut fl = FreeList::new(0, 2);
        let a = fl.allocate().unwrap();
        fl.free(a);
        fl.free(a);
    }

    /// The injected-fault check for the `sanitize` feature specifically:
    /// `cargo test --release --features sanitize` must catch the double
    /// free even though `debug_assertions` is off.
    #[cfg(feature = "sanitize")]
    #[test]
    #[should_panic(expected = "double free")]
    fn sanitize_feature_catches_injected_double_free() {
        let mut fl = FreeList::new(32, 4);
        let a = fl.allocate().unwrap();
        let _b = fl.allocate().unwrap();
        fl.free(a);
        fl.free(a);
    }

    #[test]
    fn in_use_tracks_allocation_balance() {
        let mut fl = FreeList::new(0, 3);
        assert_eq!(fl.in_use(), 0);
        let a = fl.allocate().unwrap();
        let _b = fl.allocate().unwrap();
        assert_eq!(fl.in_use(), 2);
        fl.free(a);
        assert_eq!(fl.in_use(), 1);
    }

    #[test]
    fn range_membership() {
        let fl = FreeList::new(64, 16);
        assert!(fl.contains_range(64));
        assert!(fl.contains_range(79));
        assert!(!fl.contains_range(80));
        assert!(!fl.contains_range(63));
        assert_eq!(fl.capacity(), 16);
    }
}
