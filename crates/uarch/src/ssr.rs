//! Speculation shift registers (paper §III-B, Figure 5).
//!
//! Shelf instructions have no ROB entry and overwrite live physical
//! registers, so they may write back only once they can no longer be
//! squashed. Smith & Pleszkun's result shift register tracks the maximum
//! remaining *speculation resolution* delay of in-flight instructions; a
//! shelf instruction may issue only when its execution latency is at least
//! the register's value (so its writeback lands after every elder
//! misspeculation opportunity has resolved).
//!
//! A single register suffers the paper's *starvation pathology*: younger IQ
//! instructions keep merging their resolution delays and can delay the shelf
//! head indefinitely. The production design therefore provisions **two**
//! registers: all IQ instructions update the *IQ SSR*; when the first shelf
//! instruction of a run becomes order-eligible, the IQ SSR is copied into
//! the *shelf SSR*, which then decays untouched by further IQ issues.

/// The per-thread pair of speculation shift registers.
///
/// `tick()` models the shift-right-by-one each cycle. The ablation mode
/// (`single`) collapses the pair into one register to reproduce the
/// starvation-prone variant discussed in the paper.
///
/// # Example
///
/// ```
/// use shelfsim_uarch::SsrPair;
///
/// let mut ssr = SsrPair::new(false);
/// ssr.record_iq_issue(5);
/// ssr.copy_to_shelf();
/// assert!(!ssr.shelf_allows(3)); // 3-cycle op would write back too early
/// assert!(ssr.shelf_allows(5));
/// ssr.record_iq_issue(30); // younger IQ issue no longer delays the shelf
/// assert!(ssr.shelf_allows(5));
/// ```
#[derive(Clone, Debug)]
pub struct SsrPair {
    iq: u32,
    shelf: u32,
    single: bool,
}

impl SsrPair {
    /// Creates a zeroed pair. With `single == true`, both roles share one
    /// register (the ablation variant).
    pub fn new(single: bool) -> Self {
        SsrPair {
            iq: 0,
            shelf: 0,
            single,
        }
    }

    /// One-cycle decay: both registers shift right (saturating decrement).
    pub fn tick(&mut self) {
        self.iq = self.iq.saturating_sub(1);
        self.shelf = self.shelf.saturating_sub(1);
    }

    /// `k` cycles of decay at once — exactly equivalent to `k` calls to
    /// [`SsrPair::tick`] with no intervening issues. Used by the engine's
    /// cycle-skip fast-forward.
    pub fn tick_many(&mut self, k: u64) {
        let k = u32::try_from(k).unwrap_or(u32::MAX);
        self.iq = self.iq.saturating_sub(k);
        self.shelf = self.shelf.saturating_sub(k);
    }

    /// An IQ instruction issued with the given speculation resolution delay;
    /// merge it into the IQ SSR.
    pub fn record_iq_issue(&mut self, resolution_delay: u32) {
        self.iq = self.iq.max(resolution_delay);
        if self.single {
            self.shelf = self.iq;
        }
    }

    /// The first shelf instruction of a run became order-eligible: snapshot
    /// the IQ SSR into the shelf SSR. At this moment all elder IQ
    /// instructions have issued and contributed their delays.
    pub fn copy_to_shelf(&mut self) {
        if !self.single {
            self.shelf = self.iq;
        }
    }

    /// May a shelf instruction with `latency_to_writeback` issue now?
    ///
    /// Paper: "A shelf instruction can only issue once its minimum execution
    /// delay compares greater than or equal to the value in the SSR."
    pub fn shelf_allows(&self, latency_to_writeback: u32) -> bool {
        latency_to_writeback >= self.shelf
    }

    /// Whether both registers have fully decayed to zero. A quiescent pair
    /// is a fixed point of [`SsrPair::tick`]: further decay changes nothing,
    /// and `shelf_allows` is `true` for every latency. The partial-progress
    /// skip engine may only park a thread once its pair is quiescent —
    /// otherwise per-cycle decay would change the shelf head's issue
    /// eligibility mid-park.
    pub fn is_quiescent(&self) -> bool {
        self.iq == 0 && self.shelf == 0
    }

    /// Current IQ SSR value (cycles of outstanding speculation).
    pub fn iq_value(&self) -> u32 {
        self.iq
    }

    /// Current shelf SSR value.
    pub fn shelf_value(&self) -> u32 {
        self.shelf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_reaches_zero() {
        let mut s = SsrPair::new(false);
        s.record_iq_issue(3);
        s.copy_to_shelf();
        assert!(!s.shelf_allows(0));
        s.tick();
        s.tick();
        s.tick();
        assert!(s.shelf_allows(0));
    }

    #[test]
    fn iq_issue_merges_max() {
        let mut s = SsrPair::new(false);
        s.record_iq_issue(2);
        s.record_iq_issue(7);
        s.record_iq_issue(3);
        assert_eq!(s.iq_value(), 7);
    }

    #[test]
    fn two_ssrs_prevent_starvation() {
        let mut s = SsrPair::new(false);
        s.record_iq_issue(4);
        s.copy_to_shelf();
        // Younger reordered instructions keep issuing with big delays...
        for _ in 0..10 {
            s.record_iq_issue(10);
            s.tick();
        }
        // ...but the shelf SSR decayed to zero: the head is not starved.
        assert!(s.shelf_allows(1));
        assert_eq!(s.shelf_value(), 0);
        assert!(s.iq_value() > 0);
    }

    #[test]
    fn single_ssr_exhibits_starvation() {
        let mut s = SsrPair::new(true);
        s.record_iq_issue(4);
        for _ in 0..10 {
            s.record_iq_issue(10);
            s.tick();
        }
        // The shared register is continuously re-armed: a short op stalls.
        assert!(!s.shelf_allows(1));
    }

    #[test]
    fn tick_many_matches_repeated_ticks() {
        let mut a = SsrPair::new(false);
        let mut b = SsrPair::new(false);
        a.record_iq_issue(200);
        b.record_iq_issue(200);
        a.copy_to_shelf();
        b.copy_to_shelf();
        for _ in 0..37 {
            a.tick();
        }
        b.tick_many(37);
        assert_eq!(a.iq_value(), b.iq_value());
        assert_eq!(a.shelf_value(), b.shelf_value());
        // Past-saturation jumps stay at zero, like repeated ticks would.
        b.tick_many(u64::MAX);
        assert_eq!(b.iq_value(), 0);
        assert_eq!(b.shelf_value(), 0);
    }

    #[test]
    fn quiescence_is_a_tick_fixed_point() {
        let mut s = SsrPair::new(false);
        assert!(s.is_quiescent());
        s.record_iq_issue(2);
        assert!(!s.is_quiescent());
        s.copy_to_shelf();
        s.tick();
        assert!(!s.is_quiescent());
        s.tick();
        assert!(s.is_quiescent());
        s.tick();
        assert!(s.is_quiescent(), "quiescence is absorbing under decay");
        assert!(s.shelf_allows(0));
    }

    #[test]
    fn copy_is_a_snapshot_not_an_alias() {
        let mut s = SsrPair::new(false);
        s.record_iq_issue(5);
        s.copy_to_shelf();
        s.record_iq_issue(9);
        assert_eq!(s.shelf_value(), 5);
        assert_eq!(s.iq_value(), 9);
    }
}
