//! A compact TAGE direction predictor (Seznec & Michaud, JILP 2006).
//!
//! TAGE predicts with the longest-history tagged table that matches the
//! branch, falling back to a bimodal base table. It captures correlated
//! patterns far beyond what gshare's single history length can, and is the
//! organization behind most shipping high-end predictors. Offered as a
//! [`crate::PredictorKind::Tage`] option; the evaluated configuration uses
//! the gem5-like tournament by default.

/// Number of tagged tables.
const NUM_TABLES: usize = 4;
/// Geometric history lengths per tagged table.
const HIST_LENGTHS: [u32; NUM_TABLES] = [8, 16, 32, 64];
/// log2 entries per tagged table.
const TABLE_BITS: u32 = 10;
/// Tag width in bits.
const TAG_BITS: u32 = 9;

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit counter: >= 0 predicts taken.
    ctr: i8,
    /// 2-bit usefulness.
    useful: u8,
}

/// The prediction bookkeeping TAGE needs back at update time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TageInfo {
    /// Global-history snapshot at prediction time.
    pub history: u64,
    /// Providing table (`NUM_TABLES` = bimodal base).
    provider: u8,
    /// The provider's direction.
    provider_taken: bool,
    /// The alternate (next-longest matching) direction.
    alt_taken: bool,
}

/// A TAGE predictor instance.
#[derive(Clone, Debug)]
pub struct Tage {
    /// Bimodal base (2-bit counters).
    base: Vec<u8>,
    tables: [Vec<TageEntry>; NUM_TABLES],
    history: u64,
    /// Allocation tie-breaker (monotonic).
    clock: u64,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

fn fold(pc: u64, history: u64, hist_len: u32, bits: u32) -> u64 {
    // Fold the (masked) history and PC into `bits` bits.
    let mask = if hist_len >= 64 {
        u64::MAX
    } else {
        (1u64 << hist_len) - 1
    };
    let mut h = history & mask;
    let mut folded = pc >> 2;
    while h != 0 {
        folded ^= h;
        h >>= bits;
    }
    folded & ((1u64 << bits) - 1)
}

impl Tage {
    /// Creates a zeroed predictor.
    pub fn new() -> Self {
        Tage {
            base: vec![1; 1 << 12],
            tables: std::array::from_fn(|_| vec![TageEntry::default(); 1 << TABLE_BITS]),
            history: 0,
            clock: 0,
        }
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << 12) - 1)) as usize
    }

    fn index(pc: u64, history: u64, table: usize) -> usize {
        fold(pc, history, HIST_LENGTHS[table], TABLE_BITS) as usize
    }

    fn tag(pc: u64, history: u64, table: usize) -> u16 {
        // A different fold (rotated pc) so tags decorrelate from indices.
        fold(
            pc.rotate_left(7),
            history ^ 0x9E37,
            HIST_LENGTHS[table],
            TAG_BITS,
        ) as u16
    }

    /// Predicts the branch at `pc`, returning the direction and the
    /// bookkeeping to pass back to [`Tage::update`].
    pub fn predict(&self, pc: u64) -> (bool, TageInfo) {
        let history = self.history;
        let base_taken = self.base[self.base_index(pc)] >= 2;
        let mut provider = NUM_TABLES as u8;
        let mut provider_taken = base_taken;
        let mut alt_taken = base_taken;
        for t in 0..NUM_TABLES {
            let e = &self.tables[t][Self::index(pc, history, t)];
            if e.tag == Self::tag(pc, history, t) {
                alt_taken = provider_taken;
                provider = t as u8;
                provider_taken = e.ctr >= 0;
            }
        }
        // The longest match wins; iterate found longer matches last, so the
        // final provider holds the longest history. (alt is the previous.)
        (
            provider_taken,
            TageInfo {
                history,
                provider,
                provider_taken,
                alt_taken,
            },
        )
    }

    /// Trains the predictor with the resolved direction.
    pub fn update(&mut self, pc: u64, info: TageInfo, taken: bool) {
        self.clock += 1;
        let mispredicted = info.provider_taken != taken;

        // Base table always trains.
        let bi = self.base_index(pc);
        let b = &mut self.base[bi];
        if taken {
            *b = (*b + 1).min(3);
        } else {
            *b = b.saturating_sub(1);
        }

        // Provider counter update.
        if (info.provider as usize) < NUM_TABLES {
            let t = info.provider as usize;
            let e = &mut self.tables[t][Self::index(pc, info.history, t)];
            if e.tag == Self::tag(pc, info.history, t) {
                e.ctr = if taken {
                    (e.ctr + 1).min(3)
                } else {
                    (e.ctr - 1).max(-4)
                };
                // Usefulness: provider differed from alt and was right/wrong.
                if info.provider_taken != info.alt_taken {
                    if info.provider_taken == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }

        // Allocate a longer-history entry on a mispredict.
        if mispredicted {
            let start = if (info.provider as usize) < NUM_TABLES {
                info.provider as usize + 1
            } else {
                0
            };
            let mut allocated = false;
            for t in start..NUM_TABLES {
                let idx = Self::index(pc, info.history, t);
                let e = &mut self.tables[t][idx];
                if e.useful == 0 {
                    *e = TageEntry {
                        tag: Self::tag(pc, info.history, t),
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Aging: decay usefulness so future allocations succeed.
                for t in start..NUM_TABLES {
                    let idx = Self::index(pc, info.history, t);
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        self.history = (self.history << 1) | taken as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_long_periodic_pattern_gshare_cannot() {
        // Period-24 pattern: one not-taken every 24. A 2-bit bimodal stays
        // taken-biased (1/24 wrong); TAGE's 32/64-bit histories can learn
        // the exact position and approach zero mispredicts.
        let mut t = Tage::new();
        let pc = 0x400;
        let mut wrong_late = 0;
        for i in 0..4000u32 {
            let taken = i % 24 != 23;
            let (pred, info) = t.predict(pc);
            if i > 3000 && pred != taken {
                wrong_late += 1;
            }
            t.update(pc, info, taken);
        }
        // Last ~1000 instances contain ~41 exits; TAGE should catch most.
        assert!(
            wrong_late <= 15,
            "TAGE should learn the period, got {wrong_late} wrong"
        );
    }

    #[test]
    fn beats_bimodal_on_correlated_branches() {
        // Branch B is taken iff branch A was taken (perfect correlation);
        // A itself is pseudo-random. Bimodal gets ~50% on B; TAGE near 100%.
        let mut t = Tage::new();
        let (pc_a, pc_b) = (0x100, 0x200);
        let mut wrong_b_late = 0;
        let mut seed = 0x12345u64;
        for i in 0..6000u32 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a_taken = seed >> 63 == 1;
            let (_, info_a) = t.predict(pc_a);
            t.update(pc_a, info_a, a_taken);

            let b_taken = a_taken;
            let (pred_b, info_b) = t.predict(pc_b);
            if i > 4000 && pred_b != b_taken {
                wrong_b_late += 1;
            }
            t.update(pc_b, info_b, b_taken);
        }
        assert!(
            wrong_b_late < 300,
            "TAGE should exploit the 1-branch correlation, got {wrong_b_late}/2000 wrong"
        );
    }

    #[test]
    fn always_taken_converges_fast() {
        let mut t = Tage::new();
        let mut wrong = 0;
        for _ in 0..200 {
            let (pred, info) = t.predict(0x40);
            if !pred {
                wrong += 1;
            }
            t.update(0x40, info, true);
        }
        assert!(wrong <= 4, "got {wrong}");
    }

    #[test]
    fn fold_is_deterministic_and_bounded() {
        for len in [8u32, 16, 32, 64] {
            for h in [0u64, 0xFFFF, u64::MAX] {
                let v = fold(0x1234, h, len, TABLE_BITS);
                assert!(v < (1 << TABLE_BITS));
                assert_eq!(v, fold(0x1234, h, len, TABLE_BITS));
            }
        }
    }
}
