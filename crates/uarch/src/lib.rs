//! Microarchitectural building blocks for the `shelfsim` core model.
//!
//! Everything the paper's hybrid instruction window is assembled from lives
//! here, decoupled from the pipeline so each mechanism can be unit- and
//! property-tested in isolation:
//!
//! * [`OrderedQueue`] — bounded circular buffer with monotonic indices; the
//!   substrate for the ROB, the shelf, and the load/store queues.
//! * [`FreeList`] — physical-register and tag-extension free lists
//!   (paper §III-C, Figure 7).
//! * [`RenameTable`] — the RAT mapping each architectural register to a
//!   *(physical register index, tag)* pair (Figure 8).
//! * [`Scoreboard`] — per-tag readiness (wakeup for the IQ, the "ready
//!   bitvector / conventional scoreboard" for the shelf head).
//! * [`IssueTracker`] — the per-thread issue-tracking bitvector with head
//!   pointer that lets the shelf issue in program order (Figure 4).
//! * [`SsrPair`] — the two speculation shift registers per thread
//!   (Figure 5).
//! * [`BranchPredictor`] — gshare + BTB + return address stack.
//! * [`StoreSets`] — the store-set memory dependence predictor (§III-D).
//! * [`Icount`] — the ICOUNT SMT fetch policy.
//! * [`ReadyCycleTable`] / [`ParentLoadsTable`] — the practical steering
//!   hardware (§IV-B, Figure 9).

pub mod bpred;
pub mod freelist;
pub mod icount;
pub mod issue_track;
pub mod plt;
pub mod queue;
pub mod rct;
pub mod rename;
pub mod scoreboard;
pub mod ssr;
pub mod store_sets;
pub mod tage;

pub use bpred::{BranchPredictor, BranchPredictorConfig, Prediction, PredictorKind};
pub use freelist::FreeList;
pub use icount::Icount;
pub use issue_track::IssueTracker;
pub use plt::ParentLoadsTable;
pub use queue::OrderedQueue;
pub use rct::ReadyCycleTable;
pub use rename::{Mapping, PhysReg, RenameTable, Tag};
pub use scoreboard::Scoreboard;
pub use ssr::SsrPair;
pub use store_sets::StoreSets;
pub use tage::{Tage, TageInfo};
