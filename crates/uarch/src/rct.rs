//! The Ready Cycle Table of the practical steering mechanism
//! (paper §IV-B, Figure 9).
//!
//! One small saturating countdown counter per architectural register
//! predicts how many cycles remain until the register becomes ready. The
//! paper's design exploration found 5-bit counters (a 0–31 cycle horizon)
//! sufficient. Counters normally decrement every cycle; when a parent load
//! misses, the [`crate::ParentLoadsTable`] freezes the counters of all its
//! transitive dependents, pushing the predicted schedule back one cycle per
//! cycle until the load completes.

use shelfsim_isa::NUM_ARCH_REGS;

/// Per-register predicted-ready countdown counters.
#[derive(Clone, Debug)]
pub struct ReadyCycleTable {
    counters: [u8; NUM_ARCH_REGS],
    /// Bit `i` set iff `counters[i] > 0`; lets the per-cycle tick visit
    /// only live counters instead of the whole register file.
    active: u64,
    max: u8,
}

impl ReadyCycleTable {
    /// Creates a table of `bits`-wide counters, all zero (everything
    /// predicted ready).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        ReadyCycleTable {
            counters: [0; NUM_ARCH_REGS],
            active: 0,
            max: ((1u16 << bits) - 1) as u8,
        }
    }

    /// Predicted cycles until register `reg` is ready.
    #[inline]
    pub fn cycles_until_ready(&self, reg: shelfsim_isa::ArchReg) -> u32 {
        self.counters[reg.index()] as u32
    }

    /// Records that `reg` is predicted ready `cycles` from now (saturating
    /// at the counter width).
    #[inline]
    pub fn set(&mut self, reg: shelfsim_isa::ArchReg, cycles: u32) {
        let v = cycles.min(self.max as u32) as u8;
        self.counters[reg.index()] = v;
        if v > 0 {
            self.active |= 1u64 << reg.index();
        } else {
            self.active &= !(1u64 << reg.index());
        }
    }

    /// The saturation value (31 for the paper's 5-bit counters).
    pub fn saturation(&self) -> u32 {
        self.max as u32
    }

    /// One cycle passes: decrement every counter whose register index is
    /// not frozen by `frozen`. Visits only nonzero counters.
    pub fn tick(&mut self, mut frozen: impl FnMut(usize) -> bool) {
        let mut live = self.active;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            if !frozen(i) {
                self.counters[i] -= 1;
                if self.counters[i] == 0 {
                    self.active &= !(1u64 << i);
                }
            }
        }
    }

    /// Indices of registers whose counter just reads zero (predicted ready).
    pub fn predicted_ready(&self, reg: shelfsim_isa::ArchReg) -> bool {
        self.counters[reg.index()] == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_isa::ArchReg;

    #[test]
    fn countdown_reaches_zero() {
        let mut rct = ReadyCycleTable::new(5);
        let r = ArchReg::int(4);
        rct.set(r, 3);
        assert_eq!(rct.cycles_until_ready(r), 3);
        rct.tick(|_| false);
        rct.tick(|_| false);
        assert!(!rct.predicted_ready(r));
        rct.tick(|_| false);
        assert!(rct.predicted_ready(r));
        rct.tick(|_| false); // stays at zero
        assert_eq!(rct.cycles_until_ready(r), 0);
    }

    #[test]
    fn saturates_at_width() {
        let mut rct = ReadyCycleTable::new(5);
        let r = ArchReg::fp(0);
        rct.set(r, 1000);
        assert_eq!(rct.cycles_until_ready(r), 31);
        assert_eq!(rct.saturation(), 31);
    }

    #[test]
    fn freeze_stalls_selected_registers() {
        let mut rct = ReadyCycleTable::new(5);
        let a = ArchReg::int(0);
        let b = ArchReg::int(1);
        rct.set(a, 2);
        rct.set(b, 2);
        rct.tick(|i| i == a.index());
        assert_eq!(rct.cycles_until_ready(a), 2, "frozen register holds");
        assert_eq!(rct.cycles_until_ready(b), 1);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = ReadyCycleTable::new(0);
    }
}
