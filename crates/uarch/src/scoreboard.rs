//! Per-tag readiness tracking.
//!
//! One table serves two roles from the paper:
//!
//! * the IQ's wakeup state (an entry's source is ready when its tag's ready
//!   cycle has passed — the simulator models tag broadcast as a ready-cycle
//!   comparison, which is timing-equivalent to CAM wakeup with full bypass);
//! * the shelf head's "ready bitvector … using a conventional scoreboard"
//!   (§III-C) for RAW and WAW stalls.

use crate::rename::Tag;

/// Cycle-stamped readiness for every tag (physical + extension).
///
/// A tag's *ready cycle* is the earliest cycle at which a dependent may
/// issue and still receive the value through the bypass network. Unwritten
/// or in-flight tags are `u64::MAX` ("pending").
#[derive(Clone, Debug)]
pub struct Scoreboard {
    ready_at: Vec<u64>,
}

impl Scoreboard {
    /// A sentinel meaning "producer has not yet announced a completion time".
    pub const PENDING: u64 = u64::MAX;

    /// Creates a scoreboard for `num_tags` tags, all ready at cycle 0
    /// (architectural state is ready before execution starts).
    pub fn new(num_tags: usize) -> Self {
        Scoreboard {
            ready_at: vec![0; num_tags],
        }
    }

    /// Marks `tag` pending: a producer is in flight with unknown completion.
    #[inline]
    pub fn mark_pending(&mut self, tag: Tag) {
        self.ready_at[tag.index()] = Self::PENDING;
    }

    /// Announces that `tag` becomes usable by consumers issuing at `cycle`.
    #[inline]
    pub fn set_ready_at(&mut self, tag: Tag, cycle: u64) {
        self.ready_at[tag.index()] = cycle;
    }

    /// The announced ready cycle ([`Scoreboard::PENDING`] if unknown).
    #[inline]
    pub fn ready_at(&self, tag: Tag) -> u64 {
        self.ready_at[tag.index()]
    }

    /// Whether a consumer issuing at `now` would receive the value.
    #[inline]
    pub fn is_ready(&self, tag: Tag, now: u64) -> bool {
        self.ready_at[tag.index()] <= now
    }

    /// Number of tags tracked.
    pub fn len(&self) -> usize {
        self.ready_at.len()
    }

    /// Returns `true` if no tags are tracked.
    pub fn is_empty(&self) -> bool {
        self.ready_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_ready() {
        let sb = Scoreboard::new(8);
        assert!(sb.is_ready(Tag(0), 0));
        assert!(sb.is_ready(Tag(7), 0));
    }

    #[test]
    fn pending_until_announced() {
        let mut sb = Scoreboard::new(4);
        sb.mark_pending(Tag(2));
        assert!(!sb.is_ready(Tag(2), 1_000_000));
        sb.set_ready_at(Tag(2), 10);
        assert!(!sb.is_ready(Tag(2), 9));
        assert!(sb.is_ready(Tag(2), 10));
        assert!(sb.is_ready(Tag(2), 11));
    }

    #[test]
    fn ready_at_round_trips() {
        let mut sb = Scoreboard::new(2);
        sb.set_ready_at(Tag(1), 42);
        assert_eq!(sb.ready_at(Tag(1)), 42);
        assert_eq!(sb.ready_at(Tag(0)), 0);
        assert_eq!(sb.len(), 2);
    }
}
