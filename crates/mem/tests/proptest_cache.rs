//! Property tests for the cache against a reference set-associative LRU
//! model, and MSHR bounds under random access streams.

use proptest::prelude::*;
use shelfsim_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig};

/// Reference model: per-set vector of (tag, last_use), true LRU.
struct RefCache {
    sets: Vec<Vec<(u64, u64)>>,
    assoc: usize,
    block_shift: u32,
    set_mask: u64,
    tick: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); cfg.num_sets()],
            assoc: cfg.assoc,
            block_shift: cfg.block_bytes.trailing_zeros(),
            set_mask: (cfg.num_sets() - 1) as u64,
            tick: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let set = ((addr >> self.block_shift) & self.set_mask) as usize;
        let tag = addr >> self.block_shift >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|e| e.0 == tag) {
            e.1 = self.tick;
            return true;
        }
        if ways.len() == self.assoc {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("full");
            ways.remove(lru);
        }
        ways.push((tag, self.tick));
        false
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..4096, 1..400)) {
        let cfg = CacheConfig { size_bytes: 1024, assoc: 2, block_bytes: 64, latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        for a in addrs {
            let got = cache.access(a, false);
            let want = reference.access(a);
            prop_assert_eq!(got, want, "divergence at address {:#x}", a);
        }
    }

    #[test]
    fn peek_never_changes_outcomes(addrs in prop::collection::vec(0u64..4096, 1..200)) {
        // Interleaving peeks between accesses must not change hit/miss
        // behaviour relative to the same stream without peeks.
        let cfg = CacheConfig { size_bytes: 512, assoc: 2, block_bytes: 64, latency: 1 };
        let mut with_peeks = Cache::new(cfg);
        let mut without = Cache::new(cfg);
        for &a in &addrs {
            let _ = with_peeks.peek(a ^ 0xfff);
            let _ = with_peeks.peek(a);
            prop_assert_eq!(with_peeks.access(a, false), without.access(a, false));
        }
    }

    #[test]
    fn hierarchy_latencies_are_ordered_and_bounded(
        addrs in prop::collection::vec(0u64..(1 << 22), 1..100),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let max = h.latency_of(shelfsim_mem::Level::Memory) as u64;
        let mut now = 0u64;
        for a in addrs {
            if let Ok(acc) = h.access_data(a, false, now) {
                prop_assert!(acc.complete_cycle > now);
                prop_assert!(acc.complete_cycle <= now + max);
            }
            now += 3;
        }
    }

    #[test]
    fn mshr_outstanding_misses_are_bounded(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..200),
        mshrs in 1usize..8,
    ) {
        let cfg = HierarchyConfig { data_mshrs: mshrs, ..Default::default() };
        let mut h = Hierarchy::new(cfg);
        let mut outstanding: Vec<u64> = Vec::new(); // fill cycles
        for (now, a) in addrs.into_iter().enumerate() {
            let now = now as u64;
            outstanding.retain(|&f| f > now);
            match h.access_data(a, false, now) {
                Ok(acc) => {
                    if acc.complete_cycle > now + 2 {
                        // A miss: must fit in the MSHR budget.
                        if !outstanding.contains(&acc.complete_cycle) {
                            outstanding.push(acc.complete_cycle);
                        }
                        prop_assert!(outstanding.len() <= mshrs, "MSHR overflow");
                    }
                }
                Err(_) => {
                    prop_assert_eq!(outstanding.len(), mshrs, "rejected below capacity");
                }
            }
        }
    }
}
