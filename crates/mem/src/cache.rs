//! A set-associative cache with true-LRU replacement.

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
    /// Access latency in cycles (hit latency).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two block size,
    /// or capacity not divisible by `assoc * block_bytes`).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        let set_bytes = self.assoc * self.block_bytes;
        assert!(
            self.size_bytes.is_multiple_of(set_bytes),
            "capacity {} not divisible by way size {}",
            self.size_bytes,
            set_bytes
        );
        let sets = self.size_bytes / set_bytes;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Dirty blocks evicted (writebacks to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (accesses − hits).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `0.0..=1.0`; 0.0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
///
/// Timing-only: stores tags and replacement state, never data.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Line>,
    num_sets: usize,
    set_shift: u32,
    set_mask: u64,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Cache {
            config,
            sets: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                num_sets * config.assoc
            ],
            num_sets,
            set_shift: config.block_bytes.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Adds `delta * k` to every stat counter (saturating). Used by the
    /// cycle-skip fast-forward to fold a span of `k` identical idle cycles
    /// into the stats without replaying each access.
    pub(crate) fn stats_add_scaled(&mut self, delta: &CacheStats, k: u64) {
        self.stats.accesses = self
            .stats
            .accesses
            .saturating_add(delta.accesses.saturating_mul(k));
        self.stats.hits = self.stats.hits.saturating_add(delta.hits.saturating_mul(k));
        self.stats.writebacks = self
            .stats
            .writebacks
            .saturating_add(delta.writebacks.saturating_mul(k));
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        addr >> self.set_shift >> self.num_sets.trailing_zeros()
    }

    /// Looks up `addr`; on a miss, allocates the block (write-allocate),
    /// evicting the LRU way. Returns `true` on a hit.
    ///
    /// `is_write` marks the block dirty; a dirty eviction counts as a
    /// writeback (timing of the writeback itself is folded into the miss
    /// latency, a standard simplification).
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = set * self.config.assoc;
        let ways = &mut self.sets[base..base + self.config.assoc];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return true;
        }

        // Miss: pick the invalid way if any, else the LRU way.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("associativity >= 1");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        false
    }

    /// Reports whether `addr` currently hits, without changing any state.
    pub fn peek(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = set * self.config.assoc;
        self.sets[base..base + self.config.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line (used between benchmark phases in tests).
    pub fn flush(&mut self) {
        for l in &mut self.sets {
            l.valid = false;
            l.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            block_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, false));
        assert!(c.access(0x1000, false));
        assert!(c.access(0x103f, false), "same block hits");
        assert!(!c.access(0x1040, false), "next block misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three blocks mapping to the same set (set stride = 4 sets * 64B = 256B).
        c.access(0x0000, false);
        c.access(0x0100, false);
        c.access(0x0000, false); // touch A so B is LRU
        c.access(0x0200, false); // evicts B
        assert!(c.peek(0x0000));
        assert!(!c.peek(0x0100));
        assert!(c.peek(0x0200));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        c.access(0x0000, true);
        c.access(0x0100, false);
        c.access(0x0200, false); // evicts dirty block A
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut c = small();
        c.access(0x0000, false);
        let before = *c.stats();
        assert!(c.peek(0x0000));
        assert!(!c.peek(0x4000));
        assert_eq!(*c.stats(), before);
        // Peeking also must not refresh LRU: make A LRU, peek it, then fill.
        c.access(0x0100, false);
        c.peek(0x0000); // if this refreshed LRU the next fill would evict B
                        // A is older than B; a new block must evict A... actually LRU order:
                        // A(t1), B(t2). Peek must not bump A, so the victim is A.
        c.access(0x0200, false);
        assert!(!c.peek(0x0000));
        assert!(c.peek(0x0100));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0x0000, false);
        c.flush();
        assert!(!c.peek(0x0000));
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_block_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            block_bytes: 48,
            latency: 1,
        });
    }
}
