//! Cache hierarchy model for `shelfsim`: set-associative L1I/L1D, a shared
//! L2, a flat-latency DRAM, and miss-status holding registers (MSHRs).
//!
//! The paper's configuration (Table I): 32 KB 2-way L1I (1 cycle), 32 KB
//! 2-way L1D (2 cycles), 2 MB 8-way L2 (32 cycles), 100 ns memory (200 cycles
//! at 2 GHz).
//!
//! The model is timing-only: tags and replacement state are exact, data
//! values are not stored. A *functional peek* interface reports which level
//! an address would hit in without mutating any state — the oracle steering
//! policy of paper §IV-A uses it ("we functionally query the cache
//! (atomically, instantly and not modifying state) to accurately predict
//! memory latencies").
//!
//! # Example
//!
//! ```
//! use shelfsim_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::default());
//! let first = mem.access_data(0x4000, false, 0).expect("mshr available");
//! let again = mem.access_data(0x4000, false, first.complete_cycle).unwrap();
//! assert!(again.complete_cycle - first.complete_cycle <= mem.config().l1d.latency as u64 + 1);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Access, Hierarchy, HierarchyConfig, HierarchyCounters, Level};
pub use mshr::{MshrFile, MshrFull};
pub use prefetch::{PrefetchKind, StridePrefetcher};
