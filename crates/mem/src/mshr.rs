//! Miss-status holding registers.
//!
//! Paper §III-D: "Upon a cache miss, loads (whether from the shelf or IQ) are
//! allocated a miss status holding register, which arbitrates for writeback
//! and tag wakeup when the cache miss returns." MSHRs bound the number of
//! outstanding misses; accesses to a block already in flight *merge* into the
//! existing MSHR and complete when it fills.

/// Error returned when every MSHR is occupied; the requester must retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrFull;

impl std::fmt::Display for MshrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all miss status holding registers are occupied")
    }
}

impl std::error::Error for MshrFull {}

#[derive(Clone, Copy, Debug)]
struct Entry {
    block: u64,
    fill_cycle: u64,
    /// Bitmask of hardware threads with a stake in this fill (requester
    /// plus every thread that merged into it). Untagged legacy requests
    /// use `ALL_THREADS`, which keeps every per-thread horizon query
    /// conservative.
    threads: u64,
}

/// Thread mask claiming a fill for every hardware thread (the conservative
/// default used by the untagged request paths).
pub const ALL_THREADS: u64 = u64::MAX;

/// A file of miss-status holding registers.
///
/// Entries are freed lazily: an entry whose fill cycle has passed is
/// considered free.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    /// Number of requests that merged into an existing entry.
    pub merges: u64,
    /// Number of new entries allocated.
    pub allocations: u64,
    /// Number of requests rejected because the file was full.
    pub rejections: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            merges: 0,
            allocations: 0,
            rejections: 0,
        }
    }

    /// Requests a fill for `block`, claiming it for every thread.
    ///
    /// If the block is already in flight, merges and returns the existing
    /// fill cycle. Otherwise allocates an entry filling at `fill_cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when no register is free at `now`.
    pub fn request(&mut self, block: u64, now: u64, fill_cycle: u64) -> Result<u64, MshrFull> {
        self.request_for(block, now, fill_cycle, ALL_THREADS)
    }

    /// [`MshrFile::request`] with the requesting thread's bit recorded on
    /// the entry, so [`MshrFile::next_fill_after_for`] can answer per-thread
    /// horizon queries. A merge ORs the mask in: the fill now also wakes the
    /// merging thread.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when no register is free at `now`.
    pub fn request_for(
        &mut self,
        block: u64,
        now: u64,
        fill_cycle: u64,
        thread_mask: u64,
    ) -> Result<u64, MshrFull> {
        self.entries.retain(|e| e.fill_cycle > now);
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            self.merges += 1;
            e.threads |= thread_mask;
            return Ok(e.fill_cycle);
        }
        if self.entries.len() >= self.capacity {
            self.rejections += 1;
            return Err(MshrFull);
        }
        self.entries.push(Entry {
            block,
            fill_cycle,
            threads: thread_mask,
        });
        self.allocations += 1;
        Ok(fill_cycle)
    }

    /// If `block` has an in-flight fill at `now`, returns its fill cycle and
    /// counts a merge (claiming the fill for every thread). Used to route
    /// accesses to a block that is still being fetched into the pending miss
    /// instead of treating it as a hit.
    pub fn merge_inflight(&mut self, block: u64, now: u64) -> Option<u64> {
        self.merge_inflight_for(block, now, ALL_THREADS)
    }

    /// [`MshrFile::merge_inflight`] with the merging thread's bit ORed onto
    /// the entry's thread mask.
    pub fn merge_inflight_for(&mut self, block: u64, now: u64, thread_mask: u64) -> Option<u64> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.block == block && e.fill_cycle > now)?;
        e.threads |= thread_mask;
        self.merges += 1;
        Some(e.fill_cycle)
    }

    /// Number of in-flight entries at `now`.
    pub fn in_flight(&self, now: u64) -> usize {
        self.entries.iter().filter(|e| e.fill_cycle > now).count()
    }

    /// Earliest pending fill strictly after `now`, if any in-flight entry
    /// exists. This is the memory side of the engine's event-horizon
    /// computation: a core blocked on an outstanding miss cannot change
    /// state before the first MSHR fills.
    pub fn next_fill_after(&self, now: u64) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.fill_cycle > now)
            .map(|e| e.fill_cycle)
            .min()
    }

    /// Earliest pending fill strictly after `now` whose entry is claimed by
    /// `thread` (its bit set in the entry's thread mask). This is the
    /// per-thread horizon the partial-progress skip engine uses: a *parked*
    /// thread must be woken no later than its own next fill, while fills
    /// belonging purely to other threads do not bound its park.
    pub fn next_fill_after_for(&self, now: u64, thread: usize) -> Option<u64> {
        let bit = 1u64 << (thread as u32 % 64);
        self.entries
            .iter()
            .filter(|e| e.fill_cycle > now && e.threads & bit != 0)
            .map(|e| e.fill_cycle)
            .min()
    }

    /// Total register count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_merge() {
        let mut m = MshrFile::new(2);
        let t = m.request(0x40, 0, 100).unwrap();
        assert_eq!(t, 100);
        // Same block merges, keeps the original fill time.
        let t2 = m.request(0x40, 5, 250).unwrap();
        assert_eq!(t2, 100);
        assert_eq!(m.merges, 1);
        assert_eq!(m.allocations, 1);
    }

    #[test]
    fn full_file_rejects() {
        let mut m = MshrFile::new(1);
        m.request(0x40, 0, 100).unwrap();
        assert_eq!(m.request(0x80, 1, 101), Err(MshrFull));
        assert_eq!(m.rejections, 1);
    }

    #[test]
    fn entries_free_after_fill() {
        let mut m = MshrFile::new(1);
        m.request(0x40, 0, 100).unwrap();
        assert_eq!(m.in_flight(50), 1);
        // At cycle 100 the fill completed; a new block may allocate.
        assert!(m.request(0x80, 100, 200).is_ok());
        assert_eq!(m.in_flight(150), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn next_fill_after_reports_the_earliest_pending_fill() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.next_fill_after(0), None);
        m.request(0x40, 0, 300).unwrap();
        m.request(0x80, 0, 120).unwrap();
        m.request(0xc0, 0, 200).unwrap();
        assert_eq!(m.next_fill_after(0), Some(120));
        // Fills at or before `now` no longer count.
        assert_eq!(m.next_fill_after(120), Some(200));
        assert_eq!(m.next_fill_after(299), Some(300));
        assert_eq!(m.next_fill_after(300), None);
    }

    #[test]
    fn error_displays() {
        assert!(MshrFull.to_string().contains("occupied"));
    }

    #[test]
    fn per_thread_horizon_sees_only_claimed_fills() {
        let mut m = MshrFile::new(4);
        m.request_for(0x40, 0, 300, 1 << 0).unwrap();
        m.request_for(0x80, 0, 120, 1 << 1).unwrap();
        assert_eq!(m.next_fill_after_for(0, 0), Some(300));
        assert_eq!(m.next_fill_after_for(0, 1), Some(120));
        assert_eq!(m.next_fill_after_for(0, 2), None);
        // The global horizon still sees everything.
        assert_eq!(m.next_fill_after(0), Some(120));
    }

    #[test]
    fn merge_claims_the_fill_for_the_merging_thread() {
        let mut m = MshrFile::new(2);
        m.request_for(0x40, 0, 200, 1 << 0).unwrap();
        assert_eq!(m.next_fill_after_for(0, 1), None);
        // Thread 1 merges into thread 0's pending miss: both now wake at it.
        assert_eq!(m.merge_inflight_for(0x40, 5, 1 << 1), Some(200));
        assert_eq!(m.next_fill_after_for(5, 0), Some(200));
        assert_eq!(m.next_fill_after_for(5, 1), Some(200));
        // A request_for merge does the same.
        m.request_for(0x40, 5, 999, 1 << 2).unwrap();
        assert_eq!(m.next_fill_after_for(5, 2), Some(200));
    }

    #[test]
    fn untagged_requests_are_conservative_for_every_thread() {
        let mut m = MshrFile::new(2);
        m.request(0x40, 0, 150).unwrap();
        for t in [0usize, 3, 7, 63] {
            assert_eq!(m.next_fill_after_for(0, t), Some(150));
        }
    }
}
