//! Hardware data prefetchers.
//!
//! Two classic designs:
//!
//! * **next-line** — on a miss, pull in the following block (implemented in
//!   [`crate::Hierarchy`] as a fill-engine piggyback);
//! * **stride** — a PC-indexed reference prediction table (Chen & Baer):
//!   each load PC's last address and stride are tracked with a 2-bit
//!   confidence state; once confident, the predicted next address is
//!   prefetched ahead of the demand stream.

/// Prefetcher organization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrefetchKind {
    /// No prefetching (the paper's Table I configuration).
    #[default]
    None,
    /// Next-line on miss.
    NextLine,
    /// PC-indexed stride prediction.
    Stride,
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    /// 0 = invalid, 1 = training, 2..=3 = confident.
    state: u8,
}

/// A PC-indexed stride reference prediction table.
///
/// # Example
///
/// ```
/// use shelfsim_mem::StridePrefetcher;
///
/// let mut p = StridePrefetcher::new(64);
/// assert_eq!(p.observe(0x40, 0x1000), None);
/// assert_eq!(p.observe(0x40, 0x1040), None);        // stride learned
/// assert_eq!(p.observe(0x40, 0x1080), Some(0x10C0)); // confident: prefetch
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    /// Prefetch addresses issued.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Creates a table with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries.next_power_of_two().max(1)],
            issued: 0,
        }
    }

    /// Observes a demand access by the load at `pc` to `addr`; returns an
    /// address to prefetch once the stride is confident.
    pub fn observe(&mut self, pc: u64, addr: u64) -> Option<u64> {
        let idx = ((pc >> 2) as usize) & (self.table.len() - 1);
        let e = &mut self.table[idx];
        if e.state == 0 || e.tag != pc {
            *e = StrideEntry {
                tag: pc,
                last_addr: addr,
                stride: 0,
                state: 1,
            };
            return None;
        }
        let stride = addr as i64 - e.last_addr as i64;
        e.last_addr = addr;
        if stride == e.stride && stride != 0 {
            e.state = (e.state + 1).min(3);
        } else {
            e.stride = stride;
            e.state = if e.state >= 2 { 2 } else { 1 };
            return None;
        }
        if e.state >= 2 {
            let target = addr as i64 + stride;
            if target > 0 {
                self.issued += 1;
                return Some(target as u64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_stride() {
        let mut p = StridePrefetcher::new(16);
        assert_eq!(p.observe(0x100, 0x8000), None);
        assert_eq!(p.observe(0x100, 0x8040), None);
        assert_eq!(p.observe(0x100, 0x8080), Some(0x80C0));
        assert_eq!(p.observe(0x100, 0x80C0), Some(0x8100));
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(16);
        p.observe(0x100, 0x1000);
        p.observe(0x100, 0x1040);
        assert!(p.observe(0x100, 0x1080).is_some());
        // Pattern breaks: no prefetch until retrained.
        assert_eq!(p.observe(0x100, 0x9000), None);
        assert_eq!(p.observe(0x100, 0x9100), None);
        assert!(p.observe(0x100, 0x9200).is_some());
    }

    #[test]
    fn random_addresses_never_prefetch() {
        let mut p = StridePrefetcher::new(16);
        let mut seed = 7u64;
        for _ in 0..100 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(13);
            assert_eq!(p.observe(0x200, seed & 0xFFFF8), None);
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn zero_stride_does_not_prefetch() {
        let mut p = StridePrefetcher::new(16);
        for _ in 0..10 {
            assert_eq!(
                p.observe(0x300, 0x4000),
                None,
                "same-address stream is not a stride"
            );
        }
    }

    #[test]
    fn table_conflicts_retrain() {
        let mut p = StridePrefetcher::new(1); // every PC collides
        p.observe(0x100, 0x1000);
        p.observe(0x200, 0x2000); // evicts
        p.observe(0x100, 0x1040); // retrains from scratch
        assert_eq!(p.issued, 0);
    }
}
