//! The L1I / L1D / L2 / DRAM hierarchy (paper Table I).

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::{MshrFile, MshrFull, ALL_THREADS};
use crate::prefetch::{PrefetchKind, StridePrefetcher};

/// MSHR thread mask for hardware thread `t` (threads ≥ 64 collapse onto the
/// conservative all-threads mask rather than wrapping onto another thread's
/// bit).
fn thread_mask(thread: usize) -> u64 {
    if thread < 64 {
        1u64 << thread
    } else {
        ALL_THREADS
    }
}

/// Which level of the hierarchy served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// First-level cache (instruction or data).
    L1,
    /// Unified second-level cache.
    L2,
    /// Main memory.
    Memory,
}

/// The outcome of a timed access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the data is available to dependents.
    pub complete_cycle: u64,
    /// Deepest level that had to be consulted.
    pub level: Level,
}

/// Hierarchy geometry and latencies.
///
/// The default matches paper Table I at a 2 GHz clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (100 ns at 2 GHz = 200 cycles).
    pub memory_latency: u32,
    /// Data-side MSHRs (bound on outstanding data misses).
    pub data_mshrs: usize,
    /// Instruction-side MSHRs.
    pub inst_mshrs: usize,
    /// Next-line data prefetcher: on an L1D miss, the following block is
    /// fetched alongside it (sharing the same MSHR fill). Default off — the
    /// paper's configuration does not mention one. (Equivalent to
    /// `prefetch == PrefetchKind::NextLine`.)
    pub next_line_prefetch: bool,
    /// Data prefetcher organization (see [`crate::prefetch`]). Overrides
    /// `next_line_prefetch` when not `None`.
    pub prefetch: PrefetchKind,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 2,
                block_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 2,
                block_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                assoc: 8,
                block_bytes: 64,
                latency: 32,
            },
            memory_latency: 200,
            data_mshrs: 16,
            inst_mshrs: 8,
            next_line_prefetch: false,
            prefetch: PrefetchKind::None,
        }
    }
}

/// The memory hierarchy of one core: private L1I and L1D, a unified L2, and
/// flat-latency DRAM, with MSHR-limited misses.
///
/// Instruction and data addresses live in the same physical space but the
/// workload generator keeps them disjoint, so no coherence between L1I and
/// L1D is modeled.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    data_mshrs: MshrFile,
    inst_mshrs: MshrFile,
    block_mask: u64,
    /// Prefetches issued (next-line + stride).
    pub prefetches: u64,
    stride_pf: StridePrefetcher,
}

impl Hierarchy {
    /// Builds a cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        assert_eq!(
            config.l1d.block_bytes, config.l2.block_bytes,
            "uniform block size expected"
        );
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            data_mshrs: MshrFile::new(config.data_mshrs),
            inst_mshrs: MshrFile::new(config.inst_mshrs),
            block_mask: !(config.l1d.block_bytes as u64 - 1),
            prefetches: 0,
            stride_pf: StridePrefetcher::new(64),
            config,
        }
    }

    fn effective_prefetch(&self) -> PrefetchKind {
        if self.config.prefetch != PrefetchKind::None {
            self.config.prefetch
        } else if self.config.next_line_prefetch {
            PrefetchKind::NextLine
        } else {
            PrefetchKind::None
        }
    }

    /// Timed data access with a load-PC hint so the stride prefetcher can
    /// train. Behaves exactly like [`Hierarchy::access_data`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the access misses L1 and no MSHR is free.
    pub fn access_data_pc(
        &mut self,
        pc: u64,
        addr: u64,
        is_store: bool,
        now: u64,
    ) -> Result<Access, MshrFull> {
        self.access_data_pc_masked(pc, addr, is_store, now, ALL_THREADS)
    }

    /// [`Hierarchy::access_data_pc`] with the requesting hardware thread
    /// recorded on any MSHR entry it allocates or merges into (see
    /// [`Hierarchy::next_fill_after_for`]).
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the access misses L1 and no MSHR is free.
    pub fn access_data_pc_for(
        &mut self,
        pc: u64,
        addr: u64,
        is_store: bool,
        now: u64,
        thread: usize,
    ) -> Result<Access, MshrFull> {
        self.access_data_pc_masked(pc, addr, is_store, now, thread_mask(thread))
    }

    fn access_data_pc_masked(
        &mut self,
        pc: u64,
        addr: u64,
        is_store: bool,
        now: u64,
        mask: u64,
    ) -> Result<Access, MshrFull> {
        let out = self.access_data_masked(addr, is_store, now, mask)?;
        if !is_store && self.effective_prefetch() == PrefetchKind::Stride {
            if let Some(target) = self.stride_pf.observe(pc, addr) {
                // Prefetch fills tags ahead of the demand stream; timing is
                // folded (the fill engine runs ahead of the consumer).
                if !self.l1d.peek(target) {
                    self.prefetches += 1;
                    self.l1d.access(target, false);
                    self.l2.access(target, false);
                }
            }
        }
        Ok(out)
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Timed data access starting at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the access misses L1 and no MSHR is free;
    /// the issue stage must replay the access later.
    pub fn access_data(&mut self, addr: u64, is_store: bool, now: u64) -> Result<Access, MshrFull> {
        self.access_data_masked(addr, is_store, now, ALL_THREADS)
    }

    /// [`Hierarchy::access_data`] with the requesting hardware thread
    /// recorded on any MSHR entry it allocates or merges into.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the access misses L1 and no MSHR is free.
    pub fn access_data_for(
        &mut self,
        addr: u64,
        is_store: bool,
        now: u64,
        thread: usize,
    ) -> Result<Access, MshrFull> {
        self.access_data_masked(addr, is_store, now, thread_mask(thread))
    }

    fn access_data_masked(
        &mut self,
        addr: u64,
        is_store: bool,
        now: u64,
        mask: u64,
    ) -> Result<Access, MshrFull> {
        let block = addr & self.block_mask;
        // A block still being filled must not count as a hit even though its
        // tag is already installed: merge into the pending miss instead.
        if let Some(fill) = self.data_mshrs.merge_inflight_for(block, now, mask) {
            self.l1d.access(addr, is_store);
            return Ok(Access {
                complete_cycle: fill,
                level: Level::L1,
            });
        }
        if self.l1d.peek(addr) {
            self.l1d.access(addr, is_store);
            return Ok(Access {
                complete_cycle: now + self.config.l1d.latency as u64,
                level: Level::L1,
            });
        }
        // L1 miss: need an MSHR. Determine the fill level first (peek so a
        // rejected request leaves no side effects).
        let (latency, level) = if self.l2.peek(addr) {
            (self.config.l1d.latency + self.config.l2.latency, Level::L2)
        } else {
            (
                self.config.l1d.latency + self.config.l2.latency + self.config.memory_latency,
                Level::Memory,
            )
        };
        let fill = self
            .data_mshrs
            .request_for(block, now, now + latency as u64, mask)?;
        self.l1d.access(addr, is_store);
        self.l2.access(addr, false);
        if self.effective_prefetch() == PrefetchKind::NextLine {
            // Piggyback the next block on this miss (no extra MSHR; the
            // fill engine streams two blocks). Tags install immediately;
            // timing error is negligible because demand hits to the
            // prefetched block would otherwise have missed entirely.
            let next = block + self.config.l1d.block_bytes as u64;
            if !self.l1d.peek(next) {
                self.prefetches += 1;
                self.l1d.access(next, false);
                self.l2.access(next, false);
            }
        }
        Ok(Access {
            complete_cycle: fill,
            level,
        })
    }

    /// Timed instruction fetch of the block containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the fetch misses L1I and no MSHR is free.
    pub fn access_inst(&mut self, addr: u64, now: u64) -> Result<Access, MshrFull> {
        self.access_inst_masked(addr, now, ALL_THREADS)
    }

    /// [`Hierarchy::access_inst`] with the fetching hardware thread recorded
    /// on any MSHR entry it allocates or merges into.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the fetch misses L1I and no MSHR is free.
    pub fn access_inst_for(
        &mut self,
        addr: u64,
        now: u64,
        thread: usize,
    ) -> Result<Access, MshrFull> {
        self.access_inst_masked(addr, now, thread_mask(thread))
    }

    fn access_inst_masked(&mut self, addr: u64, now: u64, mask: u64) -> Result<Access, MshrFull> {
        let block = addr & self.block_mask;
        if let Some(fill) = self.inst_mshrs.merge_inflight_for(block, now, mask) {
            self.l1i.access(addr, false);
            return Ok(Access {
                complete_cycle: fill,
                level: Level::L1,
            });
        }
        if self.l1i.peek(addr) {
            self.l1i.access(addr, false);
            return Ok(Access {
                complete_cycle: now + self.config.l1i.latency as u64,
                level: Level::L1,
            });
        }
        let (latency, level) = if self.l2.peek(addr) {
            (self.config.l1i.latency + self.config.l2.latency, Level::L2)
        } else {
            (
                self.config.l1i.latency + self.config.l2.latency + self.config.memory_latency,
                Level::Memory,
            )
        };
        let fill = self
            .inst_mshrs
            .request_for(block, now, now + latency as u64, mask)?;
        self.l1i.access(addr, false);
        self.l2.access(addr, false);
        Ok(Access {
            complete_cycle: fill,
            level,
        })
    }

    /// Warms the data path with `addr` (fills L1D and L2 tags directly,
    /// bypassing MSHRs and timing). For explicit warm-up only.
    pub fn warm_data(&mut self, addr: u64) {
        self.l1d.access(addr, false);
        self.l2.access(addr, false);
    }

    /// Warms the instruction path with `addr` (fills L1I and L2 tags
    /// directly, bypassing MSHRs and timing). For explicit warm-up only.
    pub fn warm_inst(&mut self, addr: u64) {
        self.l1i.access(addr, false);
        self.l2.access(addr, false);
    }

    /// Functional, non-mutating query: which level would a data access hit?
    ///
    /// Used by the oracle steering policy (paper §IV-A) to predict load
    /// latency without perturbing cache state.
    pub fn peek_data(&self, addr: u64) -> Level {
        if self.l1d.peek(addr) {
            Level::L1
        } else if self.l2.peek(addr) {
            Level::L2
        } else {
            Level::Memory
        }
    }

    /// The data latency the given level implies (cycles from issue to data).
    pub fn latency_of(&self, level: Level) -> u32 {
        match level {
            Level::L1 => self.config.l1d.latency,
            Level::L2 => self.config.l1d.latency + self.config.l2.latency,
            Level::Memory => {
                self.config.l1d.latency + self.config.l2.latency + self.config.memory_latency
            }
        }
    }

    /// L1I counters.
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// L1D counters.
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Number of data-MSHR rejections (issue-stage replays).
    pub fn data_mshr_rejections(&self) -> u64 {
        self.data_mshrs.rejections
    }

    /// Earliest pending MSHR fill (data or instruction side) strictly after
    /// `now`. This is the memory hierarchy's contribution to the engine's
    /// event horizon: a core with every stage blocked cannot change state
    /// before the first outstanding miss returns.
    pub fn next_fill_after(&self, now: u64) -> Option<u64> {
        match (
            self.data_mshrs.next_fill_after(now),
            self.inst_mshrs.next_fill_after(now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Earliest pending MSHR fill (data or instruction side) strictly after
    /// `now` claimed by hardware thread `thread`. The per-thread analogue of
    /// [`Hierarchy::next_fill_after`]: a *parked* thread's wake-up horizon
    /// is bounded by its own outstanding misses, not other threads'.
    pub fn next_fill_after_for(&self, now: u64, thread: usize) -> Option<u64> {
        match (
            self.data_mshrs.next_fill_after_for(now, thread),
            self.inst_mshrs.next_fill_after_for(now, thread),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Flat snapshot of every event counter in the hierarchy (cache stats,
    /// MSHR traffic, prefetches). The skip engine diffs two snapshots to
    /// learn the per-idle-cycle counter delta, then replays it scaled.
    pub fn counters(&self) -> HierarchyCounters {
        HierarchyCounters {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            prefetches: self.prefetches,
            data_allocations: self.data_mshrs.allocations,
            data_merges: self.data_mshrs.merges,
            data_rejections: self.data_mshrs.rejections,
            inst_allocations: self.inst_mshrs.allocations,
            inst_merges: self.inst_mshrs.merges,
            inst_rejections: self.inst_mshrs.rejections,
        }
    }

    /// Accumulates `delta * k` into the hierarchy's counters (saturating):
    /// the fast-forward analogue of replaying one probed idle cycle's
    /// counter activity `k` times. Tag/LRU state is untouched — an idle
    /// cycle by definition performed no state-changing access.
    pub fn add_scaled_counters(&mut self, delta: &HierarchyCounters, k: u64) {
        self.l1i.stats_add_scaled(&delta.l1i, k);
        self.l1d.stats_add_scaled(&delta.l1d, k);
        self.l2.stats_add_scaled(&delta.l2, k);
        self.prefetches = self
            .prefetches
            .saturating_add(delta.prefetches.saturating_mul(k));
        let m = &mut self.data_mshrs;
        m.allocations = m
            .allocations
            .saturating_add(delta.data_allocations.saturating_mul(k));
        m.merges = m.merges.saturating_add(delta.data_merges.saturating_mul(k));
        m.rejections = m
            .rejections
            .saturating_add(delta.data_rejections.saturating_mul(k));
        let m = &mut self.inst_mshrs;
        m.allocations = m
            .allocations
            .saturating_add(delta.inst_allocations.saturating_mul(k));
        m.merges = m.merges.saturating_add(delta.inst_merges.saturating_mul(k));
        m.rejections = m
            .rejections
            .saturating_add(delta.inst_rejections.saturating_mul(k));
    }
}

/// Flat, comparable snapshot of the hierarchy's event counters (see
/// [`Hierarchy::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyCounters {
    /// L1I stats.
    pub l1i: CacheStats,
    /// L1D stats.
    pub l1d: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Data-side MSHR allocations.
    pub data_allocations: u64,
    /// Data-side MSHR merges.
    pub data_merges: u64,
    /// Data-side MSHR rejections.
    pub data_rejections: u64,
    /// Instruction-side MSHR allocations.
    pub inst_allocations: u64,
    /// Instruction-side MSHR merges.
    pub inst_merges: u64,
    /// Instruction-side MSHR rejections.
    pub inst_rejections: u64,
}

impl HierarchyCounters {
    /// Field-by-field difference `self - before` (every field of `before`
    /// must be ≤ the matching field here; counters are monotone).
    pub fn diff(&self, before: &HierarchyCounters) -> HierarchyCounters {
        let dc = |a: CacheStats, b: CacheStats| CacheStats {
            accesses: a.accesses - b.accesses,
            hits: a.hits - b.hits,
            writebacks: a.writebacks - b.writebacks,
        };
        HierarchyCounters {
            l1i: dc(self.l1i, before.l1i),
            l1d: dc(self.l1d, before.l1d),
            l2: dc(self.l2, before.l2),
            prefetches: self.prefetches - before.prefetches,
            data_allocations: self.data_allocations - before.data_allocations,
            data_merges: self.data_merges - before.data_merges,
            data_rejections: self.data_rejections - before.data_rejections,
            inst_allocations: self.inst_allocations - before.inst_allocations,
            inst_merges: self.inst_merges - before.inst_merges,
            inst_rejections: self.inst_rejections - before.inst_rejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn default_matches_table1() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1i.size_bytes, 32 << 10);
        assert_eq!(c.l1d.latency, 2);
        assert_eq!(c.l2.size_bytes, 2 << 20);
        assert_eq!(c.l2.latency, 32);
        assert_eq!(c.memory_latency, 200);
    }

    #[test]
    fn cold_access_goes_to_memory_then_hits() {
        let mut h = hier();
        let a = h.access_data(0x1_0000, false, 0).unwrap();
        assert_eq!(a.level, Level::Memory);
        assert_eq!(a.complete_cycle, (2 + 32 + 200) as u64);
        let b = h.access_data(0x1_0000, false, a.complete_cycle).unwrap();
        assert_eq!(b.level, Level::L1);
        assert_eq!(b.complete_cycle, a.complete_cycle + 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hier();
        h.access_data(0x0, false, 0).unwrap();
        // Evict set 0 of the 2-way L1 (set stride 16 KB) but stay in L2.
        h.access_data(16 << 10, false, 300).unwrap();
        h.access_data(32 << 10, false, 600).unwrap();
        let a = h.access_data(0x0, false, 900).unwrap();
        assert_eq!(a.level, Level::L2);
        assert_eq!(a.complete_cycle, 900 + 2 + 32);
    }

    #[test]
    fn peek_data_reports_level_without_mutation() {
        let mut h = hier();
        assert_eq!(h.peek_data(0x2000), Level::Memory);
        let before = h.l1d_stats().accesses;
        let _ = h.peek_data(0x2000);
        assert_eq!(h.l1d_stats().accesses, before);
        h.access_data(0x2000, false, 0).unwrap();
        assert_eq!(h.peek_data(0x2000), Level::L1);
    }

    #[test]
    fn mshr_exhaustion_rejects_without_side_effects() {
        let mut h = Hierarchy::new(HierarchyConfig {
            data_mshrs: 1,
            ..Default::default()
        });
        h.access_data(0x0, false, 0).unwrap();
        let misses_before = h.l1d_stats().misses();
        assert!(h.access_data(0x4_0000, false, 1).is_err());
        assert_eq!(
            h.l1d_stats().misses(),
            misses_before,
            "rejected access must not touch tags"
        );
        assert!(!matches!(h.peek_data(0x4_0000), Level::L1));
        // After the fill completes, the MSHR frees up.
        assert!(h.access_data(0x4_0000, false, 300).is_ok());
    }

    #[test]
    fn same_block_merges_into_inflight_miss() {
        let mut h = Hierarchy::new(HierarchyConfig {
            data_mshrs: 1,
            ..Default::default()
        });
        let a = h.access_data(0x100, false, 0).unwrap();
        let b = h.access_data(0x108, false, 3).unwrap();
        assert_eq!(
            a.complete_cycle, b.complete_cycle,
            "merged miss completes with the MSHR fill"
        );
    }

    #[test]
    fn inst_and_data_sides_are_separate() {
        let mut h = hier();
        h.access_data(0x3000, false, 0).unwrap();
        let a = h.access_inst(0x3000, 300).unwrap();
        // L1I does not contain the block; it should hit L2 (filled by data miss).
        assert_eq!(a.level, Level::L2);
    }

    #[test]
    fn next_line_prefetch_pulls_in_the_following_block() {
        let cfg = HierarchyConfig {
            next_line_prefetch: true,
            ..Default::default()
        };
        let mut h = Hierarchy::new(cfg);
        let miss = h.access_data(0x8000, false, 0).unwrap();
        assert_eq!(miss.level, Level::Memory);
        assert!(h.prefetches > 0);
        // The next block is now resident: a demand access hits.
        let next = h.access_data(0x8040, false, miss.complete_cycle).unwrap();
        assert_eq!(next.level, Level::L1);
        // Without the prefetcher it would have missed.
        let mut plain = Hierarchy::new(HierarchyConfig::default());
        plain.access_data(0x8000, false, 0).unwrap();
        let n2 = plain.access_data(0x8040, false, 300).unwrap();
        assert_ne!(n2.level, Level::L1);
    }

    #[test]
    fn thread_tagged_accesses_drive_per_thread_horizons() {
        let mut h = hier();
        // Thread 0 misses on data, thread 1 on an instruction block.
        let d = h.access_data_for(0x1_0000, false, 0, 0).unwrap();
        let i = h.access_inst_for(0x9_0000, 0, 1).unwrap();
        assert_eq!(h.next_fill_after_for(0, 0), Some(d.complete_cycle));
        assert_eq!(h.next_fill_after_for(0, 1), Some(i.complete_cycle));
        assert_eq!(h.next_fill_after_for(0, 2), None);
        // Thread 2 merging into thread 0's fill claims it too.
        let m = h.access_data_for(0x1_0008, false, 1, 2).unwrap();
        assert_eq!(m.complete_cycle, d.complete_cycle);
        assert_eq!(h.next_fill_after_for(1, 2), Some(d.complete_cycle));
        // The global horizon is the min over both sides, unchanged.
        assert_eq!(
            h.next_fill_after(0),
            Some(d.complete_cycle.min(i.complete_cycle))
        );
        // Untagged accesses stay conservative: everyone sees them.
        let mut plain = hier();
        let a = plain.access_data(0x2_0000, false, 0).unwrap();
        assert_eq!(plain.next_fill_after_for(0, 5), Some(a.complete_cycle));
    }

    #[test]
    fn latency_of_levels_monotonic() {
        let h = hier();
        assert!(h.latency_of(Level::L1) < h.latency_of(Level::L2));
        assert!(h.latency_of(Level::L2) < h.latency_of(Level::Memory));
    }
}
