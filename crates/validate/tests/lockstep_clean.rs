//! The harness validates clean on real kernels: the out-of-order core's
//! committed stream matches the in-order functional reference exactly, for
//! baseline and shelf designs, single- and multi-threaded.

use shelfsim_core::CoreConfig;
use shelfsim_validate::{
    render_json, render_text, run_lockstep, run_sweep, LockstepConfig, RunReport, Verdict,
};
use shelfsim_workload::kernels;
use shelfsim_workload::program::Program;

fn kernel_programs(name: &str, threads: usize) -> Vec<Program> {
    let k = kernels::by_name(name).expect("kernel exists");
    (0..threads)
        .map(|_| k.assemble().expect("kernel assembles"))
        .collect()
}

fn quick() -> LockstepConfig {
    LockstepConfig {
        commits_per_thread: 1_000,
        max_cycles: 200_000,
        warmup_insts: 500,
        ..LockstepConfig::default()
    }
}

#[test]
fn daxpy_validates_clean_on_base64_for_one_and_two_threads() {
    for threads in [1usize, 2] {
        let cfg = CoreConfig::base64(threads);
        let verdict = run_lockstep(&cfg, &kernel_programs("daxpy", threads), &quick());
        match verdict {
            Verdict::Clean(stats) => {
                assert_eq!(stats.committed, vec![1_000; threads]);
                assert!(stats.cycles > 0);
            }
            other => panic!("expected clean, got: {other:?}"),
        }
    }
}

#[test]
fn branchy_validates_clean_across_squashes_on_a_shelf_design() {
    use shelfsim_core::SteerPolicy;
    let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
    let verdict = run_lockstep(&cfg, &kernel_programs("branchy", 2), &quick());
    assert!(verdict.is_clean(), "got: {verdict:?}");
}

#[test]
fn structure_size_sweep_is_clean_and_streams_are_identical() {
    let cfg = CoreConfig::base64(2);
    let report = run_sweep(&cfg, &kernel_programs("mixed", 2), &quick());
    assert!(report.is_clean(), "sweep violation: {:?}", report.violation);
    // base + rob/iq/lq/sq perturbations (no shelf on base64).
    assert_eq!(report.points.len(), 5);
}

#[test]
fn reports_are_byte_deterministic() {
    let build = || {
        let cfg = CoreConfig::base64(1);
        let verdict = run_lockstep(&cfg, &kernel_programs("daxpy", 1), &quick());
        let runs = vec![RunReport {
            design: "base64".to_owned(),
            threads: 1,
            workload: "kernel:daxpy".to_owned(),
            verdict,
            sweep: None,
            regression: None,
        }];
        (render_text(&runs), render_json(&runs))
    };
    let (t1, j1) = build();
    let (t2, j2) = build();
    assert_eq!(t1, t2, "text report must be byte-deterministic");
    assert_eq!(j1, j2, "json report must be byte-deterministic");
    assert!(t1.starts_with("validate: 1 runs, 1 clean, 0 diverged, 0 invariant-violations"));
    assert!(j1.starts_with("{\"schema\":\"shelfsim-validate-v1\""));
    assert!(j1.contains("\"verdict\":\"clean\""));
}
