//! Mutation testing of the validator itself: every shipped chaos mutation
//! in the core's commit path must be detected by the lockstep harness with
//! a localized first-divergence report. Run with
//! `cargo test -p shelfsim-validate --features chaos`.
#![cfg(feature = "chaos")]

use shelfsim_core::{ChaosKind, ChaosPlan, CoreConfig, SteerPolicy};
use shelfsim_validate::{run_lockstep, LockstepConfig, Verdict};
use shelfsim_workload::kernels;
use shelfsim_workload::program::Program;

fn kernel_programs(name: &str, threads: usize) -> Vec<Program> {
    let k = kernels::by_name(name).expect("kernel exists");
    (0..threads)
        .map(|_| k.assemble().expect("kernel assembles"))
        .collect()
}

fn chaos_cfg(plan: ChaosPlan) -> LockstepConfig {
    LockstepConfig {
        commits_per_thread: 1_000,
        max_cycles: 200_000,
        warmup_insts: 500,
        chaos: Some(plan),
        ..LockstepConfig::default()
    }
}

/// The workload each mutation is armed against must have material to
/// corrupt: `forward` commits a store every iteration (store-value
/// corruption), `branchy` squashes constantly (dropped squashes), and
/// either exercises the plain commit-path mutations.
fn mutation_kernel(kind: ChaosKind) -> &'static str {
    match kind {
        ChaosKind::CorruptStoreValue => "forward",
        _ => "branchy",
    }
}

fn run_mutated(kind: ChaosKind, trigger: u64) -> Verdict {
    let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
    run_lockstep(
        &cfg,
        &kernel_programs(mutation_kernel(kind), 2),
        &chaos_cfg(ChaosPlan { kind, trigger }),
    )
}

#[test]
fn every_shipped_mutation_is_detected() {
    for &kind in &ChaosKind::ALL {
        let verdict = run_mutated(kind, 100);
        match &verdict {
            Verdict::Diverged(d) => {
                // The report localizes the first divergence.
                assert!(d.thread < 2, "{kind:?}: thread out of range");
                assert!(!d.field.is_empty(), "{kind:?}: missing field");
                assert!(!d.expected.is_empty() && !d.got.is_empty(), "{kind:?}");
            }
            // A mutation that stalls retirement (e.g. a held event) may
            // surface as an invariant violation instead — still a kill.
            Verdict::Invariant(_) => {}
            Verdict::Clean(_) => panic!("{kind:?} survived the harness (not detected)"),
        }
    }
}

#[test]
fn skip_writeback_is_localized_to_a_sequence_gap() {
    match run_mutated(ChaosKind::SkipWriteback, 50) {
        Verdict::Diverged(d) => {
            assert_eq!(d.field, "seq", "a dropped commit shows up as a seq gap");
            assert!(!d.trace_window.is_empty(), "trace window dump attached");
        }
        other => panic!("expected divergence, got: {other:?}"),
    }
}

#[test]
fn corrupt_store_value_is_caught_at_the_store() {
    match run_mutated(ChaosKind::CorruptStoreValue, 80) {
        Verdict::Diverged(d) => {
            // The corrupted address diverges the mem field (or the value
            // derived from it) at the mutated commit, not later.
            assert!(
                d.field == "mem" || d.field == "value",
                "got field `{}`",
                d.field
            );
        }
        other => panic!("expected divergence, got: {other:?}"),
    }
}

#[test]
fn mutations_do_not_fire_when_the_trigger_is_never_reached() {
    // A trigger far past the validated window must leave the run clean:
    // chaos is inert until its trigger.
    let verdict = run_mutated(ChaosKind::SkipWriteback, u64::MAX);
    assert!(verdict.is_clean(), "got: {verdict:?}");
}
