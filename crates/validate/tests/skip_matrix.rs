//! The cycle-skipping validation matrix: every library kernel on every
//! evaluated design at 1/2/4 threads, run through the lockstep harness with
//! skipping on and off. Both runs must validate clean against the in-order
//! reference AND produce bit-identical commit-stream fingerprints — the
//! skip engine is an execution strategy, not a model change.
//!
//! One `#[test]` per design keeps the matrix parallel across the test
//! harness's threads.

use shelfsim_analyze::design_by_name;
use shelfsim_validate::{run_lockstep, LockstepConfig, Verdict};
use shelfsim_workload::kernels;
use shelfsim_workload::program::Program;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn quick(cycle_skipping: bool) -> LockstepConfig {
    LockstepConfig {
        commits_per_thread: 150,
        max_cycles: 400_000,
        warmup_insts: 200,
        cycle_skipping,
        ..LockstepConfig::default()
    }
}

fn programs(kernel: &str, threads: usize) -> Vec<Program> {
    let k = kernels::by_name(kernel).expect("kernel in library");
    (0..threads)
        .map(|_| k.assemble().expect("library kernels assemble"))
        .collect()
}

/// One program per named kernel — asymmetric SMT mixes where some threads
/// block on memory while others keep committing, the shape the per-thread
/// partial-skip path must handle.
fn mixed_programs(kernel_names: &[&str]) -> Vec<Program> {
    kernel_names
        .iter()
        .map(|name| {
            kernels::by_name(name)
                .expect("kernel in library")
                .assemble()
                .expect("library kernels assemble")
        })
        .collect()
}

/// mcf-like pointer chases paired with hmmer-like compute kernels.
const ASYMMETRIC_MIXES: [&[&str]; 3] = [
    &["chase", "reduce"],
    &["chase2", "triad"],
    &["chase", "reduce", "chase2", "triad"],
];

fn clean_fingerprints(verdict: Verdict, what: &str) -> Vec<u64> {
    match verdict {
        Verdict::Clean(stats) => stats.fingerprints,
        other => panic!("{what}: expected clean, got {other:?}"),
    }
}

fn run_design(design: &str) {
    for kernel in kernels::all() {
        for threads in THREAD_COUNTS {
            let cfg = design_by_name(design, threads).expect("design in registry");
            let what = format!("{design}/{}/{threads}t", kernel.name);
            let on = clean_fingerprints(
                run_lockstep(&cfg, &programs(kernel.name, threads), &quick(true)),
                &format!("{what} skip-on"),
            );
            let off = clean_fingerprints(
                run_lockstep(&cfg, &programs(kernel.name, threads), &quick(false)),
                &format!("{what} skip-off"),
            );
            assert_eq!(
                on, off,
                "{what}: commit-stream fingerprints differ between skip-on and skip-off"
            );
        }
    }
}

/// The asymmetric leg of the matrix: whole-core fixed points are rare in
/// these mixes, so the bit-identical bar is carried almost entirely by the
/// per-thread park/reduced-tick path.
fn run_design_asymmetric(design: &str) {
    for mix in ASYMMETRIC_MIXES {
        let cfg = design_by_name(design, mix.len()).expect("design in registry");
        let what = format!("{design}/{}", mix.join("+"));
        let on = clean_fingerprints(
            run_lockstep(&cfg, &mixed_programs(mix), &quick(true)),
            &format!("{what} skip-on"),
        );
        let off = clean_fingerprints(
            run_lockstep(&cfg, &mixed_programs(mix), &quick(false)),
            &format!("{what} skip-off"),
        );
        assert_eq!(
            on, off,
            "{what}: commit-stream fingerprints differ between skip-on and skip-off"
        );
    }
}

#[test]
fn skip_matrix_base64() {
    run_design("base64");
}

#[test]
fn skip_matrix_base128() {
    run_design("base128");
}

#[test]
fn skip_matrix_shelf_cons() {
    run_design("shelf-cons");
}

#[test]
fn skip_matrix_shelf_opt() {
    run_design("shelf-opt");
}

#[test]
fn skip_matrix_shelf_oracle() {
    run_design("shelf-oracle");
}

#[test]
fn skip_matrix_shelf_inorder() {
    run_design("shelf-inorder");
}

#[test]
fn skip_matrix_asymmetric_base64() {
    run_design_asymmetric("base64");
}

#[test]
fn skip_matrix_asymmetric_shelf_opt() {
    run_design_asymmetric("shelf-opt");
}

#[test]
fn skip_matrix_asymmetric_shelf_cons() {
    run_design_asymmetric("shelf-cons");
}
