//! Differential validation harness for shelfsim.
//!
//! The out-of-order core is validated against a trivially-correct in-order
//! functional reference: both sides run the *same* dynamic instruction
//! stream (the deterministic [`TraceSource`](shelfsim_workload::TraceSource)
//! guarantees that) and the harness compares every retired instruction in
//! lockstep — sequence number, PC, operation, register operands, memory
//! address, branch outcome, and a synthetic architectural value computed by
//! the shared [`value`] model. The first divergence is localized to a
//! (thread, commit index, field) triple with a lifecycle-trace window dump.
//!
//! On top of lockstep execution the harness layers:
//!
//! - **Sensitivity sweeps** ([`sweep`]): perturbing one structure size at a
//!   time must leave the committed stream bit-identical — sizing changes
//!   timing, never architecture.
//! - **Divergence shrinking** ([`shrink`]): failing generated programs are
//!   greedily reduced to a locally-minimal divergent case and persisted as
//!   a `.s` regression file.
//! - **Mutation testing** (`chaos` feature, in shelfsim-core): seeded
//!   commit-path mutations that the harness must detect, validating the
//!   validator.

pub mod lockstep;
pub mod report;
pub mod shrink;
pub mod sweep;
pub mod value;

pub use lockstep::{
    run_lockstep, CleanStats, Divergence, InvariantViolation, LockstepConfig, Verdict,
};
pub use report::{render_json, render_text, totals, RunReport, Totals};
pub use shrink::{gen_spec_strategy, persist_regression, shrink_to_minimal, GenSpec};
pub use sweep::{run_sweep, SweepPoint, SweepReport};
pub use value::{mix64, ArchState, InstEffect};
