//! Deterministic rendering of validation results (text and JSON).
//!
//! Both renderers are byte-deterministic functions of their inputs — the
//! golden test reruns a validation and asserts identical output — and the
//! JSON is hand-rolled the same way as the campaign journal (no serde in
//! the workspace).

use crate::lockstep::Verdict;
use crate::sweep::SweepReport;
use std::fmt::Write as _;

/// One validated (design × threads × workload) combination.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Design-point name (`base64`, `shelf-opt`, ...).
    pub design: String,
    /// Hardware thread count.
    pub threads: usize,
    /// Workload label (`kernel:daxpy`, `suite:gcc+mcf`, `gen:<seed>`).
    pub workload: String,
    /// Lockstep verdict.
    pub verdict: Verdict,
    /// Sensitivity sweep outcome, when one was run for this combination.
    pub sweep: Option<SweepReport>,
    /// Path of a persisted shrunk regression case, if divergence shrinking
    /// produced one.
    pub regression: Option<String>,
}

impl RunReport {
    /// True when the lockstep verdict is clean and any sweep was clean too.
    pub fn is_clean(&self) -> bool {
        self.verdict.is_clean() && self.sweep.as_ref().is_none_or(SweepReport::is_clean)
    }
}

/// Totals across a report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Fully clean runs.
    pub clean: usize,
    /// Runs whose commit stream diverged from the reference.
    pub diverged: usize,
    /// Runs that violated a cross-cutting invariant (including sweeps).
    pub invariant: usize,
}

/// Tallies `runs` into [`Totals`] (sweep violations count as invariant
/// violations).
pub fn totals(runs: &[RunReport]) -> Totals {
    let mut t = Totals::default();
    for r in runs {
        match &r.verdict {
            Verdict::Clean(_) if r.is_clean() => t.clean += 1,
            Verdict::Clean(_) => t.invariant += 1,
            Verdict::Diverged(_) => t.diverged += 1,
            Verdict::Invariant(_) => t.invariant += 1,
        }
    }
    t
}

/// Renders the human-readable report.
pub fn render_text(runs: &[RunReport]) -> String {
    let t = totals(runs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "validate: {} runs, {} clean, {} diverged, {} invariant-violations",
        runs.len(),
        t.clean,
        t.diverged,
        t.invariant
    );
    for r in runs {
        let status = if r.is_clean() { "ok  " } else { "FAIL" };
        let _ = write!(
            out,
            "  {status} {:<14} x{} {}",
            r.design, r.threads, r.workload
        );
        match &r.verdict {
            Verdict::Clean(s) => {
                let _ = write!(
                    out,
                    "  cycles={} committed={}",
                    s.cycles,
                    s.committed.iter().sum::<u64>()
                );
            }
            Verdict::Diverged(d) => {
                let _ = write!(out, "  {d}");
            }
            Verdict::Invariant(v) => {
                let _ = write!(out, "  {v}");
            }
        }
        out.push('\n');
        if let Verdict::Diverged(d) = &r.verdict {
            for line in d.trace_window.lines() {
                let _ = writeln!(out, "      trace {line}");
            }
        }
        if let Some(sw) = &r.sweep {
            for p in &sw.points {
                let _ = writeln!(out, "      sweep {:<10} {}", p.label, p.verdict.as_str());
            }
            if let Some(v) = &sw.violation {
                let _ = writeln!(out, "      sweep VIOLATION: {v}");
            }
        }
        if let Some(path) = &r.regression {
            let _ = writeln!(out, "      regression case: {path}");
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report (`shelfsim-validate-v1`).
pub fn render_json(runs: &[RunReport]) -> String {
    let t = totals(runs);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"shelfsim-validate-v1\",\"runs\":{},\"clean\":{},\"diverged\":{},\"invariant\":{},\"results\":[",
        runs.len(),
        t.clean,
        t.diverged,
        t.invariant
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"design\":\"{}\",\"threads\":{},\"workload\":\"{}\",\"verdict\":\"{}\"",
            json_escape(&r.design),
            r.threads,
            json_escape(&r.workload),
            r.verdict.as_str()
        );
        match &r.verdict {
            Verdict::Clean(s) => {
                let _ = write!(
                    out,
                    ",\"cycles\":{},\"committed\":{}",
                    s.cycles,
                    s.committed.iter().sum::<u64>()
                );
            }
            Verdict::Diverged(d) => {
                let _ = write!(
                    out,
                    ",\"thread\":{},\"commit_index\":{},\"cycle\":{},\"field\":\"{}\",\"expected\":\"{}\",\"got\":\"{}\"",
                    d.thread,
                    d.commit_index,
                    d.cycle,
                    json_escape(d.field),
                    json_escape(&d.expected),
                    json_escape(&d.got)
                );
            }
            Verdict::Invariant(v) => {
                let _ = write!(
                    out,
                    ",\"kind\":\"{}\",\"detail\":\"{}\"",
                    json_escape(v.kind),
                    json_escape(&v.detail)
                );
            }
        }
        if let Some(sw) = &r.sweep {
            let _ = write!(out, ",\"sweep\":{{\"clean\":{}", sw.is_clean());
            if let Some(v) = &sw.violation {
                let _ = write!(out, ",\"violation\":\"{}\"", json_escape(v));
            }
            let _ = write!(out, ",\"points\":[");
            for (j, p) in sw.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":\"{}\",\"verdict\":\"{}\"}}",
                    json_escape(&p.label),
                    p.verdict.as_str()
                );
            }
            out.push_str("]}");
        }
        if let Some(path) = &r.regression {
            let _ = write!(out, ",\"regression\":\"{}\"", json_escape(path));
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}
