//! Structure-size sensitivity sweeps.
//!
//! A structure size (ROB, IQ, LQ, SQ, shelf depth — and, because the PRF is
//! derived as `threads × NUM_ARCH_REGS + rob_entries`, the PRF too) must
//! change *when* instructions retire, never *what* retires. The sweep
//! perturbs one size at a time from a base design point, runs the lockstep
//! harness at every point, and asserts the cross-run invariants: every
//! point validates clean against the functional reference, and the
//! validated commit-stream fingerprints (sequence numbers, PCs, memory
//! addresses, branch outcomes, synthetic values) are bit-identical across
//! all points. Per-run invariants (stall-attribution sums, event
//! conservation) are asserted inside each lockstep run.

use crate::lockstep::{run_lockstep, LockstepConfig, Verdict};
use shelfsim_core::CoreConfig;
use shelfsim_workload::program::Program;

/// Size delta applied to each queue structure.
const QUEUE_DELTA: usize = 8;
/// Size delta applied to the per-thread shelf.
const SHELF_DELTA: usize = 16;

/// One perturbation point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Point label (`base`, `rob+8`, ...).
    pub label: String,
    /// Lockstep verdict at this point.
    pub verdict: Verdict,
}

/// Outcome of a full sweep from one base configuration.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Every point run, base first.
    pub points: Vec<SweepPoint>,
    /// First cross-point violation, if any (all-clean points whose commit
    /// streams nevertheless differ).
    pub violation: Option<String>,
}

impl SweepReport {
    /// True when every point validated clean *and* all streams matched.
    pub fn is_clean(&self) -> bool {
        self.violation.is_none() && self.points.iter().all(|p| p.verdict.is_clean())
    }
}

/// The perturbation points for `base`: one structure grown at a time.
/// Growing the ROB also grows the derived PRF, which is how the PRF axis of
/// the ISSUE's ROB/IQ/LSQ/PRF/shelf list is covered.
fn perturbations(base: &CoreConfig) -> Vec<(String, CoreConfig)> {
    let mut points = vec![("base".to_owned(), base.clone())];
    let mut push = |label: String, f: &dyn Fn(&mut CoreConfig)| {
        let mut cfg = base.clone();
        f(&mut cfg);
        points.push((label, cfg));
    };
    push(format!("rob+{QUEUE_DELTA}"), &|c| {
        c.rob_entries += QUEUE_DELTA;
    });
    push(format!("iq+{QUEUE_DELTA}"), &|c| {
        c.iq_entries += QUEUE_DELTA;
    });
    push(format!("lq+{QUEUE_DELTA}"), &|c| {
        c.lq_entries += QUEUE_DELTA;
    });
    push(format!("sq+{QUEUE_DELTA}"), &|c| {
        c.sq_entries += QUEUE_DELTA;
    });
    if base.shelf_entries > 0 {
        push(format!("shelf+{SHELF_DELTA}"), &|c| {
            c.shelf_entries += SHELF_DELTA;
        });
    }
    points
}

/// Runs the sweep: lockstep-validates `programs` at the base point and at
/// every single-structure perturbation, then cross-checks that all clean
/// points produced identical validated commit streams.
pub fn run_sweep(base: &CoreConfig, programs: &[Program], lcfg: &LockstepConfig) -> SweepReport {
    let mut points = Vec::new();
    let mut base_stats: Option<(String, Vec<u64>, Vec<u64>)> = None;
    let mut violation = None;

    for (label, cfg) in perturbations(base) {
        let verdict = run_lockstep(&cfg, programs, lcfg);
        if let Verdict::Clean(stats) = &verdict {
            match &base_stats {
                None => {
                    base_stats = Some((
                        label.clone(),
                        stats.committed.clone(),
                        stats.fingerprints.clone(),
                    ));
                }
                Some((base_label, base_committed, base_fp)) => {
                    if violation.is_none() && stats.committed != *base_committed {
                        violation = Some(format!(
                            "`{label}` validated {:?} commits per thread but `{base_label}` validated {:?}",
                            stats.committed, base_committed
                        ));
                    }
                    if violation.is_none() && stats.fingerprints != *base_fp {
                        let t = stats
                            .fingerprints
                            .iter()
                            .zip(base_fp)
                            .position(|(a, b)| a != b)
                            .unwrap_or(0);
                        violation = Some(format!(
                            "`{label}` thread {t} commit-stream fingerprint {:#x} != `{base_label}` {:#x}",
                            stats.fingerprints[t], base_fp[t]
                        ));
                    }
                }
            }
        }
        points.push(SweepPoint { label, verdict });
    }

    SweepReport { points, violation }
}
