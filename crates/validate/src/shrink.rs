//! Generated-program divergence shrinking.
//!
//! The in-tree proptest shim deliberately has no shrinking, so the harness
//! brings its own: generated programs are described by a small parametric
//! [`GenSpec`] (a point in a 7-dimensional lattice), and on divergence a
//! greedy descent walks the lattice toward the origin, keeping each
//! candidate only if it still fails. The result is a locally-minimal
//! divergent program that is persisted as a `.s` regression case with its
//! spec in the header, ready to re-run and to check in.

use proptest::prelude::*;
use shelfsim_workload::asm::assemble;
use shelfsim_workload::program::Program;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A parametric generated program: a chain of counted-loop blocks of
/// dependent integer ALU work, optionally salted with loads, stores, and
/// data-dependent branches. Every field is a monotone "amount of program"
/// axis, which is what makes greedy shrinking meaningful.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenSpec {
    /// Main-chain blocks (1..=4).
    pub blocks: u8,
    /// ALU instructions per block (1..=8).
    pub block_len: u8,
    /// Loop trip count per block (1..=256; the DSL floor of 2 is applied
    /// when rendering, so 1 and 2 yield the same program).
    pub trips: u32,
    /// Emit a load every `n` ALU slots (0 = no loads).
    pub load_every: u8,
    /// Emit a store every `n` ALU slots (0 = no stores).
    pub store_every: u8,
    /// Blocks with a data-dependent forward branch: every `n`-th (0 = none).
    pub branch_every: u8,
    /// Workload seed (drives branch outcomes and address streams).
    pub seed: u64,
}

impl GenSpec {
    /// A deterministic spec drawn from `seed` (the CLI's `--generated N`
    /// path: no proptest runner needed, same lattice as
    /// [`gen_spec_strategy`]).
    pub fn from_seed(seed: u64) -> GenSpec {
        use crate::value::mix64;
        let d = |k: u64| mix64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k);
        GenSpec {
            blocks: (d(1) % 4) as u8 + 1,
            block_len: (d(2) % 8) as u8 + 1,
            trips: (d(3) % 256) as u32 + 1,
            load_every: (d(4) % 5) as u8,
            store_every: (d(5) % 5) as u8,
            branch_every: (d(6) % 3) as u8,
            seed,
        }
    }

    /// Renders the spec as assembler DSL source.
    pub fn to_source(&self) -> String {
        let mut src = String::new();
        for b in 0..self.blocks.max(1) {
            let _ = writeln!(src, "b{b}:");
            let mut slot = 0u32;
            for i in 0..self.block_len.max(1) {
                let d = 8 + (i as u32 + b as u32) % 8;
                let s = 8 + (i as u32 + b as u32 + 1) % 8;
                let _ = writeln!(src, "    add   r{d}, r{s}");
                slot += 1;
                if self.load_every > 0 && slot.is_multiple_of(self.load_every as u32) {
                    let lr = 16 + (i as u32 % 4);
                    let _ = writeln!(src, "    load  r{lr}, [r0], stride=8, region=l1");
                }
                if self.store_every > 0 && slot.is_multiple_of(self.store_every as u32) {
                    let _ = writeln!(src, "    store [r1], r{d}, stride=8, region=l1");
                }
            }
            if self.branch_every > 0 && (b as u32 + 1).is_multiple_of(self.branch_every as u32) {
                let _ = writeln!(src, "    beq   r9, skip{b}, p=0.5");
                let _ = writeln!(src, "    mul   r10, r9, r8");
                let _ = writeln!(src, "skip{b}:");
                let _ = writeln!(src, "    add   r11, r11");
            }
            let _ = writeln!(src, "    loop  b{b}, trips={}", self.trips.max(2));
        }
        src
    }

    /// Assembles the spec into a runnable [`Program`] carrying the spec's
    /// workload seed.
    ///
    /// # Panics
    ///
    /// Generated sources are valid by construction; a panic here is a bug
    /// in [`GenSpec::to_source`].
    pub fn build_program(&self) -> Program {
        let mut p = assemble(&self.to_source()).unwrap_or_else(|e| {
            panic!("generated program must assemble: {e}\n{}", self.to_source())
        });
        p.seed = self.seed;
        p
    }

    /// A short stable fingerprint of the spec (regression file names).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [
            self.blocks as u64,
            self.block_len as u64,
            self.trips as u64,
            self.load_every as u64,
            self.store_every as u64,
            self.branch_every as u64,
            self.seed,
        ] {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Proptest strategy over [`GenSpec`] (the generation side; shrinking is
/// [`shrink_to_minimal`], since the in-tree shim has none).
pub fn gen_spec_strategy(seed_space: u64) -> impl Strategy<Value = GenSpec> {
    (
        1u8..=4,
        1u8..=8,
        1u32..=256,
        0u8..=4,
        0u8..=4,
        0u8..=2,
        0u64..seed_space.max(1),
    )
        .prop_map(
            |(blocks, block_len, trips, load_every, store_every, branch_every, seed)| GenSpec {
                blocks,
                block_len,
                trips,
                load_every,
                store_every,
                branch_every,
                seed,
            },
        )
}

/// Greedy shrink: starting from a failing `spec`, repeatedly tries the
/// simplifying moves (drop a block, halve the block length, halve the trip
/// count, drop branches, stores, then loads) and keeps any candidate for
/// which `still_fails` returns `true`, until no move makes progress.
/// Returns a locally-minimal failing spec (always itself failing; `spec`
/// must fail on entry).
pub fn shrink_to_minimal(spec: &GenSpec, still_fails: impl Fn(&GenSpec) -> bool) -> GenSpec {
    let mut best = *spec;
    loop {
        let mut candidates: Vec<GenSpec> = Vec::new();
        if best.blocks > 1 {
            candidates.push(GenSpec {
                blocks: best.blocks - 1,
                ..best
            });
        }
        if best.block_len > 1 {
            candidates.push(GenSpec {
                block_len: (best.block_len / 2).max(1),
                ..best
            });
            candidates.push(GenSpec {
                block_len: best.block_len - 1,
                ..best
            });
        }
        if best.trips > 1 {
            candidates.push(GenSpec {
                trips: (best.trips / 2).max(1),
                ..best
            });
        }
        if best.branch_every > 0 {
            candidates.push(GenSpec {
                branch_every: 0,
                ..best
            });
        }
        if best.store_every > 0 {
            candidates.push(GenSpec {
                store_every: 0,
                ..best
            });
        }
        if best.load_every > 0 {
            candidates.push(GenSpec {
                load_every: 0,
                ..best
            });
        }
        match candidates.into_iter().find(|c| still_fails(c)) {
            Some(c) => best = c,
            None => return best,
        }
    }
}

/// Persists a shrunk divergent spec as a `.s` regression case under `dir`
/// (created if missing): the spec and the divergence summary ride in header
/// comments, the generated source follows. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, disk full).
pub fn persist_regression(dir: &Path, spec: &GenSpec, summary: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("divergent-{:016x}.s", spec.fingerprint()));
    let mut body = String::new();
    let _ = writeln!(body, "# shrunk divergent program (shelfsim validate)");
    let _ = writeln!(body, "# spec: {spec:?}");
    for line in summary.lines() {
        let _ = writeln!(body, "# {line}");
    }
    body.push_str(&spec.to_source());
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_workload::TraceSource;

    #[test]
    fn every_lattice_corner_assembles_and_runs() {
        for &(blocks, block_len, trips, le, se, be) in &[
            (1u8, 1u8, 1u32, 0u8, 0u8, 0u8),
            (4, 8, 256, 1, 1, 1),
            (2, 3, 10, 2, 3, 2),
            (4, 1, 1, 4, 4, 1),
        ] {
            let spec = GenSpec {
                blocks,
                block_len,
                trips,
                load_every: le,
                store_every: se,
                branch_every: be,
                seed: 7,
            };
            let program = spec.build_program();
            let mut src = TraceSource::new(program, 0);
            for _ in 0..1_000 {
                let _ = src.fetch();
            }
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_assembles() {
        for seed in 0..50u64 {
            let a = GenSpec::from_seed(seed);
            assert_eq!(a, GenSpec::from_seed(seed));
            assert_eq!(a.seed, seed);
            let _ = a.build_program();
        }
        assert_ne!(GenSpec::from_seed(1), GenSpec::from_seed(2));
    }

    proptest! {
        #[test]
        fn generated_specs_always_assemble(spec in gen_spec_strategy(1 << 20)) {
            let p = spec.build_program();
            prop_assert!(p.validate().is_ok());
            prop_assert_eq!(p.seed, spec.seed);
        }
    }

    #[test]
    fn shrinker_reaches_a_local_minimum() {
        let start = GenSpec {
            blocks: 4,
            block_len: 8,
            trips: 256,
            load_every: 2,
            store_every: 3,
            branch_every: 1,
            seed: 42,
        };
        // Synthetic predicate: "fails" whenever the program still contains
        // a load. The minimum keeps loads and sheds everything else.
        let min = shrink_to_minimal(&start, |s| s.load_every > 0);
        assert!(min.load_every > 0);
        assert_eq!(
            (
                min.blocks,
                min.block_len,
                min.trips,
                min.store_every,
                min.branch_every
            ),
            (1, 1, 1, 0, 0)
        );
        // Predicate that always fails shrinks to the lattice origin.
        let origin = shrink_to_minimal(&start, |_| true);
        assert_eq!((origin.blocks, origin.block_len, origin.trips), (1, 1, 1));
        assert_eq!(origin.load_every, 0);
    }

    #[test]
    fn shrinker_result_always_satisfies_the_predicate() {
        let start = GenSpec {
            blocks: 3,
            block_len: 6,
            trips: 100,
            load_every: 1,
            store_every: 2,
            branch_every: 2,
            seed: 9,
        };
        // Non-monotone predicate: fails only while trips stays above 20.
        let min = shrink_to_minimal(&start, |s| s.trips > 20);
        assert!(min.trips > 20, "shrinker must never return a passing spec");
        assert!(min.trips <= start.trips);
    }

    #[test]
    fn regression_files_are_deterministic_and_self_describing() {
        let dir = std::env::temp_dir().join(format!("shelfsim-shrink-{}", std::process::id()));
        let spec = GenSpec {
            blocks: 1,
            block_len: 2,
            trips: 5,
            load_every: 1,
            store_every: 0,
            branch_every: 0,
            seed: 3,
        };
        let p1 = persist_regression(&dir, &spec, "field pc expected 0x1 got 0x2").unwrap();
        let p2 = persist_regression(&dir, &spec, "field pc expected 0x1 got 0x2").unwrap();
        assert_eq!(p1, p2, "same spec, same file");
        let body = std::fs::read_to_string(&p1).unwrap();
        assert!(body.contains("# spec: GenSpec"));
        assert!(body.contains("# field pc expected 0x1 got 0x2"));
        // The payload after the headers is exactly the spec's source.
        assert!(body.ends_with(&spec.to_source()));
        // And the persisted source still assembles.
        let src: String = body
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(assemble(&src).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
