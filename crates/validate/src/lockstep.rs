//! Lockstep differential execution.
//!
//! The device under test is the full OOO shelf core; the reference is the
//! trivially-correct in-order functional model the workload crate already
//! provides: a [`TraceSource`] walking the same [`Program`] with the same
//! seed emits, by construction, the exact architectural instruction stream
//! the core must retire. The harness ticks the core, drains its
//! commit-observer events, and compares each retired instruction — sequence
//! number, PC, operation, registers, memory address, branch outcome, and
//! the synthetic writeback / store values of [`crate::value`] — against the
//! reference stream in lockstep. The first mismatch is localized to
//! (thread, commit index, field, expected vs got) and decorated with a
//! lifecycle-trace window dump around the divergent instruction.

use crate::value::{ArchState, InstEffect};
use shelfsim_core::{CommitEvent, Core, CoreConfig};
use shelfsim_workload::program::Program;
use shelfsim_workload::TraceSource;

/// Occupancy-sampling period for the harness tracer (samples are retained
/// only so the divergence dump has context; any fixed period works).
const TRACE_SAMPLE_EVERY: u64 = 64;

/// FNV-1a offset basis / prime (the workspace's standard stable hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Tunables of one lockstep run.
#[derive(Clone, Copy, Debug)]
pub struct LockstepConfig {
    /// Per-thread commit target: the run validates this many architectural
    /// commits on every thread, then stops.
    pub commits_per_thread: u64,
    /// Cycle budget; expiring before the target is an invariant violation
    /// (`stuck`), not a silent pass.
    pub max_cycles: u64,
    /// Functional warm-up instructions per thread (trains predictors and
    /// caches; shifts the validated window but not the stream content).
    pub warmup_insts: u64,
    /// Lifecycle-trace retention window (instructions) for divergence dumps.
    pub trace_window: usize,
    /// Sequence-number radius of the divergence trace dump.
    pub trace_radius: u64,
    /// Whether the core may fast-forward provably idle spans
    /// ([`Core::set_cycle_skipping`]). Results are bit-identical either
    /// way; exposing the toggle lets the validation matrix prove exactly
    /// that.
    pub cycle_skipping: bool,
    /// Seeded semantic mutation to arm in the core (mutation testing of
    /// this very harness; requires building with `--features chaos`).
    #[cfg(feature = "chaos")]
    pub chaos: Option<shelfsim_core::ChaosPlan>,
}

impl Default for LockstepConfig {
    fn default() -> Self {
        LockstepConfig {
            commits_per_thread: 2_000,
            max_cycles: 400_000,
            warmup_insts: 1_000,
            trace_window: 512,
            trace_radius: 8,
            cycle_skipping: true,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// First-divergence localization: everything needed to reproduce and
/// inspect the mismatch.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Hardware thread of the divergent commit.
    pub thread: usize,
    /// Per-thread architectural commit index (0-based, post-warm-up).
    pub commit_index: u64,
    /// Core cycle at which the divergent instruction committed.
    pub cycle: u64,
    /// Which compared field mismatched first.
    pub field: &'static str,
    /// Reference-side rendering of the field.
    pub expected: String,
    /// Core-side rendering of the field.
    pub got: String,
    /// Reference-side sequence number.
    pub expected_seq: u64,
    /// Core-side sequence number.
    pub got_seq: u64,
    /// Lifecycle-trace JSONL window around the divergent sequence number.
    pub trace_window: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at thread {} commit {} (cycle {}): {} expected {} got {} (ref seq {}, core seq {})",
            self.thread,
            self.commit_index,
            self.cycle,
            self.field,
            self.expected,
            self.got,
            self.expected_seq,
            self.got_seq
        )
    }
}

/// A cross-cutting invariant violated by an otherwise non-divergent run.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// Stable kind tag (`stuck`, `commit-count`, `stall-attribution`,
    /// `event-conservation`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violation [{}]: {}", self.kind, self.detail)
    }
}

/// Summary of a clean (fully matching) lockstep run.
#[derive(Clone, Debug)]
pub struct CleanStats {
    /// Cycles ticked.
    pub cycles: u64,
    /// Architectural commits validated per thread (== the configured
    /// target).
    pub committed: Vec<u64>,
    /// Per-thread FNV-1a fingerprint over the validated commit stream
    /// (sequence numbers, PCs, operations, memory addresses, branch
    /// outcomes, and synthetic values) — the cross-design identity the
    /// sensitivity sweep asserts.
    pub fingerprints: Vec<u64>,
}

/// Outcome of one lockstep run.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Every validated commit matched the reference and all invariants
    /// held.
    Clean(CleanStats),
    /// The core's commit stream left the reference stream.
    Diverged(Box<Divergence>),
    /// The streams matched as far as they went, but an invariant failed.
    Invariant(InvariantViolation),
}

impl Verdict {
    /// Stable lowercase tag for reports and journals.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Clean(_) => "clean",
            Verdict::Diverged(_) => "diverged",
            Verdict::Invariant(_) => "invariant",
        }
    }

    /// True for [`Verdict::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, Verdict::Clean(_))
    }
}

/// One reference thread: the in-order functional model plus the two value
/// states (reference-applied and core-applied).
struct RefThread {
    src: TraceSource,
    expected_state: ArchState,
    got_state: ArchState,
    commit_index: u64,
    fingerprint: u64,
}

/// Renders a branch outcome for divergence messages.
fn render_branch(b: &Option<shelfsim_isa::BranchInfo>) -> String {
    match b {
        None => "none".to_owned(),
        Some(b) => format!("taken={} next_pc={:#x}", b.taken, b.next_pc),
    }
}

fn render_mem(m: &Option<shelfsim_isa::MemInfo>) -> String {
    match m {
        None => "none".to_owned(),
        Some(m) => format!("addr={:#x} size={}", m.addr, m.size),
    }
}

fn render_effect(e: &InstEffect) -> String {
    let dest = match e.dest_value {
        None => "none".to_owned(),
        Some(v) => format!("{v:#x}"),
    };
    match e.store {
        None => format!("dest={dest}"),
        Some((a, v)) => format!("dest={dest} store={a:#x}:{v:#x}"),
    }
}

/// Runs the core on `programs` (one per thread, cloned into both the core
/// and the reference) and validates `lcfg.commits_per_thread` architectural
/// commits per thread in lockstep against the in-order functional
/// reference.
///
/// # Panics
///
/// Panics if `programs.len() != cfg.threads` or the configuration is
/// invalid (same contract as [`Core::new`]).
pub fn run_lockstep(cfg: &CoreConfig, programs: &[Program], lcfg: &LockstepConfig) -> Verdict {
    assert_eq!(programs.len(), cfg.threads, "one program per thread");
    let threads = cfg.threads;

    let traces: Vec<TraceSource> = programs
        .iter()
        .enumerate()
        .map(|(t, p)| TraceSource::new(p.clone(), t))
        .collect();
    let mut core = Core::new(cfg.clone(), traces);
    core.set_cycle_skipping(lcfg.cycle_skipping);
    core.enable_commit_observer();
    core.enable_tracer(lcfg.trace_window, TRACE_SAMPLE_EVERY);
    core.warm_caches();
    core.warm_functional(lcfg.warmup_insts);
    #[cfg(feature = "chaos")]
    if let Some(plan) = lcfg.chaos {
        core.enable_chaos(plan);
    }

    // Build each thread's reference source and fast-forward it to the
    // core's post-warm-up fetch position: warm-up consumes fetches without
    // committing, so the observed stream starts exactly there.
    let mut refs: Vec<RefThread> = (0..threads)
        .map(|t| {
            let mut src = TraceSource::new(programs[t].clone(), t);
            let skip = core.next_fetch_seq(t);
            for _ in 0..skip {
                let _ = src.fetch();
            }
            RefThread {
                src,
                expected_state: ArchState::new(t),
                got_state: ArchState::new(t),
                commit_index: 0,
                fingerprint: FNV_OFFSET,
            }
        })
        .collect();

    // The core is driven in bounded blocks: `tick_bounded` may fast-forward
    // provably idle spans (bit-identical results, commit cycles included),
    // and the commit-observer queue is drained at block boundaries. Blocks
    // are short enough that a reached commit target stops the run promptly.
    const BLOCK: u64 = 256;
    let mut events: Vec<CommitEvent> = Vec::new();
    let mut cycles = 0u64;
    while cycles < lcfg.max_cycles
        && refs
            .iter()
            .any(|r| r.commit_index < lcfg.commits_per_thread)
    {
        cycles += core.tick_bounded(BLOCK.min(lcfg.max_cycles - cycles));
        core.drain_commit_events(&mut events);
        for ev in events.drain(..) {
            if ev.thread >= threads {
                return Verdict::Invariant(InvariantViolation {
                    kind: "event-conservation",
                    detail: format!("commit event for out-of-range thread {}", ev.thread),
                });
            }
            let r = &mut refs[ev.thread];
            if r.commit_index >= lcfg.commits_per_thread {
                continue; // past the validated window
            }
            let (exp_seq, exp_inst) = r.src.fetch();
            let exp_effect = r.expected_state.apply(&exp_inst);
            let got_effect = r.got_state.apply(&ev.inst);

            let mismatch: Option<(&'static str, String, String)> = if exp_seq != ev.seq {
                Some(("seq", exp_seq.to_string(), ev.seq.to_string()))
            } else if exp_inst.pc != ev.inst.pc {
                Some((
                    "pc",
                    format!("{:#x}", exp_inst.pc),
                    format!("{:#x}", ev.inst.pc),
                ))
            } else if exp_inst.op != ev.inst.op {
                Some((
                    "op",
                    format!("{:?}", exp_inst.op),
                    format!("{:?}", ev.inst.op),
                ))
            } else if exp_inst.dest != ev.inst.dest || exp_inst.srcs != ev.inst.srcs {
                Some((
                    "registers",
                    format!("dest={:?} srcs={:?}", exp_inst.dest, exp_inst.srcs),
                    format!("dest={:?} srcs={:?}", ev.inst.dest, ev.inst.srcs),
                ))
            } else if exp_inst.mem != ev.inst.mem {
                Some(("mem", render_mem(&exp_inst.mem), render_mem(&ev.inst.mem)))
            } else if exp_inst.branch != ev.inst.branch {
                Some((
                    "branch",
                    render_branch(&exp_inst.branch),
                    render_branch(&ev.inst.branch),
                ))
            } else if exp_effect != got_effect {
                Some((
                    "value",
                    render_effect(&exp_effect),
                    render_effect(&got_effect),
                ))
            } else {
                None
            };

            if let Some((field, expected, got)) = mismatch {
                let commit_index = r.commit_index;
                let trace_window = core
                    .tracer()
                    .map(|tr| tr.export_window_jsonl(ev.thread as u8, ev.seq, lcfg.trace_radius))
                    .unwrap_or_default();
                return Verdict::Diverged(Box::new(Divergence {
                    thread: ev.thread,
                    commit_index,
                    cycle: ev.cycle,
                    field,
                    expected,
                    got,
                    expected_seq: exp_seq,
                    got_seq: ev.seq,
                    trace_window,
                }));
            }

            // Matched: fold the commit into the thread fingerprint.
            let mut h = r.fingerprint;
            h = fnv1a(h, ev.seq);
            h = fnv1a(h, ev.inst.pc);
            h = fnv1a(h, ev.inst.op as u64);
            if let Some(m) = ev.inst.mem {
                h = fnv1a(h, m.addr);
                h = fnv1a(h, m.size as u64);
            }
            if let Some(b) = ev.inst.branch {
                h = fnv1a(h, b.taken as u64);
                h = fnv1a(h, b.next_pc);
            }
            if let Some(v) = got_effect.dest_value {
                h = fnv1a(h, v);
            }
            if let Some((a, v)) = got_effect.store {
                h = fnv1a(h, a);
                h = fnv1a(h, v);
            }
            r.fingerprint = h;
            r.commit_index += 1;
        }
    }

    if let Some((t, r)) = refs
        .iter()
        .enumerate()
        .find(|(_, r)| r.commit_index < lcfg.commits_per_thread)
    {
        return Verdict::Invariant(InvariantViolation {
            kind: "stuck",
            detail: format!(
                "thread {t} committed only {} of {} target instructions in {} cycles",
                r.commit_index, lcfg.commits_per_thread, cycles
            ),
        });
    }

    // End-of-run invariants.
    // 1. Event conservation: every architectural commit the counters saw
    //    was observed (no event lost, none invented).
    let counted = core.counters.committed;
    let observed: u64 = (0..threads).map(|t| core.committed(t)).sum();
    if counted != observed {
        return Verdict::Invariant(InvariantViolation {
            kind: "event-conservation",
            detail: format!(
                "counters.committed = {counted} but per-thread commits sum to {observed}"
            ),
        });
    }
    // 2. Per-thread commit counters agree with the drained event stream
    //    (the validated prefix plus any overshoot still queued or skipped).
    for (t, r) in refs.iter().enumerate() {
        if core.committed(t) < r.commit_index {
            return Verdict::Invariant(InvariantViolation {
                kind: "commit-count",
                detail: format!(
                    "thread {t}: core reports {} commits but {} events were validated",
                    core.committed(t),
                    r.commit_index
                ),
            });
        }
    }
    // 3. Stall attribution still sums to cycles on both pipeline sides
    //    (PR 4's per-cycle accounting, asserted per run here).
    if let Some(tr) = core.tracer() {
        for t in 0..threads {
            for (side, row) in [
                ("dispatch", tr.dispatch_stalls(t)),
                ("issue", tr.issue_stalls(t)),
            ] {
                let sum: u64 = row.iter().sum();
                if sum != cycles {
                    return Verdict::Invariant(InvariantViolation {
                        kind: "stall-attribution",
                        detail: format!(
                            "thread {t} {side} stall causes sum to {sum}, expected {cycles} cycles"
                        ),
                    });
                }
            }
        }
    }

    Verdict::Clean(CleanStats {
        cycles,
        committed: refs.iter().map(|r| r.commit_index).collect(),
        fingerprints: refs.iter().map(|r| r.fingerprint).collect(),
    })
}
