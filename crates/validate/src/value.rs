//! The synthetic deterministic value model.
//!
//! The simulator is timing-only: a [`DynInst`] carries exact PCs, memory
//! addresses, and branch outcomes, but no data values. To give the
//! differential harness the "destination register writeback value" and
//! "store value" comparisons a value-carrying simulator would have, both
//! sides of the comparison apply the *same* deterministic value function to
//! their instruction stream: every register starts at a seeded hash, every
//! result is a hash of the instruction's PC, operation, and source values,
//! and loads fold in the memory image at the accessed address.
//!
//! Because the function is injective-in-practice over its inputs, two
//! streams that diverge anywhere — a different PC, a skipped instruction, a
//! corrupted store address — produce different architectural values from
//! that point on, so value comparison subsumes stream comparison and gives
//! the harness the error-amplification property real differential testing
//! relies on.

use shelfsim_isa::{ArchReg, DynInst, NUM_ARCH_REGS};
use std::collections::BTreeMap;

/// Seed folded into every initial register and memory value.
pub const VALUE_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

/// The splitmix64 finalizer: a cheap, well-mixed `u64 -> u64` hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What one applied instruction did to the architectural state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstEffect {
    /// Value written to the destination register, if any.
    pub dest_value: Option<u64>,
    /// `(address, value)` written to memory, for stores.
    pub store: Option<(u64, u64)>,
}

/// One thread's synthetic architectural state: a register file seeded per
/// thread and a sparse memory image whose untouched cells read as a hash of
/// their address.
#[derive(Clone, Debug)]
pub struct ArchState {
    regs: Vec<u64>,
    mem: BTreeMap<u64, u64>,
}

impl ArchState {
    /// Fresh state for hardware thread `thread`: register `i` holds
    /// `mix64(VALUE_SEED ^ thread<<32 ^ i)`.
    pub fn new(thread: usize) -> Self {
        ArchState {
            regs: (0..NUM_ARCH_REGS as u64)
                .map(|i| mix64(VALUE_SEED ^ ((thread as u64) << 32) ^ i))
                .collect(),
            mem: BTreeMap::new(),
        }
    }

    /// The current value of `reg`.
    pub fn reg(&self, reg: ArchReg) -> u64 {
        self.regs[reg.index()]
    }

    /// The memory image at `addr` (untouched cells read as
    /// `mix64(VALUE_SEED ^ addr)`).
    pub fn load(&self, addr: u64) -> u64 {
        self.mem
            .get(&addr)
            .copied()
            .unwrap_or_else(|| mix64(VALUE_SEED ^ addr))
    }

    /// Applies `inst` to the state and returns its architectural effect.
    ///
    /// The result value is a hash of (PC, operation, source values); loads
    /// additionally fold in the memory image at their address; stores write
    /// the result to memory. Branches and stores produce no register write
    /// unless the instruction names a destination.
    pub fn apply(&mut self, inst: &DynInst) -> InstEffect {
        let s0 = inst.srcs[0].map_or(0, |r| self.reg(r));
        let s1 = inst.srcs[1].map_or(0, |r| self.reg(r));
        let mut value =
            mix64(inst.pc ^ mix64(inst.op as u64 + 1) ^ s0.rotate_left(1) ^ s1.rotate_left(2));
        let mut store = None;
        if let Some(m) = inst.mem {
            if inst.is_load() {
                value = mix64(value ^ self.load(m.addr));
            } else {
                // Stores write the hashed (address-independent) source mix,
                // so a corrupted store *address* changes which cell a later
                // load observes and a corrupted *value* changes what it
                // reads — both diverge.
                self.mem.insert(m.addr, value);
                store = Some((m.addr, value));
            }
        }
        let dest_value = inst.dest.map(|d| {
            self.regs[d.index()] = value;
            value
        });
        InstEffect { dest_value, store }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_isa::{MemInfo, OpClass};

    fn alu(pc: u64, dest: u8, src: u8) -> DynInst {
        DynInst::alu(OpClass::IntAlu, ArchReg::int(dest), &[ArchReg::int(src)]).at(pc)
    }

    #[test]
    fn identical_streams_produce_identical_values() {
        let mut a = ArchState::new(0);
        let mut b = ArchState::new(0);
        for i in 0..100u64 {
            let inst = alu(0x1000 + 4 * i, (i % 8) as u8 + 8, (i % 7) as u8);
            assert_eq!(a.apply(&inst), b.apply(&inst));
        }
    }

    #[test]
    fn threads_start_with_distinct_register_files() {
        let a = ArchState::new(0);
        let b = ArchState::new(1);
        assert_ne!(a.reg(ArchReg::int(0)), b.reg(ArchReg::int(0)));
    }

    #[test]
    fn loads_observe_prior_stores() {
        let mut st = ArchState::new(0);
        let store =
            DynInst::store(ArchReg::int(8), ArchReg::int(0), MemInfo::new(0x100, 8)).at(0x2000);
        let eff = st.apply(&store);
        let (addr, val) = eff.store.expect("store effect");
        assert_eq!(addr, 0x100);
        assert_eq!(st.load(0x100), val);
        // A load from the same address folds that value in deterministically.
        let load =
            DynInst::load(ArchReg::int(9), ArchReg::int(0), MemInfo::new(0x100, 8)).at(0x2004);
        let e1 = st.clone().apply(&load);
        let e2 = st.apply(&load);
        assert_eq!(e1, e2);
    }

    #[test]
    fn a_corrupted_store_address_diverges_later_loads() {
        let mk = |addr| {
            let mut st = ArchState::new(0);
            st.apply(
                &DynInst::store(ArchReg::int(8), ArchReg::int(0), MemInfo::new(addr, 8)).at(0x2000),
            );
            st.apply(
                &DynInst::load(ArchReg::int(9), ArchReg::int(0), MemInfo::new(0x100, 8)).at(0x2004),
            )
        };
        assert_ne!(mk(0x100), mk(0x140), "addr^0x40 must change the load");
    }
}
