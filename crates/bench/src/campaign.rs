//! Campaign-throughput measurement: the `shelfsim bench --campaign`
//! worker-scaling bench behind `BENCH_campaign.json`.
//!
//! Runs a fixed, seeded reduced sweep matrix (4 designs × {2,4}-thread
//! mixes plus the implied single-thread STP references — ≥200 runs) under
//! the work-stealing campaign pool at several worker counts and reports
//! runs per wall second at each, the speedup over one worker, and the
//! scaling efficiency against the *ideal* speedup for this host:
//! `min(workers, host_cores)`. On a single-core host the ideal speedup is
//! 1.0 at every worker count — more workers only add scheduling overhead —
//! so `host_cores` is recorded in the document and efficiency is measured
//! against what the hardware can actually deliver, not against a
//! fictional N-core ideal.
//!
//! A final cached-replay row re-runs the whole matrix against the journal
//! shards the last sweep wrote: every run must dedupe by config hash
//! (100% hits, zero re-simulated cycles), and its wall time is the cost of
//! merge + admission alone.
//!
//! Determinism note: architectural results are bit-identical for a given
//! plan; only the wall-clock fields vary between hosts and runs.

use shelfsim::{CampaignSpec, ResultCache, ShardedJournal, SweepSpec};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Default measured cycles per run for the campaign bench: short enough
/// that a 200+-run matrix finishes in seconds, long enough that a run is
/// real work rather than pure pool overhead.
pub const DEFAULT_MEASURE: u64 = 3_000;

/// The standard campaign-throughput matrix: 4 designs × (14 two-thread
/// mixes + 14 four-thread mixes + the single-thread STP references those
/// mixes imply) — 220 runs at the default seed.
pub fn campaign_matrix(measure: u64, seed: u64) -> SweepSpec {
    SweepSpec {
        designs: ["base64", "shelf-cons", "shelf-opt", "base128"]
            .map(str::to_owned)
            .to_vec(),
        thread_counts: vec![2, 4],
        mixes_per_count: 14,
        seed,
        warmup: 500,
        measure,
    }
}

/// One worker-count row of the scaling table.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Worker threads in the steal pool.
    pub workers: usize,
    /// Wall-clock seconds for the whole matrix.
    pub wall_s: f64,
    /// Completed runs per wall second.
    pub runs_per_sec: f64,
    /// Wall-clock speedup over the one-worker row.
    pub speedup: f64,
    /// Ideal speedup on this host: `min(workers, host_cores)`.
    pub ideal: f64,
    /// `speedup / ideal`.
    pub efficiency: f64,
}

/// The cached-replay row: the same matrix re-admitted against the journal
/// shards the last sweep wrote.
#[derive(Clone, Debug)]
pub struct CachedReplay {
    /// Wall-clock seconds for merge + admission (no simulation).
    pub wall_s: f64,
    /// Cache-hit fraction (must be 1.0).
    pub hit_rate: f64,
    /// Runs restored from the shards.
    pub resumed: usize,
}

/// A completed campaign bench.
#[derive(Clone, Debug)]
pub struct CampaignBenchReport {
    /// Matrix size (completed runs per row).
    pub runs: usize,
    /// Measured cycles per run.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// `std::thread::available_parallelism` on the measuring host.
    pub host_cores: usize,
    /// Scaling rows, ascending worker count (first row is one worker).
    pub rows: Vec<ScalingRow>,
    /// The cached-replay row.
    pub cached: CachedReplay,
}

impl CampaignBenchReport {
    /// Scaling efficiency of the highest worker count vs one worker —
    /// the headline number the acceptance gate reads.
    pub fn scaling_efficiency(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| r.efficiency)
    }

    /// The `BENCH_campaign.json` document
    /// (schema `shelfsim-campaign-bench-v1`).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        r#"    {{"workers":{},"wall_s":{:.4},"runs_per_sec":{:.1},"#,
                        r#""speedup":{:.4},"ideal":{:.1},"efficiency":{:.4}}}"#
                    ),
                    r.workers, r.wall_s, r.runs_per_sec, r.speedup, r.ideal, r.efficiency
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"shelfsim-campaign-bench-v1\",\n",
                "  \"runs\": {},\n",
                "  \"seed\": {},\n",
                "  \"measure\": {},\n",
                "  \"host_cores\": {},\n",
                "  \"scaling\": [\n{}\n  ],\n",
                "  \"scaling_efficiency\": {:.4},\n",
                "  \"cached_replay\": {{\"wall_s\":{:.4},\"hit_rate\":{:.4},",
                "\"resumed\":{}}}\n",
                "}}\n"
            ),
            self.runs,
            self.seed,
            self.measure,
            self.host_cores,
            rows.join(",\n"),
            self.scaling_efficiency(),
            self.cached.wall_s,
            self.cached.hit_rate,
            self.cached.resumed,
        )
    }

    /// Human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "campaign bench ({} runs, seed {}, measure {} cycles, {} host core(s))",
            self.runs, self.seed, self.measure, self.host_cores
        )
        .expect("write");
        writeln!(
            out,
            "  {:>7}  {:>8}  {:>8}  {:>7}  {:>5}  {:>10}",
            "workers", "wall_s", "runs/s", "speedup", "ideal", "efficiency"
        )
        .expect("write");
        for r in &self.rows {
            writeln!(
                out,
                "  {:>7}  {:>8.3}  {:>8.1}  {:>7.3}  {:>5.1}  {:>10.3}",
                r.workers, r.wall_s, r.runs_per_sec, r.speedup, r.ideal, r.efficiency
            )
            .expect("write");
        }
        writeln!(
            out,
            "cached replay: {} runs resumed in {:.3}s ({:.0}% hits, 0 cycles simulated)",
            self.cached.resumed,
            self.cached.wall_s,
            self.cached.hit_rate * 100.0
        )
        .expect("write");
        out
    }
}

/// Runs the campaign bench: the matrix once per worker count (each into a
/// fresh journal-shard directory so no row benefits from another's cache),
/// then the cached replay against the last row's shards.
///
/// # Errors
///
/// Returns a message on journal I/O failure or if any row fails to
/// complete the full matrix.
pub fn run_campaign_bench(
    measure: u64,
    seed: u64,
    worker_counts: &[usize],
) -> Result<CampaignBenchReport, String> {
    run_bench_on(&campaign_matrix(measure, seed), worker_counts)
}

/// The bench body over an arbitrary sweep (the tests run a reduced one).
fn run_bench_on(sweep: &SweepSpec, worker_counts: &[usize]) -> Result<CampaignBenchReport, String> {
    let runs = sweep.expand();
    let (measure, seed) = (sweep.measure, sweep.seed);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let root = std::env::temp_dir().join(format!("shelfsim_campaign_bench_{seed}"));
    let _ = std::fs::remove_dir_all(&root);

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut last_dir: Option<PathBuf> = None;
    for &w in worker_counts {
        let dir = root.join(format!("w{w}"));
        let spec = CampaignSpec::new(runs.clone())
            .with_workers(w)
            .with_journal_dir(&dir);
        let start = Instant::now();
        let report = shelfsim::run_campaign(&spec).map_err(|e| format!("journal: {e}"))?;
        let wall_s = start.elapsed().as_secs_f64();
        if report.completed() != runs.len() {
            return Err(format!(
                "campaign bench row ({w} workers): {}/{} runs completed",
                report.completed(),
                runs.len()
            ));
        }
        let base_wall = rows.first().map_or(wall_s, |r: &ScalingRow| r.wall_s);
        let speedup = base_wall / wall_s;
        let ideal = w.min(host_cores) as f64;
        rows.push(ScalingRow {
            workers: w,
            wall_s,
            runs_per_sec: runs.len() as f64 / wall_s,
            speedup,
            ideal,
            efficiency: speedup / ideal,
        });
        last_dir = Some(dir);
    }

    // Cached replay: same matrix, same shards — everything must dedupe.
    let dir =
        last_dir.ok_or_else(|| "campaign bench needs at least one worker count".to_owned())?;
    let start = Instant::now();
    let cache = ResultCache::load(Some(&ShardedJournal::new(&dir)), None)
        .map_err(|e| format!("journal: {e}"))?;
    let admission = cache.admit(&runs);
    let replay = shelfsim::run_campaign(
        &CampaignSpec::new(runs.clone())
            .with_workers(worker_counts[worker_counts.len() - 1])
            .with_journal_dir(&dir),
    )
    .map_err(|e| format!("journal: {e}"))?;
    let wall_s = start.elapsed().as_secs_f64();
    if replay.resumed != runs.len() || !admission.misses.is_empty() {
        return Err(format!(
            "cached replay re-simulated {} of {} runs",
            runs.len() - replay.resumed,
            runs.len()
        ));
    }
    let _ = std::fs::remove_dir_all(&root);

    Ok(CampaignBenchReport {
        runs: runs.len(),
        measure,
        seed,
        host_cores,
        rows,
        cached: CachedReplay {
            wall_s,
            hit_rate: admission.hit_rate(),
            resumed: replay.resumed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_meets_the_acceptance_floor() {
        let sweep = campaign_matrix(DEFAULT_MEASURE, 7);
        let runs = sweep.expand();
        assert!(runs.len() >= 200, "matrix has only {} runs", runs.len());
        // Every design carries single-thread STP references.
        for d in &sweep.designs {
            assert!(runs.iter().any(|r| &r.design == d && r.mix.len() == 1));
        }
    }

    #[test]
    fn tiny_bench_scales_and_replays_from_cache() {
        // A reduced matrix keeps the test fast; the committed
        // BENCH_campaign.json is generated at full scale through the same
        // `run_bench_on` body.
        let sweep = SweepSpec {
            designs: vec!["base64".to_owned()],
            thread_counts: vec![2],
            mixes_per_count: 2,
            seed: 13,
            warmup: 100,
            measure: 600,
        };
        let mut report = run_bench_on(&sweep, &[1, 2]).expect("tiny bench");
        assert_eq!(report.runs, sweep.matrix_size());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[0].wall_s > 0.0);
        assert!(
            (report.rows[0].speedup - 1.0).abs() < 1e-12,
            "row 0 is the baseline"
        );
        assert!((report.cached.hit_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.cached.resumed, report.runs);

        let json = report.to_json();
        assert!(json.contains("\"schema\": \"shelfsim-campaign-bench-v1\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"cached_replay\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        report.rows.last_mut().expect("rows").efficiency = 0.93;
        assert!((report.scaling_efficiency() - 0.93).abs() < 1e-12);
        let text = report.render_text();
        assert!(text.contains("cached replay"), "{text}");
    }
}
