//! Engine-throughput measurement: the `shelfsim bench` matrix.
//!
//! Runs a fixed, seeded matrix of workload profiles × designs × thread
//! counts and reports, per run, the simulator's own throughput — wall
//! seconds, simulated cycles per wall second, and committed instructions
//! per wall second (kIPS) — the first-class metric Sniper and the gem5
//! methodology report for simulators. The emitted `BENCH_core.json` is the
//! repo's perf trajectory: each PR compares its numbers against the
//! committed baseline (see `scripts/bench.sh` and EXPERIMENTS.md).
//!
//! Determinism note: architectural results (cycles, committed, IPC) are
//! bit-identical for a given plan; only the wall-clock fields vary between
//! hosts and runs.

use shelfsim::analyze::design_by_name;
use shelfsim::Simulation;
use std::fmt::Write as _;
use std::time::Instant;

/// One cell of the bench matrix: a design point run on a workload mix.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Design-point name (resolved via [`design_by_name`]).
    pub design: &'static str,
    /// Benchmark names; the mix length is the thread count.
    pub mix: &'static [&'static str],
}

/// A named, fully seeded bench matrix.
#[derive(Clone, Debug)]
pub struct BenchPlan {
    /// Plan name, recorded in the JSON (`engine_micro` is the standard).
    pub config: &'static str,
    /// Warm-up cycles per run (not timed into the simulated-cycle count,
    /// but part of the wall clock — identical across compared binaries).
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// The matrix cells.
    pub entries: Vec<BenchEntry>,
}

/// The standard engine-throughput matrix: three design points (baseline
/// OOO, the shelf design, the big-core comparison) × two workload mixes
/// (4-thread memory+compute and 2-thread), one seed.
pub fn engine_micro(measure: u64, seed: u64) -> BenchPlan {
    const MIX4: &[&str] = &["gcc", "mcf", "hmmer", "lbm"];
    const MIX2: &[&str] = &["gcc", "mcf"];
    let mut entries = Vec::new();
    for design in ["base64", "shelf-opt", "base128"] {
        for mix in [MIX4, MIX2] {
            entries.push(BenchEntry { design, mix });
        }
    }
    BenchPlan {
        config: "engine_micro",
        warmup: 2_000,
        measure,
        seed,
        entries,
    }
}

/// Default measured cycles for `shelfsim bench` (a few seconds of wall
/// clock across the matrix).
pub const DEFAULT_MEASURE: u64 = 300_000;

/// Measured result of one matrix cell.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Design-point name.
    pub design: String,
    /// Comma-joined benchmark names.
    pub mix: String,
    /// Thread count (mix length).
    pub threads: usize,
    /// Wall-clock seconds for the whole run (warm-up + measurement).
    pub wall_s: f64,
    /// Simulated cycles measured.
    pub cycles: u64,
    /// Instructions committed during measurement.
    pub committed: u64,
    /// Simulated cycles per wall second.
    pub sim_cycles_per_sec: f64,
    /// Committed instructions per wall second, in thousands (kIPS).
    pub kips: f64,
    /// Architectural IPC (for the golden cross-check, not a perf metric).
    pub ipc: f64,
}

/// A completed bench: the plan's parameters plus per-run and aggregate
/// throughput.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Plan name.
    pub config: String,
    /// Warm-up cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// Per-cell results, plan order.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// Total wall seconds across the matrix.
    pub fn total_wall_s(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_s).sum()
    }

    /// Total committed instructions across the matrix.
    pub fn total_committed(&self) -> u64 {
        self.runs.iter().map(|r| r.committed).sum()
    }

    /// Aggregate committed instructions per wall second (thousands): the
    /// headline number compared against the committed baseline.
    pub fn aggregate_kips(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall <= 0.0 {
            return 0.0;
        }
        self.total_committed() as f64 / wall / 1e3
    }

    /// Aggregate simulated cycles per wall second.
    pub fn aggregate_cycles_per_sec(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall <= 0.0 {
            return 0.0;
        }
        self.runs.iter().map(|r| r.cycles).sum::<u64>() as f64 / wall
    }

    /// The `BENCH_core.json` document (schema `shelfsim-bench-v1`).
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        r#"    {{"design":"{}","mix":"{}","threads":{},"#,
                        r#""wall_s":{:.4},"cycles":{},"committed":{},"#,
                        r#""sim_cycles_per_sec":{:.0},"kips":{:.1},"ipc":{:.4}}}"#
                    ),
                    r.design,
                    r.mix,
                    r.threads,
                    r.wall_s,
                    r.cycles,
                    r.committed,
                    r.sim_cycles_per_sec,
                    r.kips,
                    r.ipc
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"shelfsim-bench-v1\",\n",
                "  \"config\": \"{}\",\n",
                "  \"seed\": {},\n",
                "  \"warmup\": {},\n",
                "  \"measure\": {},\n",
                "  \"runs\": [\n{}\n  ],\n",
                "  \"aggregate\": {{\"wall_s\":{:.4},\"committed\":{},",
                "\"kips\":{:.1},\"sim_cycles_per_sec\":{:.0}}}\n",
                "}}\n"
            ),
            self.config,
            self.seed,
            self.warmup,
            self.measure,
            runs.join(",\n"),
            self.total_wall_s(),
            self.total_committed(),
            self.aggregate_kips(),
            self.aggregate_cycles_per_sec(),
        )
    }

    /// Human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "bench {} (seed {}, warmup {}, measure {} cycles per run)",
            self.config, self.seed, self.warmup, self.measure
        )
        .expect("write");
        writeln!(
            out,
            "  {:<10} {:<22} {:>3}  {:>8}  {:>10}  {:>9}  {:>6}",
            "design", "mix", "thr", "wall_s", "cycles/s", "kIPS", "IPC"
        )
        .expect("write");
        for r in &self.runs {
            writeln!(
                out,
                "  {:<10} {:<22} {:>3}  {:>8.3}  {:>10.0}  {:>9.1}  {:>6.3}",
                r.design, r.mix, r.threads, r.wall_s, r.sim_cycles_per_sec, r.kips, r.ipc
            )
            .expect("write");
        }
        writeln!(
            out,
            "aggregate: {:.1} kIPS, {:.0} sim cycles/s over {:.2}s wall",
            self.aggregate_kips(),
            self.aggregate_cycles_per_sec(),
            self.total_wall_s()
        )
        .expect("write");
        out
    }
}

/// Runs every cell of `plan` and collects throughput.
///
/// # Errors
///
/// Returns a message if a design name or benchmark name does not resolve.
pub fn run_plan(plan: &BenchPlan) -> Result<BenchReport, String> {
    let mut runs = Vec::with_capacity(plan.entries.len());
    for e in &plan.entries {
        let cfg = design_by_name(e.design, e.mix.len())
            .ok_or_else(|| format!("unknown design `{}`", e.design))?;
        let mut sim =
            Simulation::from_names(cfg, e.mix, plan.seed).map_err(|err| err.to_string())?;
        let start = Instant::now();
        let r = sim.run(plan.warmup, plan.measure);
        let wall_s = start.elapsed().as_secs_f64();
        let committed: u64 = r.threads.iter().map(|t| t.committed).sum();
        runs.push(BenchRun {
            design: e.design.to_owned(),
            mix: e.mix.join(","),
            threads: e.mix.len(),
            wall_s,
            cycles: r.cycles,
            committed,
            sim_cycles_per_sec: r.cycles as f64 / wall_s,
            kips: committed as f64 / wall_s / 1e3,
            ipc: r.ipc(),
        });
    }
    Ok(BenchReport {
        config: plan.config.to_owned(),
        warmup: plan.warmup,
        measure: plan.measure,
        seed: plan.seed,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_plan_reports_positive_throughput() {
        let mut plan = engine_micro(2_000, 7);
        plan.warmup = 500;
        plan.entries.truncate(2);
        let rep = run_plan(&plan).expect("plan runs");
        assert_eq!(rep.runs.len(), 2);
        for r in &rep.runs {
            assert_eq!(r.cycles, 2_000);
            assert!(r.committed > 0, "{} committed nothing", r.design);
            assert!(r.kips > 0.0);
            assert!(r.sim_cycles_per_sec > 0.0);
        }
        assert!(rep.aggregate_kips() > 0.0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let mut plan = engine_micro(1_000, 7);
        plan.warmup = 200;
        plan.entries.truncate(1);
        let rep = run_plan(&plan).expect("plan runs");
        let json = rep.to_json();
        assert!(json.contains(r#""schema": "shelfsim-bench-v1""#));
        assert!(json.contains(r#""config": "engine_micro""#));
        assert!(json.contains(r#""kips":"#));
        // Balanced braces/brackets (hand-rolled writer, no serde in-tree).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn unknown_design_is_an_error() {
        let plan = BenchPlan {
            config: "bad",
            warmup: 10,
            measure: 10,
            seed: 1,
            entries: vec![BenchEntry {
                design: "no-such-design",
                mix: &["gcc"],
            }],
        };
        assert!(run_plan(&plan).is_err());
    }
}
