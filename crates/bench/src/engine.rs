//! Engine-throughput measurement: the `shelfsim bench` matrix.
//!
//! Runs a fixed, seeded matrix of workload profiles × designs × thread
//! counts and reports, per run, the simulator's own throughput — wall
//! seconds, simulated cycles per wall second, and committed instructions
//! per wall second (kIPS) — the first-class metric Sniper and the gem5
//! methodology report for simulators. The emitted `BENCH_core.json` is the
//! repo's perf trajectory: each PR compares its numbers against the
//! committed baseline (see `scripts/bench.sh` and EXPERIMENTS.md).
//!
//! Determinism note: architectural results (cycles, committed, IPC) are
//! bit-identical for a given plan; only the wall-clock fields vary between
//! hosts and runs.

use shelfsim::analyze::design_by_name;
use shelfsim::Simulation;
use std::fmt::Write as _;
use std::time::Instant;

/// One cell of the bench matrix: a design point run on a workload mix.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Design-point name (resolved via [`design_by_name`]).
    pub design: &'static str,
    /// Benchmark names; the mix length is the thread count.
    pub mix: &'static [&'static str],
}

/// A named, fully seeded bench matrix.
#[derive(Clone, Debug)]
pub struct BenchPlan {
    /// Plan name, recorded in the JSON (`engine_micro` is the standard).
    pub config: &'static str,
    /// Warm-up cycles per run (not timed into the simulated-cycle count,
    /// but part of the wall clock — identical across compared binaries).
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// The matrix cells.
    pub entries: Vec<BenchEntry>,
}

/// The standard engine-throughput matrix: three design points (baseline
/// OOO, the shelf design, the big-core comparison) × two workload mixes
/// (4-thread memory+compute and 2-thread), one seed.
pub fn engine_micro(measure: u64, seed: u64) -> BenchPlan {
    const MIX4: &[&str] = &["gcc", "mcf", "hmmer", "lbm"];
    const MIX2: &[&str] = &["gcc", "mcf"];
    let mut entries = Vec::new();
    for design in ["base64", "shelf-opt", "base128"] {
        for mix in [MIX4, MIX2] {
            entries.push(BenchEntry { design, mix });
        }
    }
    BenchPlan {
        config: "engine_micro",
        warmup: 2_000,
        measure,
        seed,
        entries,
    }
}

/// Default measured cycles for `shelfsim bench` (a few seconds of wall
/// clock across the matrix).
pub const DEFAULT_MEASURE: u64 = 300_000;

/// Measured result of one matrix cell.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Design-point name.
    pub design: String,
    /// Comma-joined benchmark names.
    pub mix: String,
    /// Thread count (mix length).
    pub threads: usize,
    /// Wall-clock seconds for the whole run (warm-up + measurement).
    pub wall_s: f64,
    /// Simulated cycles measured.
    pub cycles: u64,
    /// Instructions committed during measurement.
    pub committed: u64,
    /// Simulated cycles per wall second.
    pub sim_cycles_per_sec: f64,
    /// Committed instructions per wall second, in thousands (kIPS).
    pub kips: f64,
    /// Architectural IPC (for the golden cross-check, not a perf metric).
    pub ipc: f64,
}

/// A completed bench: the plan's parameters plus per-run and aggregate
/// throughput.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Plan name.
    pub config: String,
    /// Warm-up cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
    /// Workload seed.
    pub seed: u64,
    /// Per-cell results, plan order.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// Total wall seconds across the matrix.
    pub fn total_wall_s(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_s).sum()
    }

    /// Total committed instructions across the matrix.
    pub fn total_committed(&self) -> u64 {
        self.runs.iter().map(|r| r.committed).sum()
    }

    /// Aggregate committed instructions per wall second (thousands): the
    /// headline number compared against the committed baseline.
    pub fn aggregate_kips(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall <= 0.0 {
            return 0.0;
        }
        self.total_committed() as f64 / wall / 1e3
    }

    /// Aggregate simulated cycles per wall second.
    pub fn aggregate_cycles_per_sec(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall <= 0.0 {
            return 0.0;
        }
        self.runs.iter().map(|r| r.cycles).sum::<u64>() as f64 / wall
    }

    /// The `BENCH_core.json` document (schema `shelfsim-bench-v1`).
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        r#"    {{"design":"{}","mix":"{}","threads":{},"#,
                        r#""wall_s":{:.4},"cycles":{},"committed":{},"#,
                        r#""sim_cycles_per_sec":{:.0},"kips":{:.1},"ipc":{:.4}}}"#
                    ),
                    r.design,
                    r.mix,
                    r.threads,
                    r.wall_s,
                    r.cycles,
                    r.committed,
                    r.sim_cycles_per_sec,
                    r.kips,
                    r.ipc
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"shelfsim-bench-v1\",\n",
                "  \"config\": \"{}\",\n",
                "  \"seed\": {},\n",
                "  \"warmup\": {},\n",
                "  \"measure\": {},\n",
                "  \"runs\": [\n{}\n  ],\n",
                "  \"aggregate\": {{\"wall_s\":{:.4},\"committed\":{},",
                "\"kips\":{:.1},\"sim_cycles_per_sec\":{:.0}}}\n",
                "}}\n"
            ),
            self.config,
            self.seed,
            self.warmup,
            self.measure,
            runs.join(",\n"),
            self.total_wall_s(),
            self.total_committed(),
            self.aggregate_kips(),
            self.aggregate_cycles_per_sec(),
        )
    }

    /// Human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "bench {} (seed {}, warmup {}, measure {} cycles per run)",
            self.config, self.seed, self.warmup, self.measure
        )
        .expect("write");
        writeln!(
            out,
            "  {:<10} {:<22} {:>3}  {:>8}  {:>10}  {:>9}  {:>6}",
            "design", "mix", "thr", "wall_s", "cycles/s", "kIPS", "IPC"
        )
        .expect("write");
        for r in &self.runs {
            writeln!(
                out,
                "  {:<10} {:<22} {:>3}  {:>8.3}  {:>10.0}  {:>9.1}  {:>6.3}",
                r.design, r.mix, r.threads, r.wall_s, r.sim_cycles_per_sec, r.kips, r.ipc
            )
            .expect("write");
        }
        writeln!(
            out,
            "aggregate: {:.1} kIPS, {:.0} sim cycles/s over {:.2}s wall",
            self.aggregate_kips(),
            self.aggregate_cycles_per_sec(),
            self.total_wall_s()
        )
        .expect("write");
        out
    }
}

/// A prior bench's kIPS numbers parsed from a committed `BENCH_core.json`,
/// for the report-only old-vs-new comparison behind `shelfsim bench
/// --compare`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchBaseline {
    /// Per-run kIPS keyed by `design/mix/threads`.
    pub runs: Vec<(String, f64)>,
    /// Aggregate kIPS, when the document carries one.
    pub aggregate_kips: Option<f64>,
}

impl BenchBaseline {
    /// Baseline kIPS for a `design/mix/threads` key, if that cell existed.
    pub fn kips_for(&self, key: &str) -> Option<f64> {
        self.runs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Extracts the raw text of `"name":<value>` from a flat JSON object
/// fragment. Quoted values run to the closing quote (mix names contain
/// commas); bare values run to the next `,` or `}`.
fn json_field<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.find('"').map(|end| &quoted[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parses a `shelfsim-bench-v1` document (as emitted by
/// [`BenchReport::to_json`]) into a comparison baseline.
///
/// Deliberately tolerant: the baseline feeds a report-only delta table, so
/// a run missing a parsable kIPS is dropped rather than failing the bench.
/// Returns `None` only when the schema marker is absent — comparing
/// against a non-bench file is a caller mistake worth surfacing.
pub fn parse_baseline(json: &str) -> Option<BenchBaseline> {
    if !json.contains("shelfsim-bench-v1") {
        return None;
    }
    let mut base = BenchBaseline::default();
    for line in json.lines() {
        let line = line.trim();
        if line.starts_with("{\"design\":") {
            let (Some(design), Some(mix), Some(threads), Some(kips)) = (
                json_field(line, "design"),
                json_field(line, "mix"),
                json_field(line, "threads"),
                json_field(line, "kips").and_then(|v| v.parse::<f64>().ok()),
            ) else {
                continue;
            };
            base.runs.push((format!("{design}/{mix}/{threads}"), kips));
        } else if line.starts_with("\"aggregate\":") {
            base.aggregate_kips = json_field(line, "kips").and_then(|v| v.parse().ok());
        }
    }
    Some(base)
}

impl BenchReport {
    /// Old-vs-new kIPS delta table against a parsed baseline. Cells absent
    /// from the baseline render `n/a`, as does a zero baseline
    /// (`percent_delta` semantics).
    pub fn render_compare(&self, base: &BenchBaseline) -> String {
        use shelfsim::stats::{percent_delta, render_delta};
        let mut out = String::new();
        writeln!(out, "baseline comparison (kIPS):").expect("write");
        writeln!(
            out,
            "  {:<10} {:<22} {:>3}  {:>9}  {:>9}  {:>7}",
            "design", "mix", "thr", "base", "new", "delta"
        )
        .expect("write");
        for r in &self.runs {
            let key = format!("{}/{}/{}", r.design, r.mix, r.threads);
            let old = base.kips_for(&key);
            let (base_cell, delta) = match old {
                Some(k) => (format!("{k:.1}"), render_delta(percent_delta(k, r.kips))),
                None => ("n/a".to_owned(), "n/a".to_owned()),
            };
            writeln!(
                out,
                "  {:<10} {:<22} {:>3}  {:>9}  {:>9.1}  {:>7}",
                r.design, r.mix, r.threads, base_cell, r.kips, delta
            )
            .expect("write");
        }
        match base.aggregate_kips {
            Some(old) => writeln!(
                out,
                "aggregate kIPS: {:.1} -> {:.1} ({})",
                old,
                self.aggregate_kips(),
                render_delta(percent_delta(old, self.aggregate_kips()))
            )
            .expect("write"),
            None => writeln!(
                out,
                "aggregate kIPS: baseline n/a -> {:.1}",
                self.aggregate_kips()
            )
            .expect("write"),
        }
        out
    }
}

/// Runs every cell of `plan` and collects throughput.
///
/// # Errors
///
/// Returns a message if a design name or benchmark name does not resolve.
pub fn run_plan(plan: &BenchPlan) -> Result<BenchReport, String> {
    let mut runs = Vec::with_capacity(plan.entries.len());
    for e in &plan.entries {
        let cfg = design_by_name(e.design, e.mix.len())
            .ok_or_else(|| format!("unknown design `{}`", e.design))?;
        let mut sim =
            Simulation::from_names(cfg, e.mix, plan.seed).map_err(|err| err.to_string())?;
        let start = Instant::now();
        let r = sim.run(plan.warmup, plan.measure);
        let wall_s = start.elapsed().as_secs_f64();
        let committed: u64 = r.threads.iter().map(|t| t.committed).sum();
        runs.push(BenchRun {
            design: e.design.to_owned(),
            mix: e.mix.join(","),
            threads: e.mix.len(),
            wall_s,
            cycles: r.cycles,
            committed,
            sim_cycles_per_sec: r.cycles as f64 / wall_s,
            kips: committed as f64 / wall_s / 1e3,
            ipc: r.ipc(),
        });
    }
    Ok(BenchReport {
        config: plan.config.to_owned(),
        warmup: plan.warmup,
        measure: plan.measure,
        seed: plan.seed,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_plan_reports_positive_throughput() {
        let mut plan = engine_micro(2_000, 7);
        plan.warmup = 500;
        plan.entries.truncate(2);
        let rep = run_plan(&plan).expect("plan runs");
        assert_eq!(rep.runs.len(), 2);
        for r in &rep.runs {
            assert_eq!(r.cycles, 2_000);
            assert!(r.committed > 0, "{} committed nothing", r.design);
            assert!(r.kips > 0.0);
            assert!(r.sim_cycles_per_sec > 0.0);
        }
        assert!(rep.aggregate_kips() > 0.0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let mut plan = engine_micro(1_000, 7);
        plan.warmup = 200;
        plan.entries.truncate(1);
        let rep = run_plan(&plan).expect("plan runs");
        let json = rep.to_json();
        assert!(json.contains(r#""schema": "shelfsim-bench-v1""#));
        assert!(json.contains(r#""config": "engine_micro""#));
        assert!(json.contains(r#""kips":"#));
        // Balanced braces/brackets (hand-rolled writer, no serde in-tree).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn baseline_roundtrips_through_json_and_renders_deltas() {
        let mut plan = engine_micro(1_000, 7);
        plan.warmup = 200;
        plan.entries.truncate(2);
        let rep = run_plan(&plan).expect("plan runs");
        let base = parse_baseline(&rep.to_json()).expect("own JSON parses");
        assert_eq!(base.runs.len(), rep.runs.len());
        for r in &rep.runs {
            let key = format!("{}/{}/{}", r.design, r.mix, r.threads);
            let k = base.kips_for(&key).expect("run key present");
            assert!((k - r.kips).abs() < 0.05 + r.kips * 1e-3, "{key}: {k}");
        }
        let agg = base.aggregate_kips.expect("aggregate parsed");
        assert!((agg - rep.aggregate_kips()).abs() < 0.05 + agg * 1e-3);

        // Self-comparison: every delta is ~0, aggregate line present.
        let table = rep.render_compare(&base);
        assert!(table.contains("baseline comparison"), "{table}");
        assert!(table.contains("aggregate kIPS:"), "{table}");
        assert!(
            table.contains("0.0%"),
            "self-compare should be ~0:\n{table}"
        );

        // A cell missing from the baseline renders n/a, report-only.
        let empty = BenchBaseline::default();
        let table = rep.render_compare(&empty);
        assert!(table.contains("n/a"), "{table}");
    }

    #[test]
    fn baseline_rejects_non_bench_documents() {
        assert_eq!(parse_baseline("{\"schema\": \"something-else\"}"), None);
        assert_eq!(parse_baseline(""), None);
    }

    #[test]
    fn baseline_parses_mix_names_containing_commas() {
        let doc = concat!(
            "{\n  \"schema\": \"shelfsim-bench-v1\",\n  \"runs\": [\n",
            r#"    {"design":"base64","mix":"gcc,mcf,hmmer,lbm","threads":4,"kips":1905.1}"#,
            "\n  ],\n",
            "  \"aggregate\": {\"wall_s\":0.1,\"committed\":10,\"kips\":1504.9}\n}\n"
        );
        let base = parse_baseline(doc).expect("parses");
        assert_eq!(base.kips_for("base64/gcc,mcf,hmmer,lbm/4"), Some(1905.1));
        assert_eq!(base.aggregate_kips, Some(1504.9));
    }

    #[test]
    fn unknown_design_is_an_error() {
        let plan = BenchPlan {
            config: "bad",
            warmup: 10,
            measure: 10,
            seed: 1,
            entries: vec![BenchEntry {
                design: "no-such-design",
                mix: &["gcc"],
            }],
        };
        assert!(run_plan(&plan).is_err());
    }
}
