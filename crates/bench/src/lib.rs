//! Shared experiment harness for the table/figure benchmarks.
//!
//! Each `benches/figNN_*.rs` target (run via `cargo bench`) regenerates one
//! table or figure of the paper by calling into this library; the same entry
//! points are exercised (at reduced scale) by the integration tests.
//!
//! Scale knobs (environment variables):
//!
//! * `SHELFSIM_MIXES` — number of workload mixes (default 28, the paper's
//!   full set);
//! * `SHELFSIM_WARMUP` — warm-up cycles per run (default 10 000);
//! * `SHELFSIM_MEASURE` — measured cycles per run (default 40 000);
//! * `SHELFSIM_SEED` — workload/mix seed (default 7).

pub mod campaign;
pub mod engine;

use shelfsim::core::sim::UnknownBenchmark;
use shelfsim::{
    balanced_random_mixes, geomean, stp, suite, CoreConfig, EnergyModel, Mix, Simulation,
    SteerPolicy,
};
use std::collections::HashMap;

/// Scale parameters for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Number of mixes.
    pub mixes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Reads the scale from the environment (paper-scale defaults).
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Scale {
            warmup: var("SHELFSIM_WARMUP", 10_000),
            measure: var("SHELFSIM_MEASURE", 40_000),
            mixes: var("SHELFSIM_MIXES", 28),
            seed: var("SHELFSIM_SEED", 7),
        }
    }

    /// A small scale for tests.
    pub fn tiny() -> Self {
        Scale {
            warmup: 3_000,
            measure: 10_000,
            mixes: 3,
            seed: 7,
        }
    }
}

/// The design points evaluated throughout the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Design {
    /// Base-64: 64-entry ROB, 32-entry IQ/LQ/SQ, no shelf.
    Base64,
    /// Base-64 + 64-entry shelf, conservative issue, practical steering.
    ShelfConservative,
    /// Base-64 + 64-entry shelf, optimistic issue, practical steering.
    ShelfOptimistic,
    /// Base-64 + 64-entry shelf, optimistic issue, oracle steering.
    ShelfOracle,
    /// Base-128: everything doubled (the upper bound).
    Base128,
}

impl Design {
    /// All designs of Figure 10/13.
    pub const FIG10: [Design; 4] = [
        Design::Base64,
        Design::ShelfConservative,
        Design::ShelfOptimistic,
        Design::Base128,
    ];

    /// Short label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            Design::Base64 => "Base 64",
            Design::ShelfConservative => "64+64 conservative",
            Design::ShelfOptimistic => "64+64 optimistic",
            Design::ShelfOracle => "64+64 oracle",
            Design::Base128 => "Base 128",
        }
    }

    /// The core configuration for `threads` hardware contexts.
    pub fn config(self, threads: usize) -> CoreConfig {
        match self {
            Design::Base64 => CoreConfig::base64(threads),
            Design::ShelfConservative => {
                CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, false)
            }
            Design::ShelfOptimistic => {
                CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, true)
            }
            Design::ShelfOracle => CoreConfig::base64_shelf64(threads, SteerPolicy::Oracle, true),
            Design::Base128 => CoreConfig::base128(threads),
        }
    }
}

/// Results of one design point on one mix.
#[derive(Clone, Debug)]
pub struct MixEval {
    /// The mix.
    pub mix: Mix,
    /// System throughput.
    pub stp: f64,
    /// Energy-delay product (relative units; lower is better).
    pub edp: f64,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Per-thread in-sequence fractions.
    pub in_sequence: Vec<f64>,
    /// Mean mis-steer rate vs. the shadow oracle.
    pub missteer: f64,
    /// SSR-safety self-check (must be zero).
    pub late_shelf_commits: u64,
}

/// A memoized pool of single-threaded CPIs per (design, benchmark).
#[derive(Default)]
pub struct StCpiPool {
    cache: HashMap<(Design, &'static str), f64>,
}

impl StCpiPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The single-threaded CPI of `bench` on `design` (measured on demand).
    ///
    /// # Panics
    ///
    /// Panics if `bench` is not a suite benchmark.
    pub fn get(&mut self, design: Design, bench: &'static str, scale: Scale) -> f64 {
        *self.cache.entry((design, bench)).or_insert_with(|| {
            let mut sim = Simulation::from_names(design.config(1), &[bench], scale.seed)
                .expect("suite benchmark");
            sim.run(scale.warmup, scale.measure).threads[0].cpi
        })
    }
}

/// Runs `design` on `mix` and computes STP and EDP.
///
/// STP normalizes every design's multithreaded CPIs against the *baseline
/// machine's* single-threaded CPIs (a common reference), so that designs
/// with different raw speed remain comparable — same-machine normalization
/// would cancel out any microarchitectural speedup.
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] if the mix names a benchmark outside the
/// suite.
pub fn evaluate_mix(
    design: Design,
    mix: &Mix,
    pool: &mut StCpiPool,
    scale: Scale,
) -> Result<MixEval, UnknownBenchmark> {
    let threads = mix.threads();
    let cfg = design.config(threads);
    let model = EnergyModel::for_config(&cfg);
    let names: Vec<&str> = mix.benchmarks.clone();
    let mut sim = Simulation::from_names(cfg, &names, scale.seed)?;
    let run = sim.run(scale.warmup, scale.measure);
    let st: Vec<f64> = mix
        .benchmarks
        .iter()
        .map(|&b| pool.get(Design::Base64, b, scale))
        .collect();
    let report = model.report(&run);
    let missteer = run.threads.iter().map(|t| t.missteer_rate).sum::<f64>() / threads as f64;
    Ok(MixEval {
        mix: mix.clone(),
        stp: stp(&st, &run.cpis()),
        edp: report.edp(),
        ipc: run.ipc(),
        in_sequence: run.threads.iter().map(|t| t.in_sequence_fraction).collect(),
        missteer,
        late_shelf_commits: run.late_shelf_commits,
    })
}

/// The balanced-random mixes for `threads` contexts at the given scale.
pub fn mixes(threads: usize, scale: Scale) -> Vec<Mix> {
    let names = suite::names();
    let mut all = balanced_random_mixes(&names, threads, 28, scale.seed);
    all.truncate(scale.mixes);
    all
}

/// Evaluates a set of designs across the 4-thread mixes; returns
/// `per_design[design_index][mix_index]`.
///
/// # Panics
///
/// Panics on unknown benchmarks (the suite generator cannot produce them).
pub fn evaluate_designs(designs: &[Design], threads: usize, scale: Scale) -> Vec<Vec<MixEval>> {
    let mixes = mixes(threads, scale);
    let mut pool = StCpiPool::new();
    designs
        .iter()
        .map(|&d| {
            mixes
                .iter()
                .map(|m| evaluate_mix(d, m, &mut pool, scale).expect("suite mixes"))
                .collect()
        })
        .collect()
}

/// Percent improvements of each design over the first design in `evals`,
/// per mix: `improvements[design-1][mix]` (in percent).
pub fn stp_improvements(evals: &[Vec<MixEval>]) -> Vec<Vec<f64>> {
    let base = &evals[0];
    evals[1..]
        .iter()
        .map(|d| {
            d.iter()
                .zip(base)
                .map(|(x, b)| (x.stp / b.stp - 1.0) * 100.0)
                .collect()
        })
        .collect()
}

/// Geometric-mean percent improvement over the baseline.
pub fn geomean_improvement(design: &[MixEval], base: &[MixEval]) -> f64 {
    let ratios: Vec<f64> = design
        .iter()
        .zip(base)
        .map(|(x, b)| x.stp / b.stp)
        .collect();
    (geomean(&ratios) - 1.0) * 100.0
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join("  ")
}

/// Optional CSV sink: when `SHELFSIM_CSV` names a directory, returns a
/// writer for `<dir>/<name>.csv` so the figure benches can emit
/// machine-readable series alongside their tables.
pub fn csv_sink(name: &str) -> Option<std::fs::File> {
    let dir = std::env::var("SHELFSIM_CSV").ok()?;
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::File::create(std::path::Path::new(&dir).join(format!("{name}.csv"))).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults() {
        // Not setting the vars yields paper-scale defaults.
        let s = Scale::from_env();
        assert!(s.mixes <= 28);
        assert!(s.measure > 0);
    }

    #[test]
    fn designs_have_distinct_configs() {
        let c: Vec<CoreConfig> = Design::FIG10.iter().map(|d| d.config(4)).collect();
        assert_ne!(c[0], c[1]);
        assert_ne!(c[1], c[2]);
        assert_ne!(c[2], c[3]);
        assert_eq!(c[3].rob_entries, 128);
    }

    #[test]
    fn tiny_evaluation_round_trip() {
        let scale = Scale::tiny();
        let ms = mixes(4, scale);
        assert_eq!(ms.len(), 3);
        let mut pool = StCpiPool::new();
        let eval = evaluate_mix(Design::Base64, &ms[0], &mut pool, scale).unwrap();
        assert!(eval.stp > 0.0);
        assert!(eval.edp > 0.0);
        assert_eq!(eval.late_shelf_commits, 0);
    }
}
