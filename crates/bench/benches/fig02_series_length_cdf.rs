//! Figure 2: weighted cumulative distribution of consecutive in-sequence and
//! reordered instruction series lengths (single-threaded, 128-entry window).
//!
//! Paper: "99% of in-sequence instructions occur in series with 30
//! instructions or fewer, while a series of reordered instructions is bound
//! by the ROB size (128 entries)."

use shelfsim::{Simulation, WeightedCdf};
use shelfsim_bench::{Design, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 2: weighted CDF of consecutive series lengths");
    println!("# (single-threaded benchmarks on the Base-128 window)\n");

    let names = shelfsim::suite::names();
    let sample = &names[..scale.mixes.max(8).min(names.len())];

    let mut per_bench: Vec<(WeightedCdf, WeightedCdf)> = Vec::new();
    for name in sample {
        let mut sim =
            Simulation::from_names(Design::Base128.config(1), &[name], scale.seed).expect("suite");
        let r = sim.run(scale.warmup, scale.measure);
        per_bench.push((
            r.threads[0].in_sequence_series.clone(),
            r.threads[0].reordered_series.clone(),
        ));
    }

    let lengths = [1u64, 2, 4, 8, 16, 30, 64, 128, 256];
    println!(
        "{:<8} {:>22} {:>22}",
        "length", "in-seq CDF (min/geo/max)", "reord CDF (min/geo/max)"
    );
    for &len in &lengths {
        let ins: Vec<f64> = per_bench
            .iter()
            .map(|(i, _)| i.fraction_at_or_below(len).max(1e-9))
            .collect();
        let reo: Vec<f64> = per_bench
            .iter()
            .map(|(_, r)| r.fraction_at_or_below(len).max(1e-9))
            .collect();
        println!(
            "{:<8} {:>6.2} /{:>5.2} /{:>5.2} {:>7.2} /{:>5.2} /{:>5.2}",
            len,
            min(&ins),
            shelfsim::geomean(&ins),
            max(&ins),
            min(&reo),
            shelfsim::geomean(&reo),
            max(&reo),
        );
    }

    let mut merged_in = WeightedCdf::new();
    let mut merged_re = WeightedCdf::new();
    for (i, r) in &per_bench {
        merged_in.merge(i);
        merged_re.merge(r);
    }
    println!(
        "\n# 99% of in-sequence instructions in series of length <= {}",
        merged_in.quantile(0.99).unwrap_or(0)
    );
    println!(
        "# mean series lengths: in-seq {:.1}, reordered {:.1}  (paper: 5-20 per group)",
        merged_in.mean_length(),
        merged_re.mean_length()
    );
}

fn min(v: &[f64]) -> f64 {
    v.iter().cloned().fold(f64::INFINITY, f64::min)
}

fn max(v: &[f64]) -> f64 {
    v.iter().cloned().fold(0.0, f64::max)
}
