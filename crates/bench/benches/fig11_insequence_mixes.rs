//! Figure 11: fraction of in-sequence instructions per thread for the mixes
//! with the minimum, median, and maximum STP improvement, plus the mean.
//!
//! Paper: "On average, about half of instructions are in-sequence, but some
//! benchmarks have fewer in-sequence instructions."

use shelfsim::stats::{mean, min_median_max_indices};
use shelfsim_bench::{evaluate_designs, stp_improvements, Design, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 11: per-thread in-sequence fraction for selected 4-thread mixes\n");
    let designs = [Design::Base64, Design::ShelfOptimistic];
    let evals = evaluate_designs(&designs, 4, scale);
    let improvements = stp_improvements(&evals);
    let (lo, med, hi) = min_median_max_indices(&improvements[0]);

    // In-sequence fractions measured on the baseline (the opportunity).
    for (label, idx) in [("min", lo), ("median", med), ("max", hi)] {
        let e = &evals[0][idx];
        println!("{} mix: {}", label, e.mix.label());
        for (b, f) in e.mix.benchmarks.iter().zip(&e.in_sequence) {
            println!("  {:<12} {:>5.1}%", b, f * 100.0);
        }
        println!("  mix mean:    {:>5.1}%\n", mean(&e.in_sequence) * 100.0);
    }
    let all: Vec<f64> = evals[0]
        .iter()
        .flat_map(|e| e.in_sequence.iter().copied())
        .collect();
    println!(
        "arithmetic mean across all threads of all mixes: {:.1}%",
        mean(&all) * 100.0
    );
    println!("\n# paper shape: ~50% on average, with per-benchmark spread");
}
