//! Ablations of the design choices DESIGN.md calls out:
//!
//! * one SSR vs the IQ/shelf pair (paper §III-B starvation pathology);
//! * 1x vs 2x shelf virtual index space (paper §III-B resource shortage);
//! * store-sets on vs off (paper §III-D squash moderation);
//! * RCT width and PLT column sweeps (paper §IV-B "design exploration").

use shelfsim::{geomean, CoreConfig, Simulation, SteerPolicy};
use shelfsim_bench::{mixes, Scale};

fn ipc_over_mixes(cfg: &CoreConfig, scale: Scale) -> f64 {
    let vals: Vec<f64> = mixes(4, scale)
        .iter()
        .map(|m| {
            let names: Vec<&str> = m.benchmarks.clone();
            let mut sim = Simulation::from_names(cfg.clone(), &names, scale.seed).expect("suite");
            sim.run(scale.warmup, scale.measure).ipc().max(1e-9)
        })
        .collect();
    geomean(&vals)
}

fn main() {
    let mut scale = Scale::from_env();
    // Ablations use a reduced mix count by default; override via env.
    if std::env::var("SHELFSIM_MIXES").is_err() {
        scale.mixes = 8;
    }
    let base = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    let reference = ipc_over_mixes(&base, scale);
    println!(
        "# Ablation study (geomean IPC over {} four-thread mixes)\n",
        scale.mixes
    );
    println!("{:<34} {:>8} {:>8}", "variant", "IPC", "delta");
    println!(
        "{:<34} {:>8.3} {:>8}",
        "shelf 64+64 (reference)", reference, "-"
    );

    let report = |label: &str, cfg: CoreConfig| {
        let ipc = ipc_over_mixes(&cfg, scale);
        println!(
            "{:<34} {:>8.3} {:>+7.1}%",
            label,
            ipc,
            (ipc / reference - 1.0) * 100.0
        );
    };

    report(
        "single SSR (starvation-prone)",
        CoreConfig {
            single_ssr: true,
            ..base.clone()
        },
    );
    report(
        "narrow shelf index space (1x)",
        CoreConfig {
            narrow_shelf_index: true,
            ..base.clone()
        },
    );
    report(
        "conservative same-cycle issue",
        CoreConfig {
            same_cycle_shelf_issue: false,
            ..base.clone()
        },
    );
    report(
        "RCT 3-bit counters",
        CoreConfig {
            rct_bits: 3,
            ..base.clone()
        },
    );
    report(
        "RCT 8-bit counters",
        CoreConfig {
            rct_bits: 8,
            ..base.clone()
        },
    );
    report(
        "PLT 1 column",
        CoreConfig {
            plt_columns: 1,
            ..base.clone()
        },
    );
    report(
        "PLT 8 columns",
        CoreConfig {
            plt_columns: 8,
            ..base.clone()
        },
    );
    report(
        "no wrong-path fetch",
        CoreConfig {
            wrong_path_fetch: false,
            ..base.clone()
        },
    );
    report(
        "TSO memory model (§III-D)",
        CoreConfig {
            memory_model: shelfsim::core::MemoryModel::Tso,
            ..base.clone()
        },
    );
    report(
        "clustered backend, +1cy forward",
        CoreConfig {
            cluster_forward_penalty: 1,
            ..base.clone()
        },
    );
    report(
        "clustered backend, +2cy forward",
        CoreConfig {
            cluster_forward_penalty: 2,
            ..base.clone()
        },
    );
    report(
        "TAGE branch predictor",
        CoreConfig {
            predictor: shelfsim::uarch::PredictorKind::Tage,
            ..base.clone()
        },
    );
    report(
        "gshare branch predictor",
        CoreConfig {
            predictor: shelfsim::uarch::PredictorKind::Gshare,
            ..base.clone()
        },
    );
    report(
        "round-robin SMT fetch (vs ICOUNT)",
        CoreConfig {
            fetch_policy: shelfsim::core::FetchPolicy::RoundRobin,
            ..base.clone()
        },
    );
    report(
        "next-line L1D prefetcher",
        CoreConfig {
            hierarchy: shelfsim::mem::HierarchyConfig {
                next_line_prefetch: true,
                ..Default::default()
            },
            ..base.clone()
        },
    );
    report(
        "stride L1D prefetcher",
        CoreConfig {
            hierarchy: shelfsim::mem::HierarchyConfig {
                prefetch: shelfsim::mem::PrefetchKind::Stride,
                ..Default::default()
            },
            ..base.clone()
        },
    );
    for shelf in [16usize, 32, 128] {
        report(
            &format!("shelf size {shelf}"),
            CoreConfig {
                shelf_entries: shelf,
                ..base.clone()
            },
        );
    }

    println!("\n# expected: single-SSR and narrow-index hurt; 5-bit RCT / 4-column PLT");
    println!("# suffice; TSO erodes the shelf benefit (the paper's §III-D prediction)");
}
