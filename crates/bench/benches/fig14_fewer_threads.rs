//! Figure 14: shelf opportunity with fewer threads (1 and 2).
//!
//! Paper: "There is no opportunity for a shelf in single-threaded execution.
//! With two threads, the shelf provides a modest improvement in performance
//! and energy delay. Nevertheless, we find that the shelf does not
//! adversely affect performance."

use shelfsim::{geomean, suite, EnergyModel, Simulation};
use shelfsim_bench::{mixes, Design, Scale, StCpiPool};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 14: STP and EDP with fewer threads (64 vs 64+64)\n");
    println!("{:<10} {:>14} {:>14}", "threads", "STP delta", "EDP delta");

    for threads in [1usize, 2] {
        let mut stp_ratios = Vec::new();
        let mut edp_ratios = Vec::new();
        if threads == 1 {
            // Single benchmarks: STP degenerates to speedup.
            for name in suite::names().iter().take(scale.mixes.max(8)) {
                let mut rs = Vec::new();
                for d in [Design::Base64, Design::ShelfOptimistic] {
                    let cfg = d.config(1);
                    let model = EnergyModel::for_config(&cfg);
                    let mut sim = Simulation::from_names(cfg, &[name], scale.seed).expect("suite");
                    let run = sim.run(scale.warmup, scale.measure);
                    rs.push((run.threads[0].cpi, model.report(&run).edp()));
                }
                stp_ratios.push(rs[0].0 / rs[1].0); // CPI ratio = speedup
                edp_ratios.push(rs[1].1 / rs[0].1);
            }
        } else {
            let mut pool = StCpiPool::new();
            for mix in mixes(threads, scale) {
                let mut rs = Vec::new();
                for d in [Design::Base64, Design::ShelfOptimistic] {
                    let eval =
                        shelfsim_bench::evaluate_mix(d, &mix, &mut pool, scale).expect("suite");
                    rs.push((eval.stp, eval.edp));
                }
                stp_ratios.push(rs[1].0 / rs[0].0);
                edp_ratios.push(rs[1].1 / rs[0].1);
            }
        }
        println!(
            "{:<10} {:>+13.1}% {:>+13.1}%",
            threads,
            (geomean(&stp_ratios) - 1.0) * 100.0,
            (1.0 - geomean(&edp_ratios)) * 100.0,
        );
    }
    println!("\n# paper shape: ~0% at 1 thread (no harm), modest gain at 2 threads");
    println!("# (positive EDP delta = energy-delay improvement)");
}
