//! Table II: core-area increase over Base-64, with and without L1 caches.
//!
//! Paper: "adding a shelf and the associated scheduling, steering, and
//! tracking structures increases the core area by 3.1%. In contrast,
//! doubling the capacity of the IQ, ROB, LQ, SQ, and instruction scheduling
//! logic for the 128-entry design increases area by 9.7%." (2.1% / 6.6%
//! with L1 caches included.)

use shelfsim::EnergyModel;
use shelfsim_bench::Design;

fn main() {
    println!("# Table II: area increase over Base 64\n");
    let base = EnergyModel::for_config(&Design::Base64.config(4));
    let shelf = EnergyModel::for_config(&Design::ShelfOptimistic.config(4));
    let big = EnergyModel::for_config(&Design::Base128.config(4));

    println!(
        "{:<14} {:>18} {:>12}",
        "L1 caches", "Base+Shelf 64+64", "Base 128"
    );
    for include_l1 in [false, true] {
        let a0 = base.core_area(include_l1);
        println!(
            "{:<14} {:>17.1}% {:>11.1}%",
            if include_l1 { "yes" } else { "no" },
            (shelf.core_area(include_l1) / a0 - 1.0) * 100.0,
            (big.core_area(include_l1) / a0 - 1.0) * 100.0,
        );
    }
    println!("\n# paper: no-L1 3.1% / 9.7%; with-L1 2.1% / 6.6%");

    println!("\nper-structure area of the shelf design (share of core, no L1):");
    let total = shelf.core_area(false);
    let mut rows: Vec<(&str, f64)> = shelf
        .structures()
        .iter()
        .map(|s| (s.name, s.area()))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, a) in rows {
        println!("  {:<14} {:>5.1}%", name, a / total * 100.0);
    }
}
