//! Figure 12: performance impact of practical steering vs the greedy oracle.
//!
//! Paper: "Approximately 16% of instructions are steered incorrectly by the
//! practical mechanism relative to the oracle. Nevertheless, the ability of
//! one SMT thread to make progress while another is stalled hides the brief
//! stalls created by incorrect steering decisions."

use shelfsim::stats::{mean, min_median_max_indices};
use shelfsim_bench::{evaluate_designs, geomean_improvement, stp_improvements, Design, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 12: practical vs oracle steering (STP improvement over Base-64)\n");
    let designs = [Design::Base64, Design::ShelfOptimistic, Design::ShelfOracle];
    let evals = evaluate_designs(&designs, 4, scale);
    let improvements = stp_improvements(&evals);
    let (lo, med, hi) = min_median_max_indices(&improvements[0]);

    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "steering", "min mix", "median mix", "max mix", "geomean"
    );
    for (di, label) in [(1usize, "practical (RCT/PLT)"), (2, "oracle (greedy)")] {
        let imp = &improvements[di - 1];
        println!(
            "{:<24} {:>+9.1}% {:>+9.1}% {:>+9.1}% {:>+9.1}%",
            label,
            imp[lo],
            imp[med],
            imp[hi],
            geomean_improvement(&evals[di], &evals[0]),
        );
    }

    let missteer: Vec<f64> = evals[1].iter().map(|e| e.missteer).collect();
    println!(
        "\nmean mis-steer rate of the practical mechanism vs shadow oracle: {:.1}%",
        mean(&missteer) * 100.0
    );
    println!("# paper: ~16% mis-steered, with practical close to oracle in STP");
}
