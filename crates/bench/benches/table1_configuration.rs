//! Table I: the evaluated system configuration.

use shelfsim::CoreConfig;

fn main() {
    let cfg = CoreConfig::base64(4);
    let h = &cfg.hierarchy;
    println!("# Table I: System Configuration\n");
    println!("Core        {}-thread SMT OOO @ 2.0 GHz", cfg.threads);
    println!(
        "            {}-wide OOO with {}-wide fetch",
        cfg.dispatch_width, cfg.fetch_width
    );
    println!(
        "            {} cycles fetch-to-dispatch",
        cfg.fetch_to_dispatch
    );
    println!("ROB         {} or 128", cfg.rob_entries);
    println!("IQ, LQ, SQ  {} or 64", cfg.iq_entries);
    println!("Shelf       64 (when present)");
    println!(
        "Steering    {}-bit RCT entries, {}-load PLT",
        cfg.rct_bits, cfg.plt_columns
    );
    println!(
        "L1I         {}KB, {}-way, {}-cycle",
        h.l1i.size_bytes >> 10,
        h.l1i.assoc,
        h.l1i.latency
    );
    println!(
        "L1D         {}KB, {}-way, {}-cycle",
        h.l1d.size_bytes >> 10,
        h.l1d.assoc,
        h.l1d.latency
    );
    println!(
        "L2          {}MB, {}-way, {}-cycle",
        h.l2.size_bytes >> 20,
        h.l2.assoc,
        h.l2.latency
    );
    println!(
        "Memory      100ns latency ({} cycles @ 2GHz)",
        h.memory_latency
    );
    println!(
        "\nFUs: {} int ALU, {} mul/div, {} FP, {} mem ports; PRF {} regs; ext tags {}",
        cfg.fu_int_alu,
        cfg.fu_int_muldiv,
        cfg.fu_fp,
        cfg.fu_mem_ports,
        cfg.num_phys_regs(),
        CoreConfig::base64_shelf64(4, shelfsim::SteerPolicy::Practical, true).num_ext_tags(),
    );
}
