//! Criterion micro-benchmarks of the simulator engine itself: simulation
//! throughput per design point and the cost of the hot structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shelfsim::uarch::{FreeList, IssueTracker, OrderedQueue, Scoreboard, Tag};
use shelfsim::workload::{suite, TraceSource};
use shelfsim::{CoreConfig, EnergyModel, Simulation, SteerPolicy};

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_1k_cycles");
    g.sample_size(10);
    for (label, cfg) in [
        ("base64_4t", CoreConfig::base64(4)),
        ("shelf64_4t", CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true)),
        ("base128_4t", CoreConfig::base128(4)),
    ] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut sim =
                Simulation::from_names(cfg.clone(), &["gcc", "mcf", "hmmer", "lbm"], 1)
                    .expect("suite");
            sim.run(5_000, 0); // warm the pipeline once
            b.iter(|| {
                for _ in 0..1_000 {
                    sim.step();
                }
            });
        });
    }
    g.finish();
}

fn bench_structures(c: &mut Criterion) {
    c.bench_function("ordered_queue_push_pop", |b| {
        let mut q: OrderedQueue<u32> = OrderedQueue::new(64);
        b.iter(|| {
            for i in 0..64u32 {
                let _ = q.push(i);
            }
            while q.pop_front().is_some() {}
        });
    });

    c.bench_function("issue_tracker_dispatch_issue", |b| {
        b.iter(|| {
            let mut t = IssueTracker::new();
            for i in 0..64 {
                t.dispatch(i);
            }
            for i in (0..64).rev() {
                t.issue(i);
            }
            t.head()
        });
    });

    c.bench_function("freelist_churn", |b| {
        let mut fl = FreeList::new(0, 128);
        b.iter(|| {
            let ids: Vec<u32> = (0..64).map(|_| fl.allocate().expect("free")).collect();
            for id in ids {
                fl.free(id);
            }
        });
    });

    c.bench_function("scoreboard_wakeup_scan", |b| {
        let mut sb = Scoreboard::new(512);
        for i in 0..512 {
            sb.set_ready_at(Tag(i), (i as u64) % 97);
        }
        b.iter(|| (0..512u32).filter(|&i| sb.is_ready(Tag(i), 50)).count());
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("trace_generate_10k", |b| {
        let program = suite::by_name("gcc").expect("suite").build_program(1);
        b.iter(|| {
            let mut t = TraceSource::new(program.clone(), 0);
            let mut loads = 0u64;
            for _ in 0..10_000 {
                let (_, i) = t.fetch();
                loads += u64::from(i.is_load());
            }
            loads
        });
    });

    c.bench_function("program_build_gcc", |b| {
        let profile = suite::by_name("gcc").expect("suite");
        b.iter(|| profile.build_program(7).footprint());
    });

    c.bench_function("assemble_kernel", |b| {
        let src = "top:\n load r9, [r0], stride=8, region=l1\n mul r8, r8, r9\n                    add r10, r8\n loop top, trips=100\n";
        b.iter(|| shelfsim::workload::asm::assemble(src).expect("valid").footprint());
    });
}

fn bench_energy(c: &mut Criterion) {
    c.bench_function("energy_report", |b| {
        let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
        let model = EnergyModel::for_config(&cfg);
        let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1)
            .expect("suite");
        let run = sim.run(2_000, 4_000);
        b.iter(|| model.report(&run).edp());
    });
}

criterion_group!(benches, bench_simulation, bench_structures, bench_workload, bench_energy);
criterion_main!(benches);
