//! Seed robustness: the headline Figure 10 result re-measured across
//! independent workload seeds. A reproduction whose conclusion flips with
//! the random seed is no reproduction; this bench quantifies the spread.

use shelfsim_bench::{evaluate_designs, geomean_improvement, Design, Scale};

fn main() {
    let mut scale = Scale::from_env();
    if std::env::var("SHELFSIM_MIXES").is_err() {
        scale.mixes = 8; // reduced mixes x multiple seeds
    }
    println!(
        "# Robustness: Figure 10 geomean STP improvement across seeds ({} mixes each)\n",
        scale.mixes
    );
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "seed", "shelf (opt)", "Base 128", "capture"
    );

    let designs = [Design::Base64, Design::ShelfOptimistic, Design::Base128];
    let mut shelf_all = Vec::new();
    for seed in [7u64, 1007, 90210] {
        let s = Scale { seed, ..scale };
        let evals = evaluate_designs(&designs, 4, s);
        let shelf = geomean_improvement(&evals[1], &evals[0]);
        let big = geomean_improvement(&evals[2], &evals[0]);
        println!(
            "{:<8} {:>+13.1}% {:>+13.1}% {:>11.0}%",
            seed,
            shelf,
            big,
            shelf / big * 100.0
        );
        shelf_all.push(shelf);
    }
    let lo = shelf_all.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = shelf_all.iter().cloned().fold(0.0f64, f64::max);
    println!("\nshelf improvement range across seeds: {lo:+.1}% .. {hi:+.1}%");
    println!("# the conclusion (shelf wins, captures ~half of doubling) must hold at every seed");
}
