//! Bonus figure (no direct paper counterpart): mean structure occupancy of
//! the baseline vs the shelf design, quantifying §I's premise that
//! in-sequence instructions waste OOO-structure occupancy and §III's claim
//! that the shelf extends the window without adding rename registers.

use shelfsim::{geomean, Simulation};
use shelfsim_bench::{mixes, Design, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Bonus: mean structure occupancy over 4-thread mixes\n");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "design", "ROB", "IQ", "LQ", "SQ", "shelf", "window", "ren-regs"
    );
    for design in [Design::Base64, Design::ShelfOptimistic, Design::Base128] {
        let mut occ = [vec![], vec![], vec![], vec![], vec![], vec![]];
        let mut windows = vec![];
        for mix in mixes(4, scale) {
            let names: Vec<&str> = mix.benchmarks.clone();
            let mut sim =
                Simulation::from_names(design.config(4), &names, scale.seed).expect("suite mixes");
            let r = sim.run(scale.warmup, scale.measure);
            for (i, v) in occ.iter_mut().enumerate() {
                v.push(r.counters.mean_occupancy(i).max(1e-9));
            }
            windows.push((r.counters.mean_occupancy(0) + r.counters.mean_occupancy(4)).max(1e-9));
        }
        println!(
            "{:<22} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>9.1}",
            design.label(),
            geomean(&occ[0]),
            geomean(&occ[1]),
            geomean(&occ[2]),
            geomean(&occ[3]),
            geomean(&occ[4]),
            geomean(&windows),
            geomean(&occ[5]),
        );
    }
    println!("\n# expected: the shelf design's window (ROB+shelf) approaches Base-128's");
    println!("# ROB occupancy while its rename-register usage stays at Base-64 levels");
}
