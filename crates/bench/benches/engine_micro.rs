//! Micro-benchmarks of the simulator engine itself: simulation throughput
//! per design point and the cost of the hot structures.
//!
//! Formerly a criterion harness; rewritten against a small inline timer so
//! the workspace builds with no network access to a crates registry. Each
//! benchmark reports the median of `SHELFSIM_BENCH_SAMPLES` (default 10)
//! timed runs.

use shelfsim::uarch::{FreeList, IssueTracker, OrderedQueue, Scoreboard, Tag};
use shelfsim::workload::{suite, TraceSource};
use shelfsim::{CoreConfig, EnergyModel, Simulation, SteerPolicy};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` `samples` times and prints the median per-run wall time.
fn bench(name: &str, samples: usize, mut f: impl FnMut()) {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{:<32} {:>12.1} us/iter  ({samples} samples)",
        name,
        times[samples / 2]
    );
}

fn sample_count() -> usize {
    std::env::var("SHELFSIM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn bench_simulation(samples: usize) {
    for (label, cfg) in [
        ("simulate_1k/base64_4t", CoreConfig::base64(4)),
        (
            "simulate_1k/shelf64_4t",
            CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true),
        ),
        ("simulate_1k/base128_4t", CoreConfig::base128(4)),
    ] {
        let mut sim =
            Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1).expect("suite");
        sim.run(5_000, 0); // warm the pipeline once
        bench(label, samples, || {
            for _ in 0..1_000 {
                sim.step();
            }
        });
    }
}

fn bench_structures(samples: usize) {
    let mut q: OrderedQueue<u32> = OrderedQueue::new(64);
    bench("ordered_queue_push_pop", samples, || {
        for i in 0..64u32 {
            let _ = q.push(i);
        }
        while q.pop_front().is_some() {}
    });

    bench("issue_tracker_dispatch_issue", samples, || {
        let mut t = IssueTracker::new();
        for i in 0..64 {
            t.dispatch(i);
        }
        for i in (0..64).rev() {
            t.issue(i);
        }
        black_box(t.head());
    });

    let mut fl = FreeList::new(0, 128);
    bench("freelist_churn", samples, || {
        let ids: Vec<u32> = (0..64).map(|_| fl.allocate().expect("free")).collect();
        for id in ids {
            fl.free(id);
        }
    });

    let mut sb = Scoreboard::new(512);
    for i in 0..512 {
        sb.set_ready_at(Tag(i), (i as u64) % 97);
    }
    bench("scoreboard_wakeup_scan", samples, || {
        black_box((0..512u32).filter(|&i| sb.is_ready(Tag(i), 50)).count());
    });
}

fn bench_workload(samples: usize) {
    let program = suite::by_name("gcc").expect("suite").build_program(1);
    bench("trace_generate_10k", samples, || {
        let mut t = TraceSource::new(program.clone(), 0);
        let mut loads = 0u64;
        for _ in 0..10_000 {
            let (_, i) = t.fetch();
            loads += u64::from(i.is_load());
        }
        black_box(loads);
    });

    let profile = suite::by_name("gcc").expect("suite");
    bench("program_build_gcc", samples, || {
        black_box(profile.build_program(7).footprint());
    });

    let src = "top:\n load r9, [r0], stride=8, region=l1\n mul r8, r8, r9\n                    add r10, r8\n loop top, trips=100\n";
    bench("assemble_kernel", samples, || {
        black_box(
            shelfsim::workload::asm::assemble(src)
                .expect("valid")
                .footprint(),
        );
    });
}

fn bench_energy(samples: usize) {
    let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    let model = EnergyModel::for_config(&cfg);
    let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1).expect("suite");
    let run = sim.run(2_000, 4_000);
    bench("energy_report", samples, || {
        black_box(model.report(&run).edp());
    });
}

fn main() {
    let samples = sample_count();
    println!("# Engine micro-benchmarks (median of {samples} samples)\n");
    bench_simulation(samples);
    bench_structures(samples);
    bench_workload(samples);
    bench_energy(samples);
}
