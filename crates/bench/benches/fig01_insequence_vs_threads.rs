//! Figure 1: fraction of instructions wasting OOO resources (in-sequence)
//! as the SMT thread count grows, measured in a 128-entry OOO window.
//!
//! Paper: "as the number of threads in a 128-entry OOO instruction window is
//! increased, the fraction of in-sequence instructions more than doubles to
//! more than 50% on average."

use shelfsim::{geomean, suite, Simulation};
use shelfsim_bench::{mixes, Design, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 1: fraction of in-sequence instructions vs thread count");
    println!("# (Base-128 window, classification per paper §II)\n");
    println!(
        "{:<8} {:>14} {:>10} {:>10}",
        "threads", "mean in-seq", "min", "max"
    );

    for threads in [1usize, 2, 4, 8] {
        let mut fractions = Vec::new();
        if threads == 1 {
            for name in suite::names().iter().take(scale.mixes.max(8)) {
                let mut sim =
                    Simulation::from_names(Design::Base128.config(1), &[name], scale.seed)
                        .expect("suite");
                let r = sim.run(scale.warmup, scale.measure);
                fractions.push(r.threads[0].in_sequence_fraction.max(1e-9));
            }
        } else {
            for mix in mixes(threads, scale) {
                let names: Vec<&str> = mix.benchmarks.clone();
                let mut sim =
                    Simulation::from_names(Design::Base128.config(threads), &names, scale.seed)
                        .expect("suite");
                let r = sim.run(scale.warmup, scale.measure);
                fractions.push(r.mean_in_sequence_fraction().max(1e-9));
            }
        }
        let lo = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = fractions.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<8} {:>13.1}% {:>9.1}% {:>9.1}%",
            threads,
            geomean(&fractions) * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
    println!("\n# paper shape: ~20-25% at 1 thread rising to >50% at 4-8 threads");
}
