//! Figure 13: energy-delay product of Base-64, the shelf designs, and
//! Base-128.
//!
//! Paper: "Although it consumes more power, a 128-entry design is more
//! energy-efficient on the average than a 64-entry design, improving EDP by
//! 4.9%. However, a 64+64-entry shelf-augmented design is even more energy
//! efficient ... Adding a shelf improves energy-delay product by 8.6% and
//! 10.9% on average for conservative and optimistic microarchitecture
//! assumptions."

use shelfsim::geomean;
use shelfsim::stats::min_median_max_indices;
use shelfsim_bench::{evaluate_designs, stp_improvements, Design, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 13: energy-delay product improvement over Base-64 (lower EDP = better)\n");
    let evals = evaluate_designs(&Design::FIG10, 4, scale);
    // Select mixes by optimistic-shelf STP improvement, as in Fig 10.
    let improvements = stp_improvements(&evals);
    let (lo, med, hi) = min_median_max_indices(&improvements[1]);

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "design", "min mix", "median mix", "max mix", "geomean"
    );
    for (di, d) in Design::FIG10.iter().enumerate().skip(1) {
        let deltas: Vec<f64> = evals[di]
            .iter()
            .zip(&evals[0])
            .map(|(x, b)| x.edp / b.edp)
            .collect();
        // EDP *improvement* = how much lower the EDP is.
        let imp = |i: usize| (1.0 - deltas[i]) * 100.0;
        println!(
            "{:<28} {:>+9.1}% {:>+9.1}% {:>+9.1}% {:>+9.1}%",
            d.label(),
            imp(lo),
            imp(med),
            imp(hi),
            (1.0 - geomean(&deltas)) * 100.0,
        );
    }
    println!("\n# paper shape: shelf EDP gain (8.6-10.9%) exceeds Base-128's (~4.9%)");
}
