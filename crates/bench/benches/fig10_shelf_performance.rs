//! Figure 10: system-throughput improvement of the shelf over Base-64, with
//! conservative and optimistic microarchitecture assumptions, against the
//! doubled Base-128 upper bound.
//!
//! Paper: "The shelf-augmented microarchitectures improve performance over
//! the baseline by 8.6% and 11.5% on average and up to 15.1% and 19.2% for
//! the conservative and optimistic microarchitecture assumptions ... Our
//! approach captures almost half of the throughput improvement of the
//! larger OOO core."

use shelfsim::stats::min_median_max_indices;
use shelfsim_bench::{
    csv_sink, evaluate_designs, geomean_improvement, stp_improvements, Design, Scale,
};
use std::io::Write as _;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 10: STP improvement over Base-64 (4-thread mixes)\n");
    let evals = evaluate_designs(&Design::FIG10, 4, scale);
    let improvements = stp_improvements(&evals);
    // Select min/median/max mixes by the optimistic shelf improvement
    // (design index 2 -> improvements[1]).
    let (lo, med, hi) = min_median_max_indices(&improvements[1]);

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "design", "min mix", "median mix", "max mix", "geomean"
    );
    for (di, d) in Design::FIG10.iter().enumerate().skip(1) {
        let imp = &improvements[di - 1];
        println!(
            "{:<28} {:>+9.1}% {:>+9.1}% {:>+9.1}% {:>+9.1}%",
            d.label(),
            imp[lo],
            imp[med],
            imp[hi],
            geomean_improvement(&evals[di], &evals[0]),
        );
    }
    println!("\nselected mixes:");
    println!("  min:    {}", evals[0][lo].mix.label());
    println!("  median: {}", evals[0][med].mix.label());
    println!("  max:    {}", evals[0][hi].mix.label());

    if let Some(mut f) = csv_sink("fig10_stp") {
        let _ = writeln!(f, "mix,base64_stp,shelf_cons_stp,shelf_opt_stp,base128_stp");
        for (i, base) in evals[0].iter().enumerate() {
            let _ = writeln!(
                f,
                "{},{:.4},{:.4},{:.4},{:.4}",
                base.mix.label(),
                base.stp,
                evals[1][i].stp,
                evals[2][i].stp,
                evals[3][i].stp
            );
        }
        println!("\n(wrote fig10_stp.csv to $SHELFSIM_CSV)");
    }

    let late: u64 = evals.iter().flatten().map(|e| e.late_shelf_commits).sum();
    println!("\n# SSR safety self-check (must be 0): {late}");
    println!("# paper shape: conservative < optimistic; shelf captures ~half of Base-128");
}
