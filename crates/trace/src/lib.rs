//! # shelfsim-trace
//!
//! Pipeline observability for the shelfsim core: bounded per-instruction
//! lifecycle traces, per-cycle occupancy sampling, per-thread stall-cause
//! attribution, and exporters to JSONL and Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! The paper's headline results all rest on *explaining* where instructions
//! spend time — in-sequence series lengths, shelf vs. IQ issue, and
//! per-structure occupancy. End-of-run counters answer "how much"; this
//! crate answers "when" and "why", which is what debugging a timing model
//! actually needs.
//!
//! ## Event model
//!
//! One [`Lifecycle`] record per dynamic instruction that reached a steering
//! decision, completed at the instruction's *end of life* (commit or
//! squash). The record carries the cycle the instruction passed each
//! pipeline milestone:
//!
//! ```text
//! fetch -> steer decision + rename/dispatch -> issue -> writeback -> end
//! ```
//!
//! In this microarchitecture the steering decision is made in the same
//! cycle as rename/dispatch (decode information is consumed at dispatch,
//! paper Figure 3), so `dispatch` timestamps both milestones. `issue` and
//! `writeback` are `None` when the instruction was squashed before reaching
//! them. Instructions squashed while still in the fetch-to-dispatch pipe
//! never made a steering decision and are not recorded; neither are
//! synthetic wrong-path instructions (they have no trace position and never
//! retire).
//!
//! ## Drop policy
//!
//! Both the lifecycle ring and the occupancy-sample ring are bounded:
//! when full, the **oldest** record is evicted and a drop counter is
//! incremented (`dropped()` / `samples_dropped()`). The exported trace is
//! therefore always the most recent `window` instruction ends and the most
//! recent `window` samples; the drop counters say how much history was
//! discarded. Stall-attribution counters are plain saturating tallies and
//! are never dropped.

use shelfsim_isa::OpClass;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Hard cap on threads the attribution tables track (matches the core's
/// practical SMT range; the paper evaluates 1–4 threads).
pub const MAX_TRACE_THREADS: usize = 16;

/// Which queue an instruction was steered to (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// Conventional unordered issue queue.
    Iq,
    /// The per-thread FIFO shelf.
    Shelf,
}

impl QueueKind {
    /// Stable lowercase name used by both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Iq => "iq",
            QueueKind::Shelf => "shelf",
        }
    }
}

/// How an instruction's life ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndKind {
    /// Retired architecturally.
    Commit,
    /// Squashed by a misspeculation (branch or memory-order violation).
    Squash,
}

impl EndKind {
    /// Stable lowercase name used by both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            EndKind::Commit => "commit",
            EndKind::Squash => "squash",
        }
    }
}

/// The full per-instruction lifecycle record (see the crate docs for the
/// event model).
#[derive(Clone, Debug)]
pub struct Lifecycle {
    /// Owning hardware thread.
    pub thread: u8,
    /// Trace sequence number within the thread.
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Steering decision (made in the dispatch cycle).
    pub queue: QueueKind,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle of the steering decision and rename/dispatch.
    pub dispatch: u64,
    /// Cycle issued to a functional unit (`None`: squashed before issue).
    pub issue: Option<u64>,
    /// Cycle execution wrote back (`None`: squashed before writeback).
    pub writeback: Option<u64>,
    /// Cycle the instruction committed or was squashed.
    pub end: u64,
    /// Whether `end` is a commit or a squash.
    pub end_kind: EndKind,
}

/// Why a thread's dispatch or issue made no progress in a cycle.
///
/// One cause is attributed per thread per cycle on each side (dispatch and
/// issue), chosen by a fixed priority; `Progress` means the thread moved at
/// least one instruction through that stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum StallCause {
    /// The stage moved at least one instruction for this thread.
    Progress = 0,
    /// Nothing in flight for this stage to work on.
    Empty,
    /// Frontend pipe latency: instructions fetched but not yet at dispatch
    /// depth.
    NotReady,
    /// ROB partition full (dispatch).
    RobFull,
    /// Shared IQ full (dispatch).
    IqFull,
    /// LQ or SQ partition full (dispatch).
    LsqFull,
    /// Shelf partition or shelf index space full (dispatch).
    ShelfFull,
    /// No free physical register or extension tag (dispatch).
    NoRename,
    /// Memory barrier serializing dispatch.
    Barrier,
    /// Shelf head blocked: in-order barrier, SSR window, data, or WAW
    /// (issue).
    ShelfHeadBlocked,
    /// A ready memory operation lost MSHR arbitration (issue).
    NoMshr,
    /// Data-ready instructions lost functional-unit or structural
    /// arbitration (issue).
    FuBusy,
    /// Instructions dispatched but none data-ready (issue).
    DataWait,
    /// Data-ready instructions existed but the issue width was exhausted
    /// by other threads (issue).
    WidthLimited,
}

/// Number of [`StallCause`] variants (attribution table width).
pub const STALL_CAUSES: usize = 14;

impl StallCause {
    /// All causes, in counter-index order.
    pub const ALL: [StallCause; STALL_CAUSES] = [
        StallCause::Progress,
        StallCause::Empty,
        StallCause::NotReady,
        StallCause::RobFull,
        StallCause::IqFull,
        StallCause::LsqFull,
        StallCause::ShelfFull,
        StallCause::NoRename,
        StallCause::Barrier,
        StallCause::ShelfHeadBlocked,
        StallCause::NoMshr,
        StallCause::FuBusy,
        StallCause::DataWait,
        StallCause::WidthLimited,
    ];

    /// Stable snake_case name used by the exporters and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            StallCause::Progress => "progress",
            StallCause::Empty => "empty",
            StallCause::NotReady => "not_ready",
            StallCause::RobFull => "rob_full",
            StallCause::IqFull => "iq_full",
            StallCause::LsqFull => "lsq_full",
            StallCause::ShelfFull => "shelf_full",
            StallCause::NoRename => "no_rename",
            StallCause::Barrier => "barrier",
            StallCause::ShelfHeadBlocked => "shelf_head_blocked",
            StallCause::NoMshr => "no_mshr",
            StallCause::FuBusy => "fu_busy",
            StallCause::DataWait => "data_wait",
            StallCause::WidthLimited => "width_limited",
        }
    }
}

/// One per-cycle occupancy sample across all threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancySample {
    /// Cycle the sample was taken.
    pub cycle: u64,
    /// ROB entries in use (all threads).
    pub rob: u32,
    /// Shared IQ entries in use.
    pub iq: u32,
    /// LQ entries in use (all threads).
    pub lq: u32,
    /// SQ entries in use (all threads).
    pub sq: u32,
    /// Shelf entries in use (all threads).
    pub shelf: u32,
    /// Physical registers in use.
    pub prf: u32,
    /// Fetch-to-dispatch pipe occupancy (all threads).
    pub frontend: u32,
}

/// The tracer: bounded lifecycle ring + bounded occupancy-sample ring +
/// per-thread stall attribution. See the crate docs for the event model
/// and drop policy.
#[derive(Clone, Debug)]
pub struct Tracer {
    threads: usize,
    window: usize,
    lifecycles: VecDeque<Lifecycle>,
    dropped: u64,
    sample_every: u64,
    samples: VecDeque<OccupancySample>,
    samples_dropped: u64,
    dispatch_stalls: Vec<[u64; STALL_CAUSES]>,
    issue_stalls: Vec<[u64; STALL_CAUSES]>,
    /// The most recent per-thread attribution on each side, retained so a
    /// skipped idle span can be attributed in bulk (the span repeats the
    /// probed cycle exactly, including its stall causes).
    last_dispatch: Vec<StallCause>,
    last_issue: Vec<StallCause>,
}

impl Tracer {
    /// A tracer for `threads` hardware threads keeping the most recent
    /// `window` lifecycle records and `window` occupancy samples (one
    /// sample per cycle by default; see [`Tracer::with_sampling`]).
    ///
    /// `threads` is clamped to [`MAX_TRACE_THREADS`]; `window` to ≥ 1.
    pub fn new(threads: usize, window: usize) -> Self {
        let threads = threads.min(MAX_TRACE_THREADS);
        let window = window.max(1);
        Tracer {
            threads,
            window,
            lifecycles: VecDeque::with_capacity(window),
            dropped: 0,
            sample_every: 1,
            samples: VecDeque::with_capacity(window),
            samples_dropped: 0,
            dispatch_stalls: vec![[0; STALL_CAUSES]; threads],
            issue_stalls: vec![[0; STALL_CAUSES]; threads],
            last_dispatch: vec![StallCause::Empty; threads],
            last_issue: vec![StallCause::Empty; threads],
        }
    }

    /// Sets the occupancy sampling period: one sample every `every` cycles
    /// (clamped to ≥ 1). Longer periods stretch the bounded sample ring
    /// over a longer run.
    pub fn with_sampling(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// The number of hardware threads the attribution tables cover.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Clears all retained records, drop counters, and attribution tallies
    /// (e.g. at a warm-up/measurement boundary) while keeping the window
    /// and sampling configuration.
    pub fn reset(&mut self) {
        self.lifecycles.clear();
        self.dropped = 0;
        self.samples.clear();
        self.samples_dropped = 0;
        for row in &mut self.dispatch_stalls {
            *row = [0; STALL_CAUSES];
        }
        for row in &mut self.issue_stalls {
            *row = [0; STALL_CAUSES];
        }
        self.last_dispatch.fill(StallCause::Empty);
        self.last_issue.fill(StallCause::Empty);
    }

    /// The lifecycle/sample ring capacity.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records an instruction's end-of-life lifecycle. Evicts the oldest
    /// record when the ring is full (drop policy in the crate docs).
    pub fn record(&mut self, lc: Lifecycle) {
        if self.lifecycles.len() == self.window {
            self.lifecycles.pop_front();
            self.dropped += 1;
        }
        self.lifecycles.push_back(lc);
    }

    /// Whether `cycle` falls on the sampling grid.
    #[inline]
    pub fn wants_sample(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.sample_every)
    }

    /// Records an occupancy sample (call on sampling-grid cycles; see
    /// [`Tracer::wants_sample`]). Evicts the oldest sample when full.
    pub fn sample(&mut self, s: OccupancySample) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
            self.samples_dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// Tallies this cycle's dispatch-side attribution for `thread`.
    #[inline]
    pub fn attribute_dispatch(&mut self, thread: usize, cause: StallCause) {
        if let Some(row) = self.dispatch_stalls.get_mut(thread) {
            row[cause as usize] += 1;
            self.last_dispatch[thread] = cause;
        }
    }

    /// Tallies this cycle's issue-side attribution for `thread`.
    #[inline]
    pub fn attribute_issue(&mut self, thread: usize, cause: StallCause) {
        if let Some(row) = self.issue_stalls.get_mut(thread) {
            row[cause as usize] += 1;
            self.last_issue[thread] = cause;
        }
    }

    /// Re-applies the most recent per-thread attribution (both sides) `k`
    /// more times. The skip engine calls this when it fast-forwards an
    /// idle span: the span repeats the probed cycle exactly, so every
    /// skipped cycle carries the probe's stall causes, and the invariant
    /// that each thread's tallies sum to the driven cycle count holds.
    pub fn attribute_span(&mut self, k: u64) {
        for (t, row) in self.dispatch_stalls.iter_mut().enumerate() {
            row[self.last_dispatch[t] as usize] += k;
        }
        for (t, row) in self.issue_stalls.iter_mut().enumerate() {
            row[self.last_issue[t] as usize] += k;
        }
    }

    /// The occupancy sampling period (cycles between samples).
    pub fn sample_period(&self) -> u64 {
        self.sample_every
    }

    /// The retained lifecycle records, oldest first.
    pub fn lifecycles(&self) -> impl Iterator<Item = &Lifecycle> {
        self.lifecycles.iter()
    }

    /// Lifecycle records evicted by the drop policy.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained occupancy samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &OccupancySample> {
        self.samples.iter()
    }

    /// Occupancy samples evicted by the drop policy.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    /// Dispatch-side attribution counters for `thread`, indexed by
    /// `StallCause as usize`.
    pub fn dispatch_stalls(&self, thread: usize) -> &[u64; STALL_CAUSES] {
        &self.dispatch_stalls[thread]
    }

    /// Issue-side attribution counters for `thread`, indexed by
    /// `StallCause as usize`.
    pub fn issue_stalls(&self, thread: usize) -> &[u64; STALL_CAUSES] {
        &self.issue_stalls[thread]
    }

    /// Exports everything as JSONL: one `meta` line, then `inst` lines
    /// (oldest first), `occ` lines (oldest first), and one `stalls` line
    /// per thread per side. Deterministic: identical tracer state yields
    /// byte-identical output.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::with_capacity(128 * (self.lifecycles.len() + self.samples.len()));
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"threads\":{},\"window\":{},\"dropped\":{},\"samples_dropped\":{},\"sample_every\":{}}}",
            self.threads, self.window, self.dropped, self.samples_dropped, self.sample_every
        );
        for lc in &self.lifecycles {
            Self::write_inst_line(&mut out, lc);
        }
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{{\"type\":\"occ\",\"cycle\":{},\"rob\":{},\"iq\":{},\"lq\":{},\"sq\":{},\"shelf\":{},\"prf\":{},\"frontend\":{}}}",
                s.cycle, s.rob, s.iq, s.lq, s.sq, s.shelf, s.prf, s.frontend
            );
        }
        for (side, table) in [
            ("dispatch", &self.dispatch_stalls),
            ("issue", &self.issue_stalls),
        ] {
            for (t, row) in table.iter().enumerate() {
                let _ = write!(
                    out,
                    "{{\"type\":\"stalls\",\"side\":\"{side}\",\"thread\":{t}"
                );
                for cause in StallCause::ALL {
                    let _ = write!(out, ",\"{}\":{}", cause.as_str(), row[cause as usize]);
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// One `{"type":"inst",...}` JSONL line for `lc` (shared by the full
    /// export and the divergence-window export; byte-deterministic).
    fn write_inst_line(out: &mut String, lc: &Lifecycle) {
        let _ = write!(
            out,
            "{{\"type\":\"inst\",\"thread\":{},\"seq\":{},\"pc\":\"{:#x}\",\"op\":\"{}\",\"queue\":\"{}\",\"fetch\":{},\"dispatch\":{},",
            lc.thread, lc.seq, lc.pc, lc.op, lc.queue.as_str(), lc.fetch, lc.dispatch
        );
        match lc.issue {
            Some(c) => {
                let _ = write!(out, "\"issue\":{c},");
            }
            None => out.push_str("\"issue\":null,"),
        }
        match lc.writeback {
            Some(c) => {
                let _ = write!(out, "\"writeback\":{c},");
            }
            None => out.push_str("\"writeback\":null,"),
        }
        let _ = writeln!(
            out,
            "\"end\":{},\"end_kind\":\"{}\"}}",
            lc.end,
            lc.end_kind.as_str()
        );
    }

    /// Exports only the lifecycles of `thread` whose sequence numbers fall
    /// within `radius` of `seq`, as JSONL (a window meta line followed by
    /// `inst` lines in retention order). Used by the differential
    /// validation harness to dump the pipeline context around the first
    /// divergent instruction; byte-deterministic like [`Self::export_jsonl`].
    pub fn export_window_jsonl(&self, thread: u8, seq: u64, radius: u64) -> String {
        let lo = seq.saturating_sub(radius);
        let hi = seq.saturating_add(radius);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"window\",\"thread\":{thread},\"seq\":{seq},\"lo\":{lo},\"hi\":{hi},\"dropped\":{}}}",
            self.dropped
        );
        for lc in &self.lifecycles {
            if lc.thread == thread && lc.seq >= lo && lc.seq <= hi {
                Self::write_inst_line(&mut out, lc);
            }
        }
        out
    }

    /// Exports a Chrome trace-event JSON document loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are simulator cycles. Each retained
    /// lifecycle becomes one complete ("X") slice on `pid = thread`, laned
    /// by `tid = seq % 64` so concurrent in-flight instructions render on
    /// separate rows; per-stage cycles ride in `args`. Occupancy samples
    /// become counter ("C") events on pid 0. Deterministic output.
    pub fn export_chrome(&self) -> String {
        let mut out = String::with_capacity(192 * (self.lifecycles.len() + self.samples.len()));
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n  ");
        };
        for t in 0..self.threads {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{t},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"thread {t}\"}}}}"
            );
        }
        for lc in &self.lifecycles {
            sep(&mut out);
            let dur = lc.end.saturating_sub(lc.fetch).max(1);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"name\":\"{}@{:#x}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"seq\":{},\"fetch\":{},\"dispatch\":{},\"issue\":{},\"writeback\":{},\"end\":{},\"end_kind\":\"{}\"}}}}",
                lc.op,
                lc.pc,
                lc.queue.as_str(),
                lc.thread,
                lc.seq % 64,
                lc.fetch,
                dur,
                lc.seq,
                lc.fetch,
                lc.dispatch,
                lc.issue.map_or(-1i64, |c| c as i64),
                lc.writeback.map_or(-1i64, |c| c as i64),
                lc.end,
                lc.end_kind.as_str()
            );
        }
        for s in &self.samples {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"name\":\"occupancy\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\"rob\":{},\"iq\":{},\"lq\":{},\"sq\":{},\"shelf\":{},\"prf\":{},\"frontend\":{}}}}}",
                s.cycle, s.rob, s.iq, s.lq, s.sq, s.shelf, s.prf, s.frontend
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Audits the accounting invariants a cycle-exact replay (tick-by-tick
    /// or skip-engine fast-forward, whole-core or per-thread partial) must
    /// preserve, given that `cycles` driver cycles were attributed:
    ///
    /// 1. Every retained occupancy sample lies on the sampling grid
    ///    (`cycle % sample_every == 0`) — a misaligned span replay would
    ///    emit off-grid samples.
    /// 2. Per thread and per side, the stall tallies sum exactly to
    ///    `cycles` — one attribution per thread per cycle, no cycle lost
    ///    or double-counted by a skipped or reduced span.
    ///
    /// Returns the first violation as a human-readable message.
    pub fn check_invariants(&self, cycles: u64) -> Result<(), String> {
        for s in &self.samples {
            if !s.cycle.is_multiple_of(self.sample_every) {
                return Err(format!(
                    "occupancy sample at cycle {} is off the {}-cycle grid",
                    s.cycle, self.sample_every
                ));
            }
        }
        for (side, table) in [
            ("dispatch", &self.dispatch_stalls),
            ("issue", &self.issue_stalls),
        ] {
            for (t, row) in table.iter().enumerate() {
                let total: u64 = row.iter().sum();
                if total != cycles {
                    return Err(format!(
                        "thread {t} {side} tallies sum to {total}, expected {cycles}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// A human-readable per-thread stall-attribution summary (percent of
    /// attributed cycles per cause, causes with zero tallies omitted).
    pub fn stall_summary(&self) -> String {
        let mut out = String::new();
        for (side, table) in [
            ("dispatch", &self.dispatch_stalls),
            ("issue", &self.issue_stalls),
        ] {
            for (t, row) in table.iter().enumerate() {
                let total: u64 = row.iter().sum();
                if total == 0 {
                    continue;
                }
                let _ = write!(out, "T{t} {side:<8}");
                for cause in StallCause::ALL {
                    let n = row[cause as usize];
                    if n == 0 {
                        continue;
                    }
                    let _ = write!(
                        out,
                        "  {} {:.1}%",
                        cause.as_str(),
                        100.0 * n as f64 / total as f64
                    );
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc(seq: u64, end: u64) -> Lifecycle {
        Lifecycle {
            thread: 0,
            seq,
            pc: 0x40_0000 + 4 * seq,
            op: OpClass::IntAlu,
            queue: QueueKind::Iq,
            fetch: end.saturating_sub(8),
            dispatch: end.saturating_sub(2),
            issue: Some(end.saturating_sub(1)),
            writeback: Some(end),
            end,
            end_kind: EndKind::Commit,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut tr = Tracer::new(1, 2);
        tr.record(lc(0, 10));
        tr.record(lc(1, 11));
        tr.record(lc(2, 12));
        assert_eq!(tr.dropped(), 1);
        let seqs: Vec<u64> = tr.lifecycles().map(|l| l.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn sample_ring_is_bounded() {
        let mut tr = Tracer::new(1, 3);
        for c in 0..5 {
            tr.sample(OccupancySample {
                cycle: c,
                ..Default::default()
            });
        }
        assert_eq!(tr.samples_dropped(), 2);
        assert_eq!(tr.samples().next().unwrap().cycle, 2);
    }

    #[test]
    fn sampling_grid_respects_period() {
        let tr = Tracer::new(1, 4).with_sampling(8);
        assert!(tr.wants_sample(0));
        assert!(!tr.wants_sample(7));
        assert!(tr.wants_sample(16));
    }

    #[test]
    fn attribution_tallies_by_cause() {
        let mut tr = Tracer::new(2, 4);
        tr.attribute_dispatch(0, StallCause::IqFull);
        tr.attribute_dispatch(0, StallCause::IqFull);
        tr.attribute_dispatch(1, StallCause::Progress);
        tr.attribute_issue(1, StallCause::DataWait);
        assert_eq!(tr.dispatch_stalls(0)[StallCause::IqFull as usize], 2);
        assert_eq!(tr.dispatch_stalls(1)[StallCause::Progress as usize], 1);
        assert_eq!(tr.issue_stalls(1)[StallCause::DataWait as usize], 1);
        // Out-of-range threads are ignored, not a panic.
        tr.attribute_dispatch(9, StallCause::Empty);
    }

    #[test]
    fn invariant_check_accepts_exact_replay_and_rejects_misalignment() {
        // A faithful replay: 3 attributed cycles per thread per side (one
        // per-cycle tally plus a 2-cycle span), samples on the 8-grid.
        let mut tr = Tracer::new(2, 8).with_sampling(8);
        for t in 0..2 {
            tr.attribute_dispatch(t, StallCause::Progress);
            tr.attribute_issue(t, StallCause::DataWait);
        }
        tr.attribute_span(2);
        tr.sample(OccupancySample {
            cycle: 16,
            ..Default::default()
        });
        assert_eq!(tr.check_invariants(3), Ok(()));

        // A span replayed at the wrong length breaks the sum invariant.
        assert!(tr
            .check_invariants(4)
            .unwrap_err()
            .contains("sum to 3, expected 4"));

        // A misaligned sample (e.g. a skip span sampling from the wrong
        // base cycle) breaks grid alignment.
        tr.sample(OccupancySample {
            cycle: 21,
            ..Default::default()
        });
        assert!(tr
            .check_invariants(3)
            .unwrap_err()
            .contains("off the 8-cycle grid"));
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let mut tr = Tracer::new(1, 4);
        tr.record(lc(0, 10));
        tr.record(Lifecycle {
            issue: None,
            writeback: None,
            end_kind: EndKind::Squash,
            ..lc(1, 12)
        });
        tr.sample(OccupancySample {
            cycle: 3,
            rob: 5,
            ..Default::default()
        });
        let out = tr.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        // meta + 2 inst + 1 occ + 2 stalls lines (1 thread x 2 sides).
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"issue\":9"));
        assert!(lines[2].contains("\"issue\":null"));
        assert!(lines[2].contains("\"end_kind\":\"squash\""));
        assert!(lines[3].contains("\"rob\":5"));
        for line in lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
    }

    #[test]
    fn window_export_filters_by_thread_and_seq_radius() {
        let mut tr = Tracer::new(2, 32);
        for s in 0..12 {
            tr.record(lc(s, 20 + s));
        }
        tr.record(Lifecycle {
            thread: 1,
            ..lc(6, 40)
        });
        let out = tr.export_window_jsonl(0, 6, 2);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"type\":\"window\""));
        assert!(lines[0].contains("\"lo\":4,\"hi\":8"));
        // Window meta + seqs 4..=8 of thread 0 only.
        assert_eq!(lines.len(), 6);
        for (line, seq) in lines[1..].iter().zip(4u64..) {
            assert!(line.contains(&format!("\"seq\":{seq}")), "bad line: {line}");
            assert!(line.contains("\"thread\":0"));
        }
        // Radius clamps at zero instead of underflowing.
        let low = tr.export_window_jsonl(0, 1, 5);
        assert!(low.lines().next().unwrap().contains("\"lo\":0"));
        // Deterministic.
        assert_eq!(out, tr.export_window_jsonl(0, 6, 2));
    }

    #[test]
    fn chrome_export_has_slices_and_counters() {
        let mut tr = Tracer::new(2, 4);
        tr.record(lc(7, 20));
        tr.sample(OccupancySample {
            cycle: 20,
            iq: 9,
            ..Default::default()
        });
        let out = tr.export_chrome();
        assert!(out.starts_with("{\"displayTimeUnit\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"ph\":\"M\""));
        assert!(out.contains("int_alu@0x40001c"));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let mut tr = Tracer::new(2, 8);
            for s in 0..10 {
                tr.record(lc(s, 10 + s));
                tr.sample(OccupancySample {
                    cycle: s,
                    rob: s as u32,
                    ..Default::default()
                });
            }
            tr.attribute_issue(1, StallCause::FuBusy);
            tr
        };
        assert_eq!(build().export_jsonl(), build().export_jsonl());
        assert_eq!(build().export_chrome(), build().export_chrome());
    }
}
