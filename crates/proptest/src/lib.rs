//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this minimal implementation of the proptest API surface
//! the test suite uses: the [`Strategy`] trait with `prop_map`/`boxed`,
//! range/tuple/`Just`/`any`/string-pattern/collection strategies, the
//! `prop_oneof!` union, and the `proptest!`/`prop_assert!` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its generated inputs and
//!   panics immediately.
//! - **No regression persistence.** `.proptest-regressions` files are not
//!   read or written; recorded cases worth keeping must be promoted to
//!   explicit deterministic tests.
//! - **Deterministic seeding.** Each test's stream is a pure function of its
//!   fully-qualified name (XOR-combined with `PROPTEST_SEED` if set), so
//!   failures reproduce exactly across runs. `PROPTEST_CASES` overrides the
//!   per-test case count.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each generated test runs `ProptestConfig::cases` deterministic cases; a
/// panic inside the body (including from `prop_assert!`) reports the
/// offending inputs and re-raises.
#[macro_export]
macro_rules! proptest {
    (@body ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __vals =
                    ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng) ),+ , );
                let __repr = format!("{:?}", __vals);
                let __outcome =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        let ( $($pat),+ , ) = __vals;
                        $body
                    }));
                if let Err(__err) = __outcome {
                    eprintln!(
                        "proptest shim: case {}/{} of `{}` failed with inputs {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __repr
                    );
                    ::std::panic::resume_unwind(__err);
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a proptest body (panics on failure; the shim
/// does not shrink, so this is `assert!` plus input reporting by the runner).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}
