//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// An inclusive size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size` (a `usize`, `Range`, or `RangeInclusive`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn length_respects_bounds() {
        let mut rng = rng_for("collection::length");
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u8..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}
