//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// draws one concrete value from the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Erases the strategy type (used by `prop_oneof!` to mix heterogeneous
    /// arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`bool` and the primitive
/// integers in this shim).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A `&str` is treated as a simplified regex pattern producing matching
/// strings (see [`crate::string`] for the supported subset).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for("strategy::ranges");
        for _ in 0..1000 {
            let a = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = rng_for("strategy::compose");
        let s = crate::prop_oneof![(0u32..10).prop_map(|v| v * 2), Just(99u32),];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng_for("strategy::tuples");
        let (a, b, c) = (1u8..3, 10u64..20, any::<bool>()).generate(&mut rng);
        assert!((1..3).contains(&a));
        assert!((10..20).contains(&b));
        let _: bool = c;
    }
}
