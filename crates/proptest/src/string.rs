//! String generation from a simplified regex subset.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]`
//! (ranges and singletons), `.` (lowercase letter), and the repetition
//! suffixes `{m}`, `{m,n}`, `?`, `+`, `*` (unbounded forms capped at 8).
//! This covers the patterns used in the test suite (e.g. `"[a-z]{1,8}"`);
//! anything fancier should be generated with `prop_map` instead.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// Generates one string matching `pattern` (within the supported subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<char> = match chars[i] {
            '[' => {
                i += 1;
                let mut class = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (a, b) = (chars[i], chars[i + 2]);
                        assert!(a <= b, "invalid class range {a}-{b} in pattern {pattern:?}");
                        class.extend(a..=b);
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                class
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    other => vec![other],
                }
            }
            '.' => {
                i += 1;
                ('a'..='z').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = parse_repetition(&chars, &mut i, pattern);
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

/// Parses an optional repetition suffix at `*i`, returning `(min, max)`.
fn parse_repetition(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad repetition bound in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn class_with_bounded_repetition() {
        let mut rng = rng_for("string::class");
        for _ in 0..500 {
            let s = generate_from_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_digits() {
        let mut rng = rng_for("string::literals");
        let s = generate_from_pattern("id-\\d{3}", &mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("id-"));
        assert!(s[3..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn optional_and_star() {
        let mut rng = rng_for("string::rep");
        for _ in 0..200 {
            let s = generate_from_pattern("x?[0-1]*", &mut rng);
            assert!(s.len() <= 9);
        }
    }
}
