//! Test-runner configuration and deterministic seeding.

use rand::SeedableRng as _;

/// The RNG driving all generation: the workspace's deterministic
/// xoshiro256++ [`rand::rngs::SmallRng`].
pub type TestRng = rand::rngs::SmallRng;

/// Runner configuration. Only `cases` is honoured by the shim; the other
/// fields exist so `..ProptestConfig::default()` struct updates written
/// against the real crate keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// Builds the RNG for one test: seeded from the FNV-1a hash of the test's
/// fully-qualified name, XOR-combined with `PROPTEST_SEED` when set, so each
/// test draws an independent but reproducible stream.
pub fn rng_for(test_path: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let env_seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    TestRng::seed_from_u64(hash ^ env_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore as _;

    #[test]
    fn streams_are_deterministic_and_name_dependent() {
        let mut a = rng_for("mod::test_a");
        let mut b = rng_for("mod::test_a");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for("mod::test_b");
        let mut d = rng_for("mod::test_a");
        d.next_u64();
        assert_ne!(c.next_u64(), d.next_u64());
    }
}
