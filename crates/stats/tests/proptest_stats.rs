//! Property tests for the statistics helpers.

use proptest::prelude::*;
use shelfsim_stats::{geomean, mean, median, min_median_max_indices, stp, WeightedCdf};

proptest! {
    #[test]
    fn cdf_is_monotonic_and_normalized(lengths in prop::collection::vec(1u64..200, 1..100)) {
        let mut cdf = WeightedCdf::new();
        for &l in &lengths {
            cdf.record(l);
        }
        let max = cdf.max_length().expect("non-empty");
        let mut prev = 0.0;
        for l in 0..=max {
            let f = cdf.fraction_at_or_below(l);
            prop_assert!(f >= prev - 1e-12, "CDF must be monotonic");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
            prev = f;
        }
        prop_assert!((cdf.fraction_at_or_below(max) - 1.0).abs() < 1e-12);
        prop_assert_eq!(cdf.total_weight(), lengths.iter().sum::<u64>());
    }

    #[test]
    fn quantile_is_consistent_with_cdf(
        lengths in prop::collection::vec(1u64..100, 1..60),
        q in 0.0f64..=1.0,
    ) {
        let mut cdf = WeightedCdf::new();
        for &l in &lengths {
            cdf.record(l);
        }
        let at = cdf.quantile(q).expect("non-empty");
        prop_assert!(cdf.fraction_at_or_below(at) >= q - 1e-9);
        if at > 1 {
            prop_assert!(cdf.fraction_at_or_below(at - 1) < q + 1e-9);
        }
    }

    #[test]
    fn geomean_bounded_by_min_max(values in prop::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
        prop_assert!(g <= mean(&values) + 1e-9, "AM-GM inequality");
    }

    #[test]
    fn median_is_an_element(values in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let m = median(&values);
        prop_assert!(values.iter().any(|&v| (v - m).abs() < 1e-12));
        let below = values.iter().filter(|&&v| v < m).count();
        prop_assert!(below <= values.len() / 2);
    }

    #[test]
    fn min_median_max_are_ordered(values in prop::collection::vec(-50.0f64..50.0, 1..40)) {
        let (lo, med, hi) = min_median_max_indices(&values);
        prop_assert!(values[lo] <= values[med]);
        prop_assert!(values[med] <= values[hi]);
    }

    #[test]
    fn stp_is_bounded_by_thread_count(
        st in prop::collection::vec(0.1f64..50.0, 1..8),
        slowdown in prop::collection::vec(1.0f64..20.0, 8),
    ) {
        // MT CPI = ST CPI * slowdown (>= 1): each term <= 1, so STP <= n.
        let mt: Vec<f64> = st.iter().zip(&slowdown).map(|(&s, &k)| s * k).collect();
        let v = stp(&st, &mt[..st.len()]);
        prop_assert!(v > 0.0);
        prop_assert!(v <= st.len() as f64 + 1e-9);
    }
}
