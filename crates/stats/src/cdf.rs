//! Weighted cumulative distributions of series lengths (paper Figure 2).

use std::collections::BTreeMap;

/// A cumulative distribution of series lengths, weighted by the number of
/// instructions in each series (i.e., by the series length itself).
///
/// Paper Figure 2 plots, for consecutive runs of in-sequence or reordered
/// instructions, the fraction of *instructions* that live in series of at
/// most a given length. A series of length `L` containing `L` instructions
/// therefore contributes weight `L` at length `L`.
///
/// # Example
///
/// ```
/// use shelfsim_stats::WeightedCdf;
///
/// let mut cdf = WeightedCdf::new();
/// cdf.record(2); // two instructions in a 2-series
/// cdf.record(8); // eight instructions in an 8-series
/// assert!((cdf.fraction_at_or_below(2) - 0.2).abs() < 1e-12);
/// assert!((cdf.fraction_at_or_below(8) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WeightedCdf {
    counts: BTreeMap<u64, u64>,
    total_weight: u64,
}

impl WeightedCdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one series of `length` instructions.
    ///
    /// Series of length zero are ignored (they contain no instructions).
    pub fn record(&mut self, length: u64) {
        if length == 0 {
            return;
        }
        *self.counts.entry(length).or_insert(0) += 1;
        self.total_weight += length;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &WeightedCdf) {
        for (&len, &n) in &other.counts {
            *self.counts.entry(len).or_insert(0) += n;
            self.total_weight += len * n;
        }
    }

    /// Total number of instructions across all recorded series.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of recorded series.
    pub fn num_series(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of instructions living in series of length `<= length`.
    ///
    /// Returns 0.0 for an empty distribution.
    pub fn fraction_at_or_below(&self, length: u64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.range(..=length).map(|(&l, &n)| l * n).sum();
        below as f64 / self.total_weight as f64
    }

    /// Smallest series length `L` such that at least `q` (0..=1) of the
    /// instruction weight lies in series of length `<= L`.
    ///
    /// `q = 0.0` is defined as the minimum recorded series length: zero
    /// weight is covered by any recorded length, and the smallest one is
    /// the unique tightest answer. (Previously this fell out of the
    /// accumulation loop by accident — `target` rounded to 0, so the first
    /// map entry always satisfied it; the behavior is now explicit and
    /// pinned by a test.)
    ///
    /// Returns `None` for an empty distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total_weight == 0 {
            return None;
        }
        if q == 0.0 {
            return self.counts.keys().next().copied();
        }
        let target = (q * self.total_weight as f64).ceil() as u64;
        let mut acc = 0u64;
        for (&len, &n) in &self.counts {
            acc += len * n;
            if acc >= target {
                return Some(len);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Maximum recorded series length.
    pub fn max_length(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean series length weighted by instruction count (the "average group
    /// size" of paper §I, reported as 5–20 instructions).
    pub fn weighted_mean_length(&self) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let sq: u64 = self.counts.iter().map(|(&l, &n)| l * l * n).sum();
        sq as f64 / self.total_weight as f64
    }

    /// Plain (unweighted) mean series length.
    pub fn mean_length(&self) -> f64 {
        let n = self.num_series();
        if n == 0 {
            return 0.0;
        }
        self.total_weight as f64 / n as f64
    }

    /// The CDF evaluated at each length in `lengths`, for plotting.
    pub fn sample(&self, lengths: &[u64]) -> Vec<(u64, f64)> {
        lengths
            .iter()
            .map(|&l| (l, self.fraction_at_or_below(l)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_is_zero() {
        let cdf = WeightedCdf::new();
        assert_eq!(cdf.fraction_at_or_below(100), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.max_length(), None);
        assert_eq!(cdf.mean_length(), 0.0);
    }

    #[test]
    fn zero_length_series_ignored() {
        let mut cdf = WeightedCdf::new();
        cdf.record(0);
        assert_eq!(cdf.total_weight(), 0);
        assert_eq!(cdf.num_series(), 0);
    }

    #[test]
    fn weighting_by_length() {
        let mut cdf = WeightedCdf::new();
        // 10 series of length 1 (10 instructions) and 1 series of length 90.
        for _ in 0..10 {
            cdf.record(1);
        }
        cdf.record(90);
        assert_eq!(cdf.total_weight(), 100);
        assert!((cdf.fraction_at_or_below(1) - 0.10).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(89) - 0.10).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(90) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_finds_covering_length() {
        let mut cdf = WeightedCdf::new();
        cdf.record(10);
        cdf.record(30);
        cdf.record(60);
        // 10% of weight at length 10; 40% at <=30; 100% at <=60.
        assert_eq!(cdf.quantile(0.05), Some(10));
        assert_eq!(cdf.quantile(0.4), Some(30));
        assert_eq!(cdf.quantile(0.99), Some(60));
        assert_eq!(cdf.quantile(1.0), Some(60));
    }

    #[test]
    fn quantile_zero_is_minimum_recorded_length() {
        let mut cdf = WeightedCdf::new();
        cdf.record(30);
        cdf.record(10);
        cdf.record(60);
        // q = 0 is defined as the minimum recorded length, regardless of
        // how the weight is distributed.
        assert_eq!(cdf.quantile(0.0), Some(10));
        // Empty distribution still has no answer at q = 0.
        assert_eq!(WeightedCdf::new().quantile(0.0), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WeightedCdf::new();
        a.record(5);
        let mut b = WeightedCdf::new();
        b.record(5);
        b.record(10);
        a.merge(&b);
        assert_eq!(a.total_weight(), 20);
        assert_eq!(a.num_series(), 3);
    }

    #[test]
    fn weighted_mean_exceeds_plain_mean() {
        let mut cdf = WeightedCdf::new();
        cdf.record(1);
        cdf.record(99);
        assert!((cdf.mean_length() - 50.0).abs() < 1e-12);
        // Weighted by instructions: almost all instructions are in the big series.
        assert!(cdf.weighted_mean_length() > 95.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = WeightedCdf::new().quantile(1.5);
    }

    #[test]
    fn sample_returns_pairs() {
        let mut cdf = WeightedCdf::new();
        cdf.record(4);
        let pts = cdf.sample(&[1, 4, 8]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], (4, 1.0));
    }
}
