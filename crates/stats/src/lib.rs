//! Multiprogram performance metrics and statistics helpers for `shelfsim`.
//!
//! Implements the metrics the paper reports: system throughput (STP, Eyerman
//! & Eeckhout), average normalized turnaround time (ANTT), weighted
//! cumulative distributions of series lengths (Figure 2), and the usual
//! aggregate helpers (geometric mean, median selection).
//!
//! # Example
//!
//! ```
//! use shelfsim_stats::stp;
//!
//! // Two threads, each running at half its single-threaded speed: STP = 1.0.
//! let v = stp(&[1.0, 2.0], &[2.0, 4.0]);
//! assert!((v - 1.0).abs() < 1e-12);
//! ```

pub mod cdf;
pub mod summary;

pub use cdf::WeightedCdf;
pub use summary::{
    geomean, grouped_geomean, mean, median, min_median_max_indices, percent_delta, render_delta,
    Tally,
};

/// System throughput (STP) of a multiprogram execution.
///
/// `STP = Σ_i CPI_i^ST / CPI_i^MT` — the sum over threads of the ratio of
/// each program's single-threaded CPI to its CPI in the multithreaded mix
/// (Eyerman & Eeckhout, IEEE Micro 2008; paper §V). It reflects the number of
/// programs completed per unit time and incorporates fairness: a thread that
/// is starved contributes little.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or any CPI is not
/// strictly positive.
pub fn stp(single_thread_cpi: &[f64], multi_thread_cpi: &[f64]) -> f64 {
    assert_eq!(
        single_thread_cpi.len(),
        multi_thread_cpi.len(),
        "per-thread CPI slices must be the same length"
    );
    assert!(
        !single_thread_cpi.is_empty(),
        "at least one thread required"
    );
    single_thread_cpi
        .iter()
        .zip(multi_thread_cpi)
        .map(|(&st, &mt)| {
            assert!(st > 0.0 && mt > 0.0, "CPI values must be positive");
            st / mt
        })
        .sum()
}

/// Average normalized turnaround time (ANTT), the fairness-oriented
/// complement of [`stp`]: `ANTT = (1/n) Σ_i CPI_i^MT / CPI_i^ST`.
///
/// Lower is better. Not reported in the paper's figures but useful when
/// exploring steering policies.
///
/// # Panics
///
/// Panics under the same conditions as [`stp`].
pub fn antt(single_thread_cpi: &[f64], multi_thread_cpi: &[f64]) -> f64 {
    assert_eq!(single_thread_cpi.len(), multi_thread_cpi.len());
    assert!(!single_thread_cpi.is_empty());
    let n = single_thread_cpi.len() as f64;
    single_thread_cpi
        .iter()
        .zip(multi_thread_cpi)
        .map(|(&st, &mt)| {
            assert!(st > 0.0 && mt > 0.0, "CPI values must be positive");
            mt / st
        })
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_of_perfect_smt_is_thread_count() {
        // If SMT were free, each thread would retain its ST CPI.
        let st = [1.5, 0.8, 2.0, 1.0];
        let v = stp(&st, &st);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stp_weights_slowdown_per_thread() {
        let v = stp(&[1.0, 1.0], &[4.0, 4.0]);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn antt_of_no_slowdown_is_one() {
        let st = [1.0, 2.0];
        assert!((antt(&st, &st) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn stp_rejects_mismatched_lengths() {
        let _ = stp(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stp_rejects_zero_cpi() {
        let _ = stp(&[0.0], &[1.0]);
    }
}
