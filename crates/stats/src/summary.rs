//! Aggregate helpers: geometric mean, median selection, percentage deltas.

/// Geometric mean of a slice of positive values.
///
/// The paper reports geometric means across the 28 workload mixes
/// (Figure 10). Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median (lower middle element for even lengths). Returns 0.0 for an empty
/// slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median requires orderable values"));
    v[(v.len() - 1) / 2]
}

/// Indices of the minimum, median, and maximum elements.
///
/// The paper reports "the benchmark mix with the maximum, minimum, and median
/// STP improvement over the baseline" (§V); this selects those mixes.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn min_median_max_indices(values: &[f64]) -> (usize, usize, usize) {
    assert!(!values.is_empty(), "cannot select from an empty slice");
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("orderable values"));
    let min = order[0];
    let med = order[(order.len() - 1) / 2];
    let max = order[order.len() - 1];
    (min, med, max)
}

/// Percentage change from `base` to `new` (`+11.5` means 11.5% better).
///
/// # Panics
///
/// Panics if `base` is zero.
pub fn percent_delta(base: f64, new: f64) -> f64 {
    assert!(base != 0.0, "cannot compute a percentage delta from zero");
    (new - base) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let v = [1.0, 4.0];
        assert!(geomean(&v) < mean(&v));
        assert!((geomean(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, -1.0]);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn min_median_max_selection() {
        let v = [5.0, 1.0, 3.0, 9.0, 2.0];
        let (lo, med, hi) = min_median_max_indices(&v);
        assert_eq!(v[lo], 1.0);
        assert_eq!(v[med], 3.0);
        assert_eq!(v[hi], 9.0);
    }

    #[test]
    fn percent_delta_signs() {
        assert!((percent_delta(2.0, 2.2) - 10.0).abs() < 1e-9);
        assert!((percent_delta(2.0, 1.8) + 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn min_median_max_rejects_empty() {
        let _ = min_median_max_indices(&[]);
    }
}
