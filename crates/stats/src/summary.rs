//! Aggregate helpers: geometric mean, median selection, percentage deltas,
//! and campaign-level aggregation (outcome tallies, per-group geomeans).

use std::collections::BTreeMap;

/// Geometric mean of a slice of positive values.
///
/// The paper reports geometric means across the 28 workload mixes
/// (Figure 10). Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median (lower middle element for even lengths). Returns 0.0 for an empty
/// slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median requires orderable values"));
    v[(v.len() - 1) / 2]
}

/// Indices of the minimum, median, and maximum elements.
///
/// The paper reports "the benchmark mix with the maximum, minimum, and median
/// STP improvement over the baseline" (§V); this selects those mixes.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn min_median_max_indices(values: &[f64]) -> (usize, usize, usize) {
    assert!(!values.is_empty(), "cannot select from an empty slice");
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("orderable values"));
    let min = order[0];
    let med = order[(order.len() - 1) / 2];
    let max = order[order.len() - 1];
    (min, med, max)
}

/// Percentage change from `base` to `new` (`Some(11.5)` means 11.5%
/// better).
///
/// Returns `None` when the baseline is zero or either value is not finite:
/// a baseline run that committed nothing (IPC 0.0, e.g. after
/// `max-cycles-expired`) has no meaningful percentage delta, and callers
/// render the degenerate case as `n/a` instead of aborting.
pub fn percent_delta(base: f64, new: f64) -> Option<f64> {
    if base == 0.0 || !base.is_finite() || !new.is_finite() {
        return None;
    }
    Some((new - base) / base * 100.0)
}

/// Renders a [`percent_delta`] result as a signed percentage, or `n/a` for
/// the degenerate zero/non-finite baseline case.
pub fn render_delta(delta: Option<f64>) -> String {
    match delta {
        Some(d) => format!("{d:+.1}%"),
        None => "n/a".to_owned(),
    }
}

/// An ordered multiset counter for outcome taxonomies (campaign run
/// statuses, failure kinds, retry tiers). Keys render in sorted order so
/// summaries are deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    counts: BTreeMap<String, u64>,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `key` by one.
    pub fn add(&mut self, key: &str) {
        self.add_n(key, 1);
    }

    /// Increments `key` by `n`.
    pub fn add_n(&mut self, key: &str, n: u64) {
        *self.counts.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Count recorded for `key` (0 if never seen).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total across all keys.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// True when nothing has been tallied.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// `(key, count)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders as `key=count` pairs separated by spaces (key order).
    pub fn render(&self) -> String {
        self.counts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Groups `(key, value)` pairs by key and returns `(key, geomean, count)`
/// per group, in key order. The campaign runner uses this to aggregate
/// per-design IPC over whatever subset of runs completed (graceful
/// degradation: failed runs simply contribute no pair).
///
/// # Panics
///
/// Panics if any value is not strictly positive (see [`geomean`]).
pub fn grouped_geomean(pairs: &[(String, f64)]) -> Vec<(String, f64, usize)> {
    let mut groups: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for (k, v) in pairs {
        groups.entry(k.as_str()).or_default().push(*v);
    }
    groups
        .into_iter()
        .map(|(k, vs)| (k.to_owned(), geomean(&vs), vs.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tally_counts_and_renders_deterministically() {
        let mut t = Tally::new();
        t.add("panic");
        t.add("ok");
        t.add("panic");
        t.add_n("deadlock", 3);
        assert_eq!(t.count("panic"), 2);
        assert_eq!(t.count("missing"), 0);
        assert_eq!(t.total(), 6);
        assert_eq!(t.render(), "deadlock=3 ok=1 panic=2");
        assert!(!t.is_empty());
        assert!(Tally::new().is_empty());
    }

    #[test]
    fn grouped_geomean_groups_by_key() {
        let pairs = vec![
            ("b".to_owned(), 2.0),
            ("a".to_owned(), 4.0),
            ("b".to_owned(), 8.0),
        ];
        let g = grouped_geomean(&pairs);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, "a");
        assert!((g[0].1 - 4.0).abs() < 1e-12);
        assert_eq!(g[0].2, 1);
        assert_eq!(g[1].0, "b");
        assert!((g[1].1 - 4.0).abs() < 1e-12);
        assert_eq!(g[1].2, 2);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let v = [1.0, 4.0];
        assert!(geomean(&v) < mean(&v));
        assert!((geomean(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, -1.0]);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn min_median_max_selection() {
        let v = [5.0, 1.0, 3.0, 9.0, 2.0];
        let (lo, med, hi) = min_median_max_indices(&v);
        assert_eq!(v[lo], 1.0);
        assert_eq!(v[med], 3.0);
        assert_eq!(v[hi], 9.0);
    }

    #[test]
    fn percent_delta_signs() {
        assert!((percent_delta(2.0, 2.2).expect("nonzero base") - 10.0).abs() < 1e-9);
        assert!((percent_delta(2.0, 1.8).expect("nonzero base") + 10.0).abs() < 1e-9);
    }

    #[test]
    fn percent_delta_zero_or_nonfinite_baseline_is_none() {
        // A run that commits nothing yields IPC 0.0; comparing against it
        // must degrade to `n/a`, not abort the process.
        assert_eq!(percent_delta(0.0, 1.5), None);
        assert_eq!(percent_delta(f64::NAN, 1.5), None);
        assert_eq!(percent_delta(2.0, f64::INFINITY), None);
        assert_eq!(render_delta(None), "n/a");
        assert_eq!(render_delta(Some(12.34)), "+12.3%");
        assert_eq!(render_delta(Some(-5.0)), "-5.0%");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn min_median_max_rejects_empty() {
        let _ = min_median_max_indices(&[]);
    }
}
