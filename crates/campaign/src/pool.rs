//! Work-stealing job distribution for sweep-scale campaigns.
//!
//! The original runner handed every worker the same `Mutex<VecDeque>`; at
//! a handful of runs the contention is irrelevant, but a full-matrix sweep
//! (thousands of short runs) turns the single lock into a serialization
//! point. Here each worker owns a local deque seeded with a contiguous
//! shard of the matrix; it pops from the front of its own deque and, when
//! empty, steals the *back half* of the fullest victim's deque (steal-half
//! amortizes the lock traffic: a worker that steals N/2 jobs next contends
//! after N/2 pops, not after one).
//!
//! Determinism note: job *results* are order-independent (each run is
//! keyed and journaled individually), so stealing only perturbs scheduling,
//! never outcomes.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-worker job deques with steal-half rebalancing. Jobs are indices
/// into the campaign's run list.
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueues {
    /// Distributes `jobs` across `workers` local deques in contiguous
    /// shards (worker 0 gets the first ⌈n/w⌉ jobs, and so on) — the same
    /// plan [`shard_plan`] prints for `--dry-run`.
    pub fn new(jobs: Vec<usize>, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        let chunk = jobs.len().div_ceil(workers).max(1);
        for (i, job) in jobs.into_iter().enumerate() {
            queues[(i / chunk).min(workers - 1)].push_back(job);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Next job for `worker`: the front of its own deque, else the back
    /// half of the fullest other deque (stolen into its own), else `None`
    /// (every deque empty — in-flight runs on other workers don't re-queue,
    /// so termination is clean).
    pub fn next(&self, worker: usize) -> Option<usize> {
        if let Some(job) = self.queues[worker].lock().expect("own deque").pop_front() {
            return Some(job);
        }
        self.steal_into(worker)
    }

    /// Steals the back half of the fullest victim deque into `worker`'s
    /// deque and returns the first stolen job. Victims are scanned from
    /// `worker + 1` round-robin so concurrent thieves spread out.
    fn steal_into(&self, worker: usize) -> Option<usize> {
        let n = self.queues.len();
        let mut best: Option<(usize, usize)> = None; // (victim, len)
        for off in 1..n {
            let v = (worker + off) % n;
            let len = self.queues[v].lock().expect("victim deque").len();
            if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
                best = Some((v, len));
            }
        }
        let (victim, _) = best?;
        let mut stolen = {
            let mut vq = self.queues[victim].lock().expect("victim deque");
            // Re-check under the lock: the victim may have drained since
            // the scan. Take the back ⌈half⌉ (so a single-job victim is
            // emptied, not skipped), keeping the front — the oldest jobs,
            // the victim's cache-warm region — with the owner.
            let keep = vq.len() / 2;
            vq.split_off(keep)
        };
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            let mut own = self.queues[worker].lock().expect("own deque");
            debug_assert!(own.is_empty(), "thief only steals when empty");
            *own = stolen;
        }
        first
    }

    /// Jobs remaining across all deques (racy snapshot; for progress
    /// reporting only).
    pub fn remaining(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.lock().expect("deque").len())
            .sum()
    }
}

/// The initial contiguous shard plan [`StealQueues::new`] uses, as
/// `(start, len)` per worker — printed by `shelfsim sweep --dry-run`.
pub fn shard_plan(jobs: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1);
    let chunk = jobs.div_ceil(workers).max(1);
    (0..workers)
        .map(|w| {
            let start = (w * chunk).min(jobs);
            let end = ((w + 1) * chunk).min(jobs);
            (start, end - start)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_job_is_dispensed_exactly_once() {
        let q = StealQueues::new((0..103).collect(), 4);
        let mut seen = BTreeSet::new();
        // Drain through a single worker: it must steal everything.
        while let Some(j) = q.next(2) {
            assert!(seen.insert(j), "job {j} dispensed twice");
        }
        assert_eq!(seen.len(), 103);
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn concurrent_workers_partition_the_jobs() {
        let q = StealQueues::new((0..500).collect(), 4);
        let taken: Vec<Mutex<Vec<usize>>> = (0..4).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    while let Some(j) = q.next(w) {
                        taken[w].lock().unwrap().push(j);
                    }
                });
            }
        });
        let mut all: Vec<usize> = taken
            .iter()
            .flat_map(|t| t.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn shard_plan_covers_the_matrix_contiguously() {
        let plan = shard_plan(10, 4);
        assert_eq!(plan, vec![(0, 3), (3, 3), (6, 3), (9, 1)]);
        assert_eq!(shard_plan(2, 4), vec![(0, 1), (1, 1), (2, 0), (2, 0)]);
        let total: usize = shard_plan(1000, 7).iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn steal_takes_the_back_half() {
        let q = StealQueues::new((0..8).collect(), 2);
        // Worker 0 owns 0..4, worker 1 owns 4..8. Drain worker 1, then let
        // it steal: it must take the back half of worker 0's deque (2, 3)
        // and leave the front (0, 1) with the owner.
        for expect in 4..8 {
            assert_eq!(q.next(1), Some(expect));
        }
        assert_eq!(q.next(1), Some(2), "first stolen job");
        assert_eq!(q.next(0), Some(0), "owner keeps its front");
        assert_eq!(q.next(1), Some(3), "rest of the stolen half");
    }
}
