//! Deterministic fault injection: a seeded plan that makes chosen runs
//! panic, stall, or livelock, so the campaign harness's isolation, retry,
//! and resume behaviour is itself testable end-to-end.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The kind of fault injected into a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the simulation starts (exercises `catch_unwind`
    /// isolation and retry).
    Panic,
    /// An artificial stall shorter than the watchdog window: the run slows
    /// down but completes (exercises watchdog tolerance).
    Stall,
    /// A permanent stall — no thread ever commits again (exercises the
    /// watchdog abort and the deadlock taxonomy).
    Livelock,
}

impl FaultKind {
    /// Stable lowercase tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Livelock => "livelock",
        }
    }
}

/// One injected fault: its kind and on how many leading attempts it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// The fault fires on attempts `0..fires_below`. `1` models a transient
    /// failure (retry succeeds); `u32::MAX` a persistent one (the run ends
    /// up quarantined).
    pub fires_below: u32,
}

/// Counts of each fault kind for [`FaultPlan::seeded`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultMix {
    /// Transient panics (fire on the first attempt only).
    pub panics: usize,
    /// Persistent panics (fire on every attempt → quarantine).
    pub persistent_panics: usize,
    /// Transient sub-window stalls (the watchdog must tolerate them).
    pub stalls: usize,
    /// Transient livelocks (the watchdog aborts attempt 1; retry succeeds).
    pub livelocks: usize,
}

impl FaultMix {
    fn total(&self) -> usize {
        self.panics + self.persistent_panics + self.stalls + self.livelocks
    }
}

/// A deterministic mapping from campaign run index to injected fault.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault on run `index` firing on attempts `0..fires_below`.
    pub fn inject(mut self, index: usize, kind: FaultKind, fires_below: u32) -> Self {
        self.faults.insert(
            index,
            Fault {
                kind,
                fires_below: fires_below.max(1),
            },
        );
        self
    }

    /// A seeded plan over `n_runs` runs: picks distinct victim runs with a
    /// deterministic shuffle and assigns `mix.panics` transient panics,
    /// `mix.persistent_panics` persistent panics, `mix.stalls` sub-window
    /// stalls, and `mix.livelocks` transient livelocks. Panics politely
    /// (with a message) if the mix asks for more faults than there are
    /// runs.
    pub fn seeded(seed: u64, n_runs: usize, mix: FaultMix) -> Self {
        assert!(
            mix.total() <= n_runs,
            "fault mix wants {} victims but the campaign has only {n_runs} runs",
            mix.total()
        );
        let mut order: Vec<usize> = (0..n_runs).collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        order.shuffle(&mut rng);
        let mut plan = FaultPlan::new();
        let mut victims = order.into_iter();
        for _ in 0..mix.panics {
            plan = plan.inject(victims.next().expect("checked"), FaultKind::Panic, 1);
        }
        for _ in 0..mix.persistent_panics {
            plan = plan.inject(victims.next().expect("checked"), FaultKind::Panic, u32::MAX);
        }
        for _ in 0..mix.stalls {
            plan = plan.inject(victims.next().expect("checked"), FaultKind::Stall, 1);
        }
        for _ in 0..mix.livelocks {
            plan = plan.inject(victims.next().expect("checked"), FaultKind::Livelock, 1);
        }
        plan
    }

    /// The fault to apply on `attempt` (0-based) of run `index`, if any.
    pub fn fault_for(&self, index: usize, attempt: u32) -> Option<FaultKind> {
        self.faults
            .get(&index)
            .filter(|f| attempt < f.fires_below)
            .map(|f| f.kind)
    }

    /// Number of runs with an injected fault.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_faults_clear_after_the_first_attempt() {
        let plan = FaultPlan::new().inject(3, FaultKind::Panic, 1);
        assert_eq!(plan.fault_for(3, 0), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(3, 1), None, "retry runs clean");
        assert_eq!(plan.fault_for(2, 0), None, "other runs unaffected");
    }

    #[test]
    fn persistent_faults_fire_on_every_attempt() {
        let plan = FaultPlan::new().inject(0, FaultKind::Livelock, u32::MAX);
        for attempt in 0..10 {
            assert_eq!(plan.fault_for(0, attempt), Some(FaultKind::Livelock));
        }
    }

    #[test]
    fn seeded_plan_is_deterministic_and_distinct() {
        let mix = FaultMix {
            panics: 2,
            persistent_panics: 1,
            stalls: 1,
            livelocks: 2,
        };
        let a = FaultPlan::seeded(9, 20, mix);
        let b = FaultPlan::seeded(9, 20, mix);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.len(), 6, "victims are distinct runs");
        let c = FaultPlan::seeded(10, 20, mix);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    #[should_panic(expected = "victims")]
    fn seeded_plan_rejects_oversubscription() {
        let _ = FaultPlan::seeded(
            1,
            2,
            FaultMix {
                panics: 3,
                ..FaultMix::default()
            },
        );
    }
}
