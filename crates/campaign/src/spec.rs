//! Campaign and run specifications: the job matrix and its stable keys.

use crate::fault::FaultPlan;
use std::path::PathBuf;

/// FNV-1a over a byte string (the same construction as
/// [`shelfsim_core::CoreConfig::stable_hash`]).
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One run of the campaign matrix: a design point, a benchmark mix (one
/// name per hardware thread), and the measurement parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Position in the campaign matrix (the [`FaultPlan`] keys on it).
    pub index: usize,
    /// Design-point name (resolved via
    /// [`shelfsim_analyze::design_by_name`]).
    pub design: String,
    /// Benchmark mix, one name per thread.
    pub mix: Vec<String>,
    /// Workload seed.
    pub seed: u64,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
}

impl RunSpec {
    /// Human-readable label, e.g. `shelf-opt gcc+mcf`.
    pub fn label(&self) -> String {
        format!("{} {}", self.design, self.mix.join("+"))
    }

    /// Stable journal key: a hex fingerprint of the design configuration
    /// (when the name resolves), the mix, the seed, and the measurement
    /// parameters. Two runs with the same key would produce identical
    /// results, so a journaled key means the run can be skipped on resume.
    pub fn key(&self) -> String {
        let cfg_hash = shelfsim_analyze::design_by_name(&self.design, self.mix.len().max(1))
            .map(|c| c.stable_hash())
            .unwrap_or(0);
        let canonical = format!(
            "{}|{:016x}|{}|{}|{}|{}",
            self.design,
            cfg_hash,
            self.mix.join("+"),
            self.seed,
            self.warmup,
            self.measure
        );
        format!("{:016x}", fnv1a(canonical.bytes()))
    }
}

/// Full campaign configuration: the job matrix plus the resilience knobs.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// The runs to execute.
    pub runs: Vec<RunSpec>,
    /// Forward-progress watchdog window in cycles (`None` disables it).
    pub watchdog: Option<u64>,
    /// Attempts per run before quarantine (≥ 1; attempt 2 onwards runs in
    /// the diagnostics tier).
    pub max_attempts: u32,
    /// Worker threads executing runs concurrently.
    pub workers: usize,
    /// JSONL journal path; when set, outcomes are appended as they complete
    /// and already-journaled runs are skipped on the next invocation.
    pub journal: Option<PathBuf>,
    /// Deterministic fault injection plan (empty = no faults).
    pub faults: FaultPlan,
    /// When set, diagnostics-tier attempts (attempt ≥ 2) run with the
    /// lifecycle tracer enabled and a watchdog-diagnosed failure dumps its
    /// JSONL trace here as `<key>-attempt<N>.jsonl`. Panics unwind past the
    /// simulator, so only deadlock/livelock failures can leave a trace.
    pub trace_dir: Option<PathBuf>,
    /// Suppress the default panic hook's backtrace spew while isolated runs
    /// convert panics into structured failures.
    pub quiet_panics: bool,
}

impl CampaignSpec {
    /// A campaign over `runs` with resilient defaults: a watchdog window of
    /// 100k cycles, 3 attempts per run, 2 workers, no journal, no faults.
    pub fn new(runs: Vec<RunSpec>) -> Self {
        CampaignSpec {
            runs,
            watchdog: Some(100_000),
            max_attempts: 3,
            workers: 2,
            journal: None,
            faults: FaultPlan::new(),
            trace_dir: None,
            quiet_panics: true,
        }
    }

    /// Sets the watchdog window (cycles); `None` disables the watchdog.
    pub fn with_watchdog(mut self, window: Option<u64>) -> Self {
        self.watchdog = window;
        self
    }

    /// Sets the attempt budget per run (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the journal path.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the directory where diagnostics-tier failures dump lifecycle
    /// traces (created on demand).
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Builds the full design × mix matrix in deterministic order (designs
    /// outer, mixes inner), assigning each run its matrix index.
    pub fn matrix(
        designs: &[String],
        mixes: &[Vec<String>],
        seed: u64,
        warmup: u64,
        measure: u64,
    ) -> Vec<RunSpec> {
        let mut runs = Vec::with_capacity(designs.len() * mixes.len());
        for design in designs {
            for mix in mixes {
                runs.push(RunSpec {
                    index: runs.len(),
                    design: design.clone(),
                    mix: mix.clone(),
                    seed,
                    warmup,
                    measure,
                });
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec {
            index: 0,
            design: "base64".to_owned(),
            mix: vec!["gcc".to_owned(), "mcf".to_owned()],
            seed: 7,
            warmup: 100,
            measure: 1_000,
        }
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        let a = spec();
        assert_eq!(a.key(), spec().key(), "same spec, same key");
        let mut b = spec();
        b.seed = 8;
        assert_ne!(a.key(), b.key(), "seed changes the key");
        let mut c = spec();
        c.design = "base128".to_owned();
        assert_ne!(a.key(), c.key(), "design changes the key");
        let mut d = spec();
        d.measure = 2_000;
        assert_ne!(a.key(), d.key(), "measurement budget changes the key");
        // The index is presentation-only: it must NOT affect the key, or
        // resuming a reordered campaign would re-run completed work.
        let mut e = spec();
        e.index = 99;
        assert_eq!(a.key(), e.key());
    }

    #[test]
    fn matrix_enumerates_designs_times_mixes() {
        let runs = CampaignSpec::matrix(
            &["base64".to_owned(), "shelf-opt".to_owned()],
            &[vec!["gcc".to_owned()], vec!["mcf".to_owned()]],
            7,
            100,
            1_000,
        );
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].design, "base64");
        assert_eq!(runs[3].design, "shelf-opt");
        assert_eq!(
            runs.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let keys: std::collections::BTreeSet<String> = runs.iter().map(|r| r.key()).collect();
        assert_eq!(keys.len(), 4, "all matrix keys distinct");
    }
}
