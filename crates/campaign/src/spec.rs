//! Campaign and run specifications: the job matrix and its stable keys.

use crate::fault::FaultPlan;
use std::path::PathBuf;

/// FNV-1a over a byte string (the same construction as
/// [`shelfsim_core::CoreConfig::stable_hash`]).
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One run of the campaign matrix: a design point, a benchmark mix (one
/// name per hardware thread), and the measurement parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Position in the campaign matrix (the [`FaultPlan`] keys on it).
    pub index: usize,
    /// Design-point name (resolved via
    /// [`shelfsim_analyze::design_by_name`]).
    pub design: String,
    /// Benchmark mix, one name per thread.
    pub mix: Vec<String>,
    /// Workload seed.
    pub seed: u64,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Structural config overrides (`key`, `value`) applied on top of the
    /// design point, in order — the vocabulary of
    /// [`shelfsim_analyze::apply_override`] (the CLI `--override` flag).
    pub overrides: Vec<(String, String)>,
}

impl RunSpec {
    /// Human-readable label, e.g. `shelf-opt gcc+mcf` (overrides, when
    /// present, are appended as `[key=value,…]`).
    pub fn label(&self) -> String {
        if self.overrides.is_empty() {
            format!("{} {}", self.design, self.mix.join("+"))
        } else {
            let ovs: Vec<String> = self
                .overrides
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{} {} [{}]", self.design, self.mix.join("+"), ovs.join(","))
        }
    }

    /// Resolves the design name plus overrides into the exact
    /// [`shelfsim_core::CoreConfig`] the run would simulate.
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown design or bad override.
    pub fn resolved_config(&self) -> Result<shelfsim_core::CoreConfig, String> {
        let mut cfg = shelfsim_analyze::design_by_name(&self.design, self.mix.len().max(1))
            .ok_or_else(|| {
                format!(
                    "unknown design `{}` (expected one of: {})",
                    self.design,
                    shelfsim_analyze::DESIGN_NAMES.join(", ")
                )
            })?;
        for (k, v) in &self.overrides {
            shelfsim_analyze::apply_override(&mut cfg, k, v)?;
        }
        Ok(cfg)
    }

    /// Stable journal key: a hex fingerprint of the resolved configuration
    /// (design plus overrides, when they resolve), the mix, the seed, and
    /// the measurement parameters. Two runs with the same key would produce
    /// identical results, so a journaled key means the run can be skipped
    /// on resume. Specs without overrides keep the pre-override key format,
    /// so existing journals stay resumable.
    pub fn key(&self) -> String {
        let cfg_hash = self.resolved_config().map(|c| c.stable_hash()).unwrap_or(0);
        let mut canonical = format!(
            "{}|{:016x}|{}|{}|{}|{}",
            self.design,
            cfg_hash,
            self.mix.join("+"),
            self.seed,
            self.warmup,
            self.measure
        );
        for (k, v) in &self.overrides {
            canonical.push_str(&format!("|{k}={v}"));
        }
        format!("{:016x}", fnv1a(canonical.bytes()))
    }
}

/// Full campaign configuration: the job matrix plus the resilience knobs.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// The runs to execute.
    pub runs: Vec<RunSpec>,
    /// Forward-progress watchdog window in cycles (`None` disables it).
    pub watchdog: Option<u64>,
    /// Attempts per run before quarantine (≥ 1; attempt 2 onwards runs in
    /// the diagnostics tier).
    pub max_attempts: u32,
    /// Worker threads executing runs concurrently.
    pub workers: usize,
    /// JSONL journal path; when set, outcomes are appended as they complete
    /// and already-journaled runs are skipped on the next invocation.
    pub journal: Option<PathBuf>,
    /// Sharded journal directory (`shard-NNN.jsonl`, one per worker); when
    /// set, each worker appends to its own shard lock-free and resume reads
    /// the deterministically merged view. Composes with `journal`: history
    /// from both is merged into the result cache.
    pub journal_dir: Option<PathBuf>,
    /// Deterministic fault injection plan (empty = no faults).
    pub faults: FaultPlan,
    /// When set, diagnostics-tier attempts (attempt ≥ 2) run with the
    /// lifecycle tracer enabled and a watchdog-diagnosed failure dumps its
    /// JSONL trace here as `<key>-attempt<N>.jsonl`. Panics unwind past the
    /// simulator, so only deadlock/livelock failures can leave a trace.
    pub trace_dir: Option<PathBuf>,
    /// Suppress the default panic hook's backtrace spew while isolated runs
    /// convert panics into structured failures.
    pub quiet_panics: bool,
    /// Run the static-analysis pre-flight (config lint + program lint +
    /// resource adequacy) over every queued run before simulating; runs
    /// whose analysis reports errors are rejected without spending a cycle
    /// and journaled with an `analysis-rejected` taxonomy entry.
    pub preflight: bool,
    /// Run the differential validation tier: every attempt first
    /// lockstep-validates its exact config and programs against the
    /// in-order functional reference; a divergence quarantines the run
    /// immediately (deterministic — no retry) with a `divergence` taxonomy
    /// entry, and clean runs journal `validated: clean`.
    pub validate: bool,
}

impl CampaignSpec {
    /// A campaign over `runs` with resilient defaults: a watchdog window of
    /// 100k cycles, 3 attempts per run, 2 workers, no journal, no faults.
    pub fn new(runs: Vec<RunSpec>) -> Self {
        CampaignSpec {
            runs,
            watchdog: Some(100_000),
            max_attempts: 3,
            workers: 2,
            journal: None,
            journal_dir: None,
            faults: FaultPlan::new(),
            trace_dir: None,
            quiet_panics: true,
            preflight: true,
            validate: false,
        }
    }

    /// Enables or disables the static-analysis pre-flight stage.
    pub fn with_preflight(mut self, enabled: bool) -> Self {
        self.preflight = enabled;
        self
    }

    /// Enables or disables the differential validation tier.
    pub fn with_validate(mut self, enabled: bool) -> Self {
        self.validate = enabled;
        self
    }

    /// Sets the watchdog window (cycles); `None` disables the watchdog.
    pub fn with_watchdog(mut self, window: Option<u64>) -> Self {
        self.watchdog = window;
        self
    }

    /// Sets the attempt budget per run (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the journal path.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Sets the sharded-journal directory (one shard file per worker).
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the directory where diagnostics-tier failures dump lifecycle
    /// traces (created on demand).
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Builds the full design × mix matrix in deterministic order (designs
    /// outer, mixes inner), assigning each run its matrix index.
    pub fn matrix(
        designs: &[String],
        mixes: &[Vec<String>],
        seed: u64,
        warmup: u64,
        measure: u64,
    ) -> Vec<RunSpec> {
        let mut runs = Vec::with_capacity(designs.len() * mixes.len());
        for design in designs {
            for mix in mixes {
                runs.push(RunSpec {
                    index: runs.len(),
                    design: design.clone(),
                    mix: mix.clone(),
                    seed,
                    warmup,
                    measure,
                    overrides: Vec::new(),
                });
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec {
            index: 0,
            design: "base64".to_owned(),
            mix: vec!["gcc".to_owned(), "mcf".to_owned()],
            seed: 7,
            warmup: 100,
            measure: 1_000,
            overrides: Vec::new(),
        }
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        let a = spec();
        assert_eq!(a.key(), spec().key(), "same spec, same key");
        let mut b = spec();
        b.seed = 8;
        assert_ne!(a.key(), b.key(), "seed changes the key");
        let mut c = spec();
        c.design = "base128".to_owned();
        assert_ne!(a.key(), c.key(), "design changes the key");
        let mut d = spec();
        d.measure = 2_000;
        assert_ne!(a.key(), d.key(), "measurement budget changes the key");
        // The index is presentation-only: it must NOT affect the key, or
        // resuming a reordered campaign would re-run completed work.
        let mut e = spec();
        e.index = 99;
        assert_eq!(a.key(), e.key());
    }

    #[test]
    fn matrix_enumerates_designs_times_mixes() {
        let runs = CampaignSpec::matrix(
            &["base64".to_owned(), "shelf-opt".to_owned()],
            &[vec!["gcc".to_owned()], vec!["mcf".to_owned()]],
            7,
            100,
            1_000,
        );
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].design, "base64");
        assert_eq!(runs[3].design, "shelf-opt");
        assert_eq!(
            runs.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let keys: std::collections::BTreeSet<String> = runs.iter().map(|r| r.key()).collect();
        assert_eq!(keys.len(), 4, "all matrix keys distinct");
    }

    #[test]
    fn overrides_resolve_label_and_rekey() {
        let mut s = spec();
        s.overrides = vec![("shelf".to_owned(), "8".to_owned())];
        assert_ne!(s.key(), spec().key(), "overrides change the key");
        assert!(s.label().contains("[shelf=8]"), "{}", s.label());
        let base = spec().resolved_config().expect("base64 resolves");
        let cfg = s.resolved_config().expect("override applies");
        assert_eq!(cfg.shelf_entries, 8);
        assert_eq!(base.shelf_entries, 0);
        s.overrides = vec![("bogus".to_owned(), "1".to_owned())];
        assert!(s.resolved_config().is_err());
    }
}
