//! Campaign reporting: graceful-degradation summaries over whatever subset
//! of the matrix completed, plus the error taxonomy.

use crate::journal::json_escape;
use crate::runner::{RunRecord, RunStatus};
use shelfsim_stats::{grouped_geomean, Tally};
use std::fmt::Write as _;

/// Aggregate outcome of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Final record of every run, in matrix order.
    pub records: Vec<RunRecord>,
    /// Runs restored from the journal instead of executed.
    pub resumed: usize,
}

impl CampaignReport {
    /// Builds a report over `records`.
    pub fn new(records: Vec<RunRecord>, resumed: usize) -> Self {
        CampaignReport { records, resumed }
    }

    /// Runs that produced results.
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == RunStatus::Ok)
            .count()
    }

    /// Runs that exhausted their attempt budget.
    pub fn quarantined(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == RunStatus::Quarantined)
            .count()
    }

    /// Runs the static-analysis pre-flight rejected before simulation.
    pub fn rejected(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == RunStatus::Rejected)
            .count()
    }

    /// The error taxonomy: final statuses, retry outcomes, per-kind failed
    /// attempts, and truncated measurements.
    pub fn taxonomy(&self) -> Tally {
        let mut tally = Tally::new();
        for r in &self.records {
            tally.add(r.status.as_str());
            if r.status == RunStatus::Ok && r.attempts > 1 {
                tally.add("retried-ok");
            }
            for f in &r.failures {
                tally.add(f.kind.as_str());
            }
            if let Some(o) = &r.outcome {
                if o.completion.is_truncated() {
                    tally.add("truncated");
                }
            }
        }
        tally
    }

    /// Per-design geometric-mean IPC over completed runs:
    /// `(design, geomean IPC, run count)`, design-name order. Quarantined
    /// runs simply contribute nothing (partial results, not aborts).
    pub fn per_design_ipc(&self) -> Vec<(String, f64, usize)> {
        let pairs: Vec<(String, f64)> = self
            .records
            .iter()
            .filter_map(|r| {
                let o = r.outcome.as_ref()?;
                (o.ipc > 0.0).then(|| (r.spec.design.clone(), o.ipc))
            })
            .collect();
        grouped_geomean(&pairs)
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "campaign: {} runs, {} completed, {} quarantined, {} rejected, {} resumed from journal",
            self.records.len(),
            self.completed(),
            self.quarantined(),
            self.rejected(),
            self.resumed
        )
        .expect("write");
        for r in &self.records {
            let marker = match (r.status, r.attempts, r.resumed) {
                (RunStatus::Quarantined, _, _) => "[quarantined]",
                (RunStatus::Rejected, _, _) => "[rejected]",
                (RunStatus::Ok, a, _) if a > 1 => "[retried]",
                (RunStatus::Ok, _, true) => "[resumed]",
                (RunStatus::Ok, _, false) => "[ok]",
            };
            match &r.outcome {
                Some(o) => {
                    writeln!(
                        out,
                        "  {marker:<13} {:<40} ipc {:>6.3}  {} ({} attempt{})",
                        r.spec.label(),
                        o.ipc,
                        o.completion.as_str(),
                        r.attempts,
                        if r.attempts == 1 { "" } else { "s" }
                    )
                    .expect("write");
                }
                None => {
                    let cause = r
                        .failures
                        .last()
                        .map(|f| format!("{}: {}", f.kind.as_str(), f.panic_msg))
                        .unwrap_or_else(|| "no attempts".to_owned());
                    writeln!(
                        out,
                        "  {marker:<13} {:<40} {}",
                        r.spec.label(),
                        truncate(&cause, 120)
                    )
                    .expect("write");
                }
            }
        }
        let per_design = self.per_design_ipc();
        if !per_design.is_empty() {
            // The first design listed is the comparison baseline. A
            // degenerate baseline (zero IPC — every run truncated before
            // committing) renders as `n/a` rather than killing the report.
            let base = per_design[0].1;
            writeln!(out, "per-design geomean IPC over completed runs:").expect("write");
            for (i, (design, ipc, n)) in per_design.iter().enumerate() {
                if i == 0 {
                    writeln!(out, "  {design:<14} {ipc:>6.3}  ({n} runs, baseline)")
                        .expect("write");
                } else {
                    writeln!(
                        out,
                        "  {design:<14} {ipc:>6.3}  ({n} runs, {} vs {})",
                        shelfsim_stats::render_delta(shelfsim_stats::percent_delta(base, *ipc)),
                        per_design[0].0
                    )
                    .expect("write");
                }
            }
        }
        writeln!(out, "taxonomy: {}", self.taxonomy().render()).expect("write");
        out
    }

    /// Machine-readable summary (one JSON object).
    pub fn render_json(&self) -> String {
        let records: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                let (ipc, cycles, completion) = match &r.outcome {
                    Some(o) => (o.ipc, o.cycles, o.completion.as_str()),
                    None => (0.0, 0, ""),
                };
                let error = r
                    .failures
                    .last()
                    .map(|f| f.kind.as_str())
                    .unwrap_or_default();
                format!(
                    concat!(
                        r#"{{"key":"{}","label":"{}","status":"{}","attempts":{},"#,
                        r#""resumed":{},"ipc":{:.4},"cycles":{},"completion":"{}","error":"{}"}}"#
                    ),
                    r.spec.key(),
                    json_escape(&r.spec.label()),
                    r.status.as_str(),
                    r.attempts,
                    r.resumed,
                    ipc,
                    cycles,
                    completion,
                    error
                )
            })
            .collect();
        let taxonomy: Vec<String> = self
            .taxonomy()
            .iter()
            .map(|(k, v)| format!(r#""{}":{}"#, json_escape(k), v))
            .collect();
        let per_design: Vec<String> = self
            .per_design_ipc()
            .iter()
            .map(|(d, ipc, n)| {
                format!(
                    r#"{{"design":"{}","geomean_ipc":{:.4},"runs":{}}}"#,
                    json_escape(d),
                    ipc,
                    n
                )
            })
            .collect();
        format!(
            concat!(
                r#"{{"runs":{},"completed":{},"quarantined":{},"rejected":{},"resumed":{},"#,
                r#""taxonomy":{{{}}},"per_design":[{}],"records":[{}]}}"#
            ),
            self.records.len(),
            self.completed(),
            self.quarantined(),
            self.rejected(),
            self.resumed,
            taxonomy.join(","),
            per_design.join(","),
            records.join(",")
        )
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let head: String = s.chars().take(max).collect();
        format!("{head}…")
    }
}
