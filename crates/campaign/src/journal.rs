//! The resumable campaign journal: one JSON object per line, appended as
//! each run reaches a final outcome. Re-invoking a campaign loads the
//! journal and skips every run whose key already has a final entry, so a
//! killed process loses at most the runs that were in flight.
//!
//! The format is deliberately flat (string and number values only) so it
//! survives with a hand-rolled parser — the workspace builds offline with
//! no serde. A line truncated by a crash mid-write simply fails to parse
//! and the run is re-executed: append-only + idempotent keys make that
//! safe.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a flat (non-nested) JSON object into key → raw-value-text pairs.
/// String values are unescaped; numbers/booleans keep their literal text.
/// Returns `None` on any syntax error (the caller skips the line).
pub(crate) fn parse_flat_json(line: &str) -> Option<BTreeMap<String, String>> {
    let mut chars = line.trim().chars().peekable();
    let mut map = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
        if chars.next()? != '"' {
            return None;
        }
        let mut s = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(s),
                '\\' => match chars.next()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let hex: String = (0..4).map(|_| chars.next().unwrap_or('!')).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => s.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = if chars.peek()? == &'"' {
            parse_string(&mut chars)?
        } else {
            let mut v = String::new();
            while chars
                .peek()
                .is_some_and(|&c| c != ',' && c != '}' && !c.is_whitespace())
            {
                v.push(chars.next().expect("peeked"));
            }
            if v.is_empty() {
                return None;
            }
            v
        };
        map.insert(key, value);
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(map)
}

/// One journaled final outcome of a campaign run.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// [`crate::RunSpec::key`] of the run.
    pub key: String,
    /// Human-readable label (`design mix`).
    pub label: String,
    /// Design-point name.
    pub design: String,
    /// Thread count (mix size).
    pub threads: usize,
    /// Workload seed.
    pub seed: u64,
    /// Final status: `ok` or `quarantined`.
    pub status: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Aggregate IPC (0.0 when quarantined).
    pub ipc: f64,
    /// Measured cycles (0 when quarantined).
    pub cycles: u64,
    /// Committed instructions (0 when quarantined).
    pub committed: u64,
    /// [`shelfsim_core::Completion`] tag of the final successful attempt.
    pub completion: String,
    /// Failure-kind tag of the last failed attempt (empty when clean).
    pub error: String,
    /// Failure message of the last failed attempt (empty when clean).
    pub message: String,
    /// Validation-tier outcome: `clean` when the run lockstep-validated
    /// against the functional reference, empty when the tier was off (also
    /// the value restored from journals written before the tier existed).
    pub validated: String,
}

impl JournalEntry {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                r#"{{"key":"{}","label":"{}","design":"{}","threads":{},"seed":{},"#,
                r#""status":"{}","attempts":{},"ipc":{:.6},"cycles":{},"committed":{},"#,
                r#""completion":"{}","error":"{}","message":"{}","validated":"{}"}}"#
            ),
            json_escape(&self.key),
            json_escape(&self.label),
            json_escape(&self.design),
            self.threads,
            self.seed,
            json_escape(&self.status),
            self.attempts,
            self.ipc,
            self.cycles,
            self.committed,
            json_escape(&self.completion),
            json_escape(&self.error),
            json_escape(&self.message),
            json_escape(&self.validated),
        )
    }

    /// Rebuilds an entry from a parsed journal line; `None` when required
    /// fields are missing or malformed.
    pub fn from_map(map: &BTreeMap<String, String>) -> Option<Self> {
        let get = |k: &str| map.get(k).cloned();
        Some(JournalEntry {
            key: get("key")?,
            label: get("label").unwrap_or_default(),
            design: get("design").unwrap_or_default(),
            threads: get("threads")?.parse().ok()?,
            seed: get("seed")?.parse().ok()?,
            status: get("status")?,
            attempts: get("attempts")?.parse().ok()?,
            ipc: get("ipc")?.parse().ok()?,
            cycles: get("cycles")?.parse().ok()?,
            committed: get("committed").unwrap_or_default().parse().unwrap_or(0),
            completion: get("completion").unwrap_or_default(),
            error: get("error").unwrap_or_default(),
            message: get("message").unwrap_or_default(),
            validated: get("validated").unwrap_or_default(),
        })
    }
}

/// An append-only JSONL journal on disk.
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the journal: the last entry per key wins. A missing file is an
    /// empty journal; malformed lines (e.g. a crash-truncated tail) are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn load(&self) -> std::io::Result<BTreeMap<String, JournalEntry>> {
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(e),
        };
        let mut entries = BTreeMap::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(entry) = parse_flat_json(&line)
                .as_ref()
                .and_then(JournalEntry::from_map)
            {
                entries.insert(entry.key.clone(), entry);
            }
        }
        Ok(entries)
    }

    /// Opens the journal for appending (creating parent directories and the
    /// file as needed).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn open_append(&self) -> std::io::Result<File> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
    }

    /// Appends one entry (a single `write_all` of the full line, so a crash
    /// can truncate at most the final line).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_to(file: &mut File, entry: &JournalEntry) -> std::io::Result<()> {
        let mut line = entry.to_json_line();
        line.push('\n');
        file.write_all(line.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, status: &str) -> JournalEntry {
        JournalEntry {
            key: key.to_owned(),
            label: "base64 gcc+mcf".to_owned(),
            design: "base64".to_owned(),
            threads: 2,
            seed: 7,
            status: status.to_owned(),
            attempts: 1,
            ipc: 1.25,
            cycles: 1_000,
            committed: 1_250,
            completion: "fixed-window".to_owned(),
            error: String::new(),
            message: "quote \" backslash \\ newline \n done".to_owned(),
            validated: "clean".to_owned(),
        }
    }

    #[test]
    fn entries_without_a_validated_field_still_load() {
        // Journals written before the validation tier existed lack the
        // field; they must keep resuming (empty = tier was off).
        let line = r#"{"key":"old","label":"l","design":"base64","threads":2,"seed":7,"status":"ok","attempts":1,"ipc":1.0,"cycles":10,"committed":10,"completion":"fixed-window","error":"","message":""}"#;
        let map = parse_flat_json(line).expect("parses");
        let e = JournalEntry::from_map(&map).expect("rebuilds");
        assert_eq!(e.validated, "");
    }

    #[test]
    fn roundtrips_through_json_line() {
        let e = entry("abcd", "ok");
        let line = e.to_json_line();
        let map = parse_flat_json(&line).expect("parses");
        let back = JournalEntry::from_map(&map).expect("rebuilds");
        assert_eq!(e, back);
    }

    #[test]
    fn load_skips_malformed_lines_and_keeps_last_entry_per_key() {
        let dir = std::env::temp_dir().join("shelfsim_journal_test_load");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("j.jsonl");
        let j = Journal::new(&path);
        let _ = std::fs::remove_file(&path);
        let mut f = j.open_append().expect("open");
        Journal::append_to(&mut f, &entry("k1", "quarantined")).expect("write");
        Journal::append_to(&mut f, &entry("k2", "ok")).expect("write");
        // A retry later overwrote k1's outcome, and a crash truncated the
        // final line mid-write.
        Journal::append_to(&mut f, &entry("k1", "ok")).expect("write");
        use std::io::Write as _;
        f.write_all(br#"{"key":"k3","status":"ok","trunc"#)
            .expect("write");
        drop(f);
        let loaded = j.load().expect("load");
        assert_eq!(loaded.len(), 2, "k3's torn line is skipped");
        assert_eq!(loaded["k1"].status, "ok", "last entry per key wins");
        assert_eq!(loaded["k2"].ipc, 1.25);
    }

    #[test]
    fn missing_journal_is_empty() {
        let j = Journal::new("/nonexistent/definitely/missing.jsonl");
        assert!(j.load().expect("missing file is fine").is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_json("not json").is_none());
        assert!(parse_flat_json("{\"a\":}").is_none());
        assert!(parse_flat_json("{\"a\":1} trailing").is_none());
        assert!(parse_flat_json("{\"a\" 1}").is_none());
        let ok = parse_flat_json(r#"{ "a" : "b" , "n" : 1.5 }"#).expect("spaced json parses");
        assert_eq!(ok["a"], "b");
        assert_eq!(ok["n"], "1.5");
    }
}
