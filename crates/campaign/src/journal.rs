//! The resumable campaign journal: one JSON object per line, appended as
//! each run reaches a final outcome. Re-invoking a campaign loads the
//! journal and skips every run whose key already has a final entry, so a
//! killed process loses at most the runs that were in flight.
//!
//! The format is deliberately flat (string and number values only) so it
//! survives with a hand-rolled parser — the workspace builds offline with
//! no serde. A line truncated by a crash mid-write simply fails to parse
//! and the run is re-executed: append-only + idempotent keys make that
//! safe.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a flat (non-nested) JSON object into key → raw-value-text pairs.
/// String values are unescaped; numbers/booleans keep their literal text.
/// Returns `None` on any syntax error (the caller skips the line).
pub(crate) fn parse_flat_json(line: &str) -> Option<BTreeMap<String, String>> {
    let mut chars = line.trim().chars().peekable();
    let mut map = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
        if chars.next()? != '"' {
            return None;
        }
        let mut s = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(s),
                '\\' => match chars.next()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let hex: String = (0..4).map(|_| chars.next().unwrap_or('!')).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => s.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = if chars.peek()? == &'"' {
            parse_string(&mut chars)?
        } else {
            let mut v = String::new();
            while chars
                .peek()
                .is_some_and(|&c| c != ',' && c != '}' && !c.is_whitespace())
            {
                v.push(chars.next().expect("peeked"));
            }
            if v.is_empty() {
                return None;
            }
            v
        };
        map.insert(key, value);
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(map)
}

/// One journaled final outcome of a campaign run.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// [`crate::RunSpec::key`] of the run.
    pub key: String,
    /// Human-readable label (`design mix`).
    pub label: String,
    /// Design-point name.
    pub design: String,
    /// Thread count (mix size).
    pub threads: usize,
    /// Workload seed.
    pub seed: u64,
    /// Final status: `ok` or `quarantined`.
    pub status: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Aggregate IPC (0.0 when quarantined).
    pub ipc: f64,
    /// Measured cycles (0 when quarantined).
    pub cycles: u64,
    /// Committed instructions (0 when quarantined).
    pub committed: u64,
    /// [`shelfsim_core::Completion`] tag of the final successful attempt.
    pub completion: String,
    /// Failure-kind tag of the last failed attempt (empty when clean).
    pub error: String,
    /// Failure message of the last failed attempt (empty when clean).
    pub message: String,
    /// Validation-tier outcome: `clean` when the run lockstep-validated
    /// against the functional reference, empty when the tier was off (also
    /// the value restored from journals written before the tier existed).
    pub validated: String,
    /// Benchmark mix, `+`-joined in thread order (empty in entries written
    /// before the sweep surface existed).
    pub mix: String,
    /// Per-thread CPIs, comma-joined in thread order (empty when
    /// quarantined or restored from a pre-sweep journal). The Pareto
    /// report's STP computation reads these back.
    pub tcpi: String,
    /// Energy per committed instruction in nJ (0.0 when unavailable).
    pub epi: f64,
    /// Energy-delay product (nJ/instr × CPI; 0.0 when unavailable).
    pub edp: f64,
}

impl JournalEntry {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                r#"{{"key":"{}","label":"{}","design":"{}","threads":{},"seed":{},"#,
                r#""status":"{}","attempts":{},"ipc":{:.6},"cycles":{},"committed":{},"#,
                r#""completion":"{}","error":"{}","message":"{}","validated":"{}","#,
                r#""mix":"{}","tcpi":"{}","epi":{:.6},"edp":{:.6}}}"#
            ),
            json_escape(&self.key),
            json_escape(&self.label),
            json_escape(&self.design),
            self.threads,
            self.seed,
            json_escape(&self.status),
            self.attempts,
            self.ipc,
            self.cycles,
            self.committed,
            json_escape(&self.completion),
            json_escape(&self.error),
            json_escape(&self.message),
            json_escape(&self.validated),
            json_escape(&self.mix),
            json_escape(&self.tcpi),
            self.epi,
            self.edp,
        )
    }

    /// Per-thread CPIs parsed back from the `tcpi` field (empty when the
    /// entry predates the sweep surface or the run was quarantined).
    pub fn thread_cpis(&self) -> Vec<f64> {
        if self.tcpi.is_empty() {
            return Vec::new();
        }
        self.tcpi
            .split(',')
            .filter_map(|s| s.parse().ok())
            .collect()
    }

    /// Rebuilds an entry from a parsed journal line; `None` when required
    /// fields are missing or malformed.
    pub fn from_map(map: &BTreeMap<String, String>) -> Option<Self> {
        let get = |k: &str| map.get(k).cloned();
        Some(JournalEntry {
            key: get("key")?,
            label: get("label").unwrap_or_default(),
            design: get("design").unwrap_or_default(),
            threads: get("threads")?.parse().ok()?,
            seed: get("seed")?.parse().ok()?,
            status: get("status")?,
            attempts: get("attempts")?.parse().ok()?,
            ipc: get("ipc")?.parse().ok()?,
            cycles: get("cycles")?.parse().ok()?,
            committed: get("committed").unwrap_or_default().parse().unwrap_or(0),
            completion: get("completion").unwrap_or_default(),
            error: get("error").unwrap_or_default(),
            message: get("message").unwrap_or_default(),
            validated: get("validated").unwrap_or_default(),
            mix: get("mix").unwrap_or_default(),
            tcpi: get("tcpi").unwrap_or_default(),
            epi: get("epi").unwrap_or_default().parse().unwrap_or(0.0),
            edp: get("edp").unwrap_or_default().parse().unwrap_or(0.0),
        })
    }
}

/// An append-only JSONL journal on disk.
#[derive(Clone, Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the journal: the last entry per key wins. A missing file is an
    /// empty journal; malformed lines (e.g. a crash-truncated tail) are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn load(&self) -> std::io::Result<BTreeMap<String, JournalEntry>> {
        load_journal_file(&self.path)
    }

    /// Opens the journal for appending (creating parent directories and the
    /// file as needed).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn open_append(&self) -> std::io::Result<File> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        repair_torn_tail(&self.path)?;
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
    }

    /// Appends one entry (a single `write_all` of the full line, so a crash
    /// can truncate at most the final line).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_to(file: &mut File, entry: &JournalEntry) -> std::io::Result<()> {
        let mut line = entry.to_json_line();
        line.push('\n');
        file.write_all(line.as_bytes())
    }
}

/// Loads one JSONL journal file into a last-entry-per-key map. A missing
/// file is an empty journal; malformed lines (e.g. a crash-truncated tail)
/// are skipped.
fn load_journal_file(path: &Path) -> std::io::Result<BTreeMap<String, JournalEntry>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    };
    let mut entries = BTreeMap::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(entry) = parse_flat_json(&line)
            .as_ref()
            .and_then(JournalEntry::from_map)
        {
            entries.insert(entry.key.clone(), entry);
        }
    }
    Ok(entries)
}

/// Newline-terminates a crash-torn final line so the next append starts a
/// fresh line instead of concatenating into the garbage (which would lose
/// both entries to the parser). The torn fragment itself stays in place —
/// it fails to parse and the run re-executes, exactly as before.
fn repair_torn_tail(path: &Path) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if f.metadata()?.len() == 0 {
        return Ok(());
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    if last[0] != b'\n' {
        f.write_all(b"\n")?;
    }
    Ok(())
}

/// Merge preference when the same key appears in multiple shards: a
/// completed result always beats a rejection, which beats a quarantine —
/// so a retry that succeeded on another worker (or in a later sweep over
/// an overlapping shard layout) wins deterministically.
fn status_rank(status: &str) -> u8 {
    match status {
        "ok" => 2,
        "rejected" => 1,
        _ => 0,
    }
}

/// A per-worker journal shard writer: serialized entries accumulate in a
/// local buffer with no locking (the worker owns its shard file
/// exclusively) and [`ShardWriter::flush`] lands them with one `write_all`
/// per run completion — a crash can truncate at most the final line, which
/// the merge-on-read parser skips.
#[derive(Debug)]
pub struct ShardWriter {
    file: File,
    buf: String,
}

impl ShardWriter {
    /// Opens `path` for appending (creating parent directories as needed).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        repair_torn_tail(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(ShardWriter {
            file,
            buf: String::new(),
        })
    }

    /// Buffers one entry locally; nothing reaches the file until
    /// [`ShardWriter::flush`].
    pub fn buffer(&mut self, entry: &JournalEntry) {
        self.buf.push_str(&entry.to_json_line());
        self.buf.push('\n');
    }

    /// Flushes every buffered line with a single `write_all`.
    ///
    /// # Errors
    ///
    /// Propagates write errors (the buffer is kept for retry).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(self.buf.as_bytes())?;
        self.buf.clear();
        Ok(())
    }
}

impl Drop for ShardWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// A directory of per-worker journal shards (`shard-NNN.jsonl`), merged
/// deterministically on read. Workers append to their own shard with no
/// shared lock; resume and the result cache read the merged view, so any
/// shard layout (different worker counts, overlapping reruns) resumes
/// correctly.
#[derive(Clone, Debug)]
pub struct ShardedJournal {
    dir: PathBuf,
}

impl ShardedJournal {
    /// A sharded journal rooted at `dir` (need not exist yet).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ShardedJournal { dir: dir.into() }
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard file a given worker appends to.
    pub fn shard_path(&self, worker: usize) -> PathBuf {
        self.dir.join(format!("shard-{worker:03}.jsonl"))
    }

    /// Opens worker `worker`'s shard for buffered appending.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn open_writer(&self, worker: usize) -> std::io::Result<ShardWriter> {
        ShardWriter::open(self.shard_path(worker))
    }

    /// Every `*.jsonl` shard in the directory, sorted by filename so the
    /// merge order is deterministic. A missing directory is an empty
    /// journal.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors other than "not found".
    pub fn shard_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let rd = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut files: Vec<PathBuf> = rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        files.sort();
        Ok(files)
    }

    /// Loads the merged view: shards are read in sorted filename order
    /// (last entry per key within a shard), and when the same key appears
    /// in several shards the better status wins (`ok` > `rejected` >
    /// `quarantined`; ties keep the earlier shard's entry). The result is
    /// a deterministic function of the completed run set, independent of
    /// the shard layout that produced it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn load_merged(&self) -> std::io::Result<BTreeMap<String, JournalEntry>> {
        let mut merged: BTreeMap<String, JournalEntry> = BTreeMap::new();
        for path in self.shard_files()? {
            for (key, entry) in load_journal_file(&path)? {
                match merged.get(&key) {
                    Some(old) if status_rank(&old.status) >= status_rank(&entry.status) => {}
                    _ => {
                        merged.insert(key, entry);
                    }
                }
            }
        }
        Ok(merged)
    }

    /// Renders the merged view as canonical bytes: one JSON line per key in
    /// sorted key order. Byte-identical across any shard layout that holds
    /// the same completed run set — the determinism contract the sweep
    /// smoke asserts.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn merged_bytes(&self) -> std::io::Result<String> {
        let merged = self.load_merged()?;
        let mut out = String::new();
        for entry in merged.values() {
            out.push_str(&entry.to_json_line());
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, status: &str) -> JournalEntry {
        JournalEntry {
            key: key.to_owned(),
            label: "base64 gcc+mcf".to_owned(),
            design: "base64".to_owned(),
            threads: 2,
            seed: 7,
            status: status.to_owned(),
            attempts: 1,
            ipc: 1.25,
            cycles: 1_000,
            committed: 1_250,
            completion: "fixed-window".to_owned(),
            error: String::new(),
            message: "quote \" backslash \\ newline \n done".to_owned(),
            validated: "clean".to_owned(),
            mix: "gcc+mcf".to_owned(),
            tcpi: "1.500000,1.750000".to_owned(),
            epi: 0.421337,
            edp: 0.631019,
        }
    }

    #[test]
    fn entries_without_a_validated_field_still_load() {
        // Journals written before the validation tier existed lack the
        // field; they must keep resuming (empty = tier was off).
        let line = r#"{"key":"old","label":"l","design":"base64","threads":2,"seed":7,"status":"ok","attempts":1,"ipc":1.0,"cycles":10,"committed":10,"completion":"fixed-window","error":"","message":""}"#;
        let map = parse_flat_json(line).expect("parses");
        let e = JournalEntry::from_map(&map).expect("rebuilds");
        assert_eq!(e.validated, "");
        assert_eq!(e.mix, "", "pre-sweep entries default the mix");
        assert!(e.thread_cpis().is_empty());
        assert_eq!(e.epi, 0.0);
    }

    #[test]
    fn thread_cpis_roundtrip() {
        let e = entry("k", "ok");
        assert_eq!(e.thread_cpis(), vec![1.5, 1.75]);
    }

    #[test]
    fn sharded_merge_prefers_ok_and_is_layout_independent() {
        let dir = std::env::temp_dir().join("shelfsim_journal_test_shards");
        let _ = std::fs::remove_dir_all(&dir);
        let sj = ShardedJournal::new(&dir);
        // Worker 0: k1 quarantined, k2 ok. Worker 1: k1 ok (overlapping
        // shard — a later sweep retried it), plus a crash-truncated tail.
        let mut w0 = sj.open_writer(0).expect("shard 0");
        let mut q = entry("k1", "quarantined");
        q.error = "panic".to_owned();
        w0.buffer(&q);
        w0.buffer(&entry("k2", "ok"));
        w0.flush().expect("flush");
        let mut w1 = sj.open_writer(1).expect("shard 1");
        w1.buffer(&entry("k1", "ok"));
        w1.flush().expect("flush");
        use std::io::Write as _;
        let mut raw = OpenOptions::new()
            .append(true)
            .open(sj.shard_path(1))
            .expect("reopen");
        raw.write_all(br#"{"key":"k9","status":"ok","torn"#)
            .expect("write");
        drop(raw);

        let merged = sj.load_merged().expect("merge");
        assert_eq!(merged.len(), 2, "torn k9 line skipped");
        assert_eq!(merged["k1"].status, "ok", "ok beats quarantined");
        let bytes_a = sj.merged_bytes().expect("bytes");

        // The same completed run set in a different shard layout renders
        // byte-identical merged output.
        let dir_b = std::env::temp_dir().join("shelfsim_journal_test_shards_b");
        let _ = std::fs::remove_dir_all(&dir_b);
        let sj_b = ShardedJournal::new(&dir_b);
        let mut w = sj_b.open_writer(3).expect("shard 3");
        w.buffer(&entry("k2", "ok"));
        w.buffer(&entry("k1", "ok"));
        w.flush().expect("flush");
        assert_eq!(bytes_a, sj_b.merged_bytes().expect("bytes"));
    }

    #[test]
    fn buffered_writer_is_byte_identical_to_unbuffered_appends() {
        let dir = std::env::temp_dir().join("shelfsim_journal_test_buffered");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let entries: Vec<JournalEntry> = (0..5)
            .map(|i| {
                let mut e = entry(
                    &format!("k{i}"),
                    if i % 2 == 0 { "ok" } else { "quarantined" },
                );
                e.seed = i;
                e
            })
            .collect();

        // Unbuffered path: one locked append per line (the legacy journal).
        let unbuffered = dir.join("unbuffered.jsonl");
        let mut f = Journal::new(&unbuffered).open_append().expect("open");
        for e in &entries {
            Journal::append_to(&mut f, e).expect("append");
        }
        drop(f);

        // Buffered path: everything staged locally, one flush at the end.
        let buffered = dir.join("buffered.jsonl");
        let mut w = ShardWriter::open(&buffered).expect("open");
        for e in &entries {
            w.buffer(e);
        }
        w.flush().expect("flush");
        drop(w);

        assert_eq!(
            std::fs::read(&unbuffered).expect("read"),
            std::fs::read(&buffered).expect("read"),
            "buffering must not change journal bytes"
        );
    }

    #[test]
    fn missing_shard_dir_is_empty() {
        let sj = ShardedJournal::new("/nonexistent/definitely/missing-dir");
        assert!(sj.load_merged().expect("missing dir is fine").is_empty());
        assert!(sj.merged_bytes().expect("missing dir is fine").is_empty());
    }

    #[test]
    fn roundtrips_through_json_line() {
        let e = entry("abcd", "ok");
        let line = e.to_json_line();
        let map = parse_flat_json(&line).expect("parses");
        let back = JournalEntry::from_map(&map).expect("rebuilds");
        assert_eq!(e, back);
    }

    #[test]
    fn load_skips_malformed_lines_and_keeps_last_entry_per_key() {
        let dir = std::env::temp_dir().join("shelfsim_journal_test_load");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("j.jsonl");
        let j = Journal::new(&path);
        let _ = std::fs::remove_file(&path);
        let mut f = j.open_append().expect("open");
        Journal::append_to(&mut f, &entry("k1", "quarantined")).expect("write");
        Journal::append_to(&mut f, &entry("k2", "ok")).expect("write");
        // A retry later overwrote k1's outcome, and a crash truncated the
        // final line mid-write.
        Journal::append_to(&mut f, &entry("k1", "ok")).expect("write");
        use std::io::Write as _;
        f.write_all(br#"{"key":"k3","status":"ok","trunc"#)
            .expect("write");
        drop(f);
        let loaded = j.load().expect("load");
        assert_eq!(loaded.len(), 2, "k3's torn line is skipped");
        assert_eq!(loaded["k1"].status, "ok", "last entry per key wins");
        assert_eq!(loaded["k2"].ipc, 1.25);
    }

    #[test]
    fn missing_journal_is_empty() {
        let j = Journal::new("/nonexistent/definitely/missing.jsonl");
        assert!(j.load().expect("missing file is fine").is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_json("not json").is_none());
        assert!(parse_flat_json("{\"a\":}").is_none());
        assert!(parse_flat_json("{\"a\":1} trailing").is_none());
        assert!(parse_flat_json("{\"a\" 1}").is_none());
        let ok = parse_flat_json(r#"{ "a" : "b" , "n" : 1.5 }"#).expect("spaced json parses");
        assert_eq!(ok["a"], "b");
        assert_eq!(ok["n"], "1.5");
    }
}
