//! The campaign executor: a worker pool that runs the job matrix with
//! per-run `catch_unwind` isolation, a forward-progress watchdog, bounded
//! retry with diagnostics escalation, quarantine, and journal-backed
//! resume.

use crate::cache::ResultCache;
use crate::fault::FaultKind;
use crate::journal::{Journal, JournalEntry, ShardWriter, ShardedJournal};
use crate::pool::StealQueues;
use crate::report::CampaignReport;
use crate::spec::{CampaignSpec, RunSpec};
use shelfsim_core::{Completion, SimError, Simulation, Watchdog};
use shelfsim_workload::Program;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// Per-worker scratch reused across runs (arena-style): memoizes
/// `build_program` results keyed by `(benchmark, program seed)`. A sweep
/// matrix re-runs the same mixes against every design point, and a single
/// run builds its programs up to three times (pre-flight, validation tier,
/// attempt) — the memo collapses all of those to one generation each.
#[derive(Default)]
pub struct WorkerScratch {
    programs: HashMap<(String, u64), Program>,
    /// Programs generated from scratch (memo misses).
    pub builds: usize,
    /// Programs served from the memo.
    pub hits: usize,
}

impl WorkerScratch {
    /// A fresh scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact per-thread `(name, program)` pairs `spec` simulates,
    /// memoized. Errors with the unknown benchmark's message (the same
    /// text `Simulation::from_names` produces, so the `Config` failure
    /// taxonomy is unchanged).
    pub fn programs_for(&mut self, spec: &RunSpec) -> Result<Vec<(String, Program)>, String> {
        let mut out = Vec::with_capacity(spec.mix.len());
        for (t, name) in spec.mix.iter().enumerate() {
            let seed = shelfsim_core::thread_program_seed(spec.seed, t);
            let key = (name.clone(), seed);
            if let Some(p) = self.programs.get(&key) {
                self.hits += 1;
                out.push((name.clone(), p.clone()));
                continue;
            }
            let profile = shelfsim_workload::suite::by_name(name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            let program = profile.build_program(seed);
            self.builds += 1;
            self.programs.insert(key, program.clone());
            out.push((name.clone(), program));
        }
        Ok(out)
    }
}

/// Final status of one campaign run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// A (possibly retried) attempt produced results.
    Ok,
    /// Every attempt failed; the run is excluded from aggregation.
    Quarantined,
    /// The static-analysis pre-flight rejected the run before any cycle
    /// was simulated (zero attempts consumed).
    Rejected,
}

impl RunStatus {
    /// Stable lowercase tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Quarantined => "quarantined",
            RunStatus::Rejected => "rejected",
        }
    }
}

/// Classified cause of a failed attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The run panicked (caught by the isolation boundary).
    Panic,
    /// The forward-progress watchdog fired.
    Deadlock,
    /// The run is unbuildable (unknown design or benchmark) — retrying
    /// cannot help, so it quarantines immediately.
    Config,
    /// The static-analysis pre-flight proved the run misconfigured
    /// (config-lint, program-lint, or resource-adequacy errors) before
    /// a single cycle was simulated.
    AnalysisRejected,
    /// The validation tier's lockstep comparison against the functional
    /// reference diverged (or violated a harness invariant). Deterministic,
    /// so retrying cannot help — the run quarantines immediately.
    Divergence,
}

impl FailureKind {
    /// Stable lowercase tag (taxonomy key).
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Config => "config",
            FailureKind::AnalysisRejected => "analysis-rejected",
            FailureKind::Divergence => "divergence",
        }
    }
}

/// A structured record of one failed attempt: a self-contained reproducer
/// (design + mix + seed) plus the failure diagnosis.
#[derive(Clone, Debug)]
pub struct RunFailure {
    /// Benchmark mix label.
    pub bench: String,
    /// Design-point name.
    pub design: String,
    /// Workload seed.
    pub seed: u64,
    /// Driver cycle at which a deadlock was diagnosed (`None` for panics).
    pub cycle: Option<u64>,
    /// Failure classification.
    pub kind: FailureKind,
    /// The panic payload or deadlock diagnosis.
    pub panic_msg: String,
    /// Which attempt (0-based) failed.
    pub attempt: u32,
    /// Whether the attempt ran in the escalated diagnostics tier.
    pub diagnostics: bool,
}

/// Result numbers of a successful run (the aggregation inputs; the full
/// [`shelfsim_core::RunResult`] stays inside the worker).
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Aggregate IPC.
    pub ipc: f64,
    /// Measured cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// How the measurement ended.
    pub completion: Completion,
    /// Per-thread CPIs in mix order (the Pareto report's STP inputs;
    /// empty when restored from a pre-sweep journal).
    pub thread_cpi: Vec<f64>,
    /// Energy per committed instruction in nJ ([`shelfsim_energy`] model;
    /// 0.0 when restored from a pre-sweep journal).
    pub epi: f64,
    /// Energy-delay product (nJ/instr × CPI; 0.0 when restored from a
    /// pre-sweep journal).
    pub edp: f64,
}

/// Final record of one campaign run: status, attempt history, and outcome.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The run that was executed.
    pub spec: RunSpec,
    /// Final status.
    pub status: RunStatus,
    /// Attempts consumed.
    pub attempts: u32,
    /// Every failed attempt, in order.
    pub failures: Vec<RunFailure>,
    /// The successful outcome (`None` when quarantined).
    pub outcome: Option<RunOutcome>,
    /// True when the record was restored from the journal instead of
    /// executed (resume).
    pub resumed: bool,
    /// True when the validation tier ran and the run validated clean
    /// against the functional reference.
    pub validated: bool,
}

impl RunRecord {
    fn from_journal(spec: RunSpec, entry: &JournalEntry) -> Self {
        let status = match entry.status.as_str() {
            "ok" => RunStatus::Ok,
            "rejected" => RunStatus::Rejected,
            _ => RunStatus::Quarantined,
        };
        let outcome = (status == RunStatus::Ok).then(|| RunOutcome {
            ipc: entry.ipc,
            cycles: entry.cycles,
            committed: entry.committed,
            completion: parse_completion(&entry.completion),
            thread_cpi: entry.thread_cpis(),
            epi: entry.epi,
            edp: entry.edp,
        });
        let failures = if entry.error.is_empty() {
            Vec::new()
        } else {
            vec![RunFailure {
                bench: spec.mix.join("+"),
                design: spec.design.clone(),
                seed: spec.seed,
                cycle: None,
                kind: match entry.error.as_str() {
                    "deadlock" => FailureKind::Deadlock,
                    "config" => FailureKind::Config,
                    "analysis-rejected" => FailureKind::AnalysisRejected,
                    "divergence" => FailureKind::Divergence,
                    _ => FailureKind::Panic,
                },
                panic_msg: entry.message.clone(),
                attempt: entry.attempts.saturating_sub(1),
                diagnostics: false,
            }]
        };
        RunRecord {
            spec,
            status,
            attempts: entry.attempts,
            failures,
            outcome,
            resumed: true,
            validated: entry.validated == "clean",
        }
    }

    /// Renders the record as its journal entry (also how journal-less
    /// surfaces hand records to the Pareto report).
    pub fn to_journal_entry(&self) -> JournalEntry {
        let last_failure = self.failures.last();
        JournalEntry {
            key: self.spec.key(),
            label: self.spec.label(),
            design: self.spec.design.clone(),
            threads: self.spec.mix.len(),
            seed: self.spec.seed,
            status: self.status.as_str().to_owned(),
            attempts: self.attempts,
            ipc: self.outcome.as_ref().map_or(0.0, |o| o.ipc),
            cycles: self.outcome.as_ref().map_or(0, |o| o.cycles),
            committed: self.outcome.as_ref().map_or(0, |o| o.committed),
            completion: self
                .outcome
                .as_ref()
                .map_or(String::new(), |o| o.completion.as_str().to_owned()),
            error: last_failure.map_or(String::new(), |f| f.kind.as_str().to_owned()),
            message: last_failure.map_or(String::new(), |f| f.panic_msg.clone()),
            validated: if self.validated {
                "clean".to_owned()
            } else {
                String::new()
            },
            mix: self.spec.mix.join("+"),
            tcpi: self.outcome.as_ref().map_or(String::new(), |o| {
                o.thread_cpi
                    .iter()
                    .map(|c| format!("{c:.6}"))
                    .collect::<Vec<_>>()
                    .join(",")
            }),
            epi: self.outcome.as_ref().map_or(0.0, |o| o.epi),
            edp: self.outcome.as_ref().map_or(0.0, |o| o.edp),
        }
    }
}

fn parse_completion(tag: &str) -> Completion {
    match tag {
        "commit-target" => Completion::CommitTarget,
        "max-cycles-expired" => Completion::MaxCyclesExpired,
        _ => Completion::FixedWindow,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Refcounted suppression of the default panic hook: while at least one
/// guard is alive, caught panics do not spew backtraces to stderr. The
/// previous hook is restored when the last guard drops.
struct QuietPanics {
    active: bool,
}

type Hook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
static QUIET_DEPTH: Mutex<usize> = Mutex::new(0);
static PREV_HOOK: Mutex<Option<Hook>> = Mutex::new(None);

impl QuietPanics {
    fn new(enable: bool) -> Self {
        if enable {
            let mut depth = QUIET_DEPTH.lock().expect("hook registry");
            if *depth == 0 {
                *PREV_HOOK.lock().expect("hook registry") = Some(panic::take_hook());
                panic::set_hook(Box::new(|_| {}));
            }
            *depth += 1;
        }
        QuietPanics { active: enable }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if self.active {
            let mut depth = QUIET_DEPTH.lock().expect("hook registry");
            *depth -= 1;
            if *depth == 0 {
                if let Some(prev) = PREV_HOOK.lock().expect("hook registry").take() {
                    panic::set_hook(prev);
                }
            }
        }
    }
}

/// Validation-tier budget: committed instructions per thread compared in
/// lockstep against the functional reference before the timing run.
const VALIDATE_COMMITS: u64 = 1_000;
/// Validation-tier cycle ceiling (the harness reports a stuck core beyond
/// this).
const VALIDATE_MAX_CYCLES: u64 = 200_000;

/// The validation tier: lockstep-validates the exact config and per-thread
/// programs this run would simulate. Returns the failure on divergence or
/// an invariant violation (both deterministic — the caller skips retries).
fn validate_run(
    cfg: &shelfsim_core::CoreConfig,
    programs: &[Program],
    fail: &impl Fn(FailureKind, Option<u64>, String) -> RunFailure,
) -> Result<(), RunFailure> {
    let lcfg = shelfsim_validate::LockstepConfig {
        commits_per_thread: VALIDATE_COMMITS,
        max_cycles: VALIDATE_MAX_CYCLES,
        ..Default::default()
    };
    match shelfsim_validate::run_lockstep(cfg, programs, &lcfg) {
        shelfsim_validate::Verdict::Clean(_) => Ok(()),
        shelfsim_validate::Verdict::Diverged(d) => {
            Err(fail(FailureKind::Divergence, Some(d.cycle), d.to_string()))
        }
        shelfsim_validate::Verdict::Invariant(v) => {
            Err(fail(FailureKind::Divergence, None, v.to_string()))
        }
    }
}

/// Executes one attempt of one run inside the isolation boundary.
fn run_attempt(
    spec: &RunSpec,
    watchdog: Option<Watchdog>,
    fault: Option<FaultKind>,
    attempt: u32,
    trace_dir: Option<&std::path::Path>,
    validate: bool,
    scratch: &mut WorkerScratch,
) -> Result<RunOutcome, RunFailure> {
    let diagnostics = attempt > 0;
    let fail = |kind: FailureKind, cycle: Option<u64>, msg: String| RunFailure {
        bench: spec.mix.join("+"),
        design: spec.design.clone(),
        seed: spec.seed,
        cycle,
        kind,
        panic_msg: msg,
        attempt,
        diagnostics,
    };

    let isolated = panic::catch_unwind(AssertUnwindSafe(|| -> Result<RunOutcome, RunFailure> {
        if fault == Some(FaultKind::Panic) {
            panic!(
                "injected fault: panic (run #{}, attempt {attempt})",
                spec.index
            );
        }
        let cfg = spec
            .resolved_config()
            .map_err(|msg| fail(FailureKind::Config, None, msg))?;
        let programs = scratch
            .programs_for(spec)
            .map_err(|msg| fail(FailureKind::Config, None, msg))?;
        if validate {
            // Differential tier: the run's exact config and programs must
            // track the functional reference before the timing run counts.
            let bare: Vec<Program> = programs.iter().map(|(_, p)| p.clone()).collect();
            validate_run(&cfg, &bare, &fail)?;
        }
        // The energy model depends only on the config; capture it before
        // `cfg` moves into the simulation.
        let energy = shelfsim_energy::EnergyModel::for_config(&cfg);
        let mut sim = Simulation::from_programs(cfg, programs, spec.seed);
        if diagnostics {
            // Escalation tier: keep a commit log so a reproduced failure
            // carries pipeline context. With `--features sanitize` the
            // per-cycle invariant audits are compiled in as well.
            sim.enable_commit_log(64);
            if trace_dir.is_some() {
                // Full lifecycle trace, dumped below on a diagnosed failure.
                sim.enable_tracer(256, 64);
            }
        }
        match fault {
            Some(FaultKind::Stall) => {
                // A recoverable slowdown: strictly inside the watchdog
                // window, so a correct watchdog must NOT fire.
                let window = watchdog.map_or(1_000, |w| w.window);
                sim.inject_stall(spec.warmup / 2 + 1, window / 2);
            }
            Some(FaultKind::Livelock) => {
                // No thread ever commits again: the watchdog must abort.
                sim.inject_stall(spec.warmup / 2 + 1, u64::MAX);
            }
            _ => {}
        }
        match sim.try_run(spec.warmup, spec.measure, watchdog) {
            Ok(r) => {
                let er = energy.report(&r);
                Ok(RunOutcome {
                    ipc: r.ipc(),
                    cycles: r.cycles,
                    committed: r.counters.committed,
                    completion: r.completion,
                    thread_cpi: r.cpis(),
                    epi: er.energy_per_instruction(),
                    edp: er.edp(),
                })
            }
            Err(SimError::Deadlock(d)) => {
                // Best-effort trace dump: the watchdog diagnosed the stall,
                // so the tracer (when escalated) still holds the window that
                // led up to it. A panic, by contrast, unwinds past `sim` —
                // nothing to dump there.
                if let (Some(dir), Some(tracer)) = (trace_dir, sim.tracer()) {
                    let _ = std::fs::create_dir_all(dir);
                    let path = dir.join(format!("{}-attempt{attempt}.jsonl", spec.key()));
                    let _ = std::fs::write(path, tracer.export_jsonl());
                }
                Err(fail(FailureKind::Deadlock, Some(d.cycle), d.to_string()))
            }
        }
    }));
    match isolated {
        Ok(inner) => inner,
        Err(payload) => Err(fail(FailureKind::Panic, None, panic_message(payload))),
    }
}

/// Static-analysis pre-flight over one queued run: lints the resolved
/// config and the exact per-thread programs the run would simulate, and
/// proves resource adequacy. Returns the rendered error report when the
/// run must be rejected; `None` to proceed (including when the spec does
/// not even resolve — the attempt path owns that `Config` failure, with
/// its established message).
fn preflight_check(spec: &RunSpec, scratch: &mut WorkerScratch) -> Option<String> {
    let cfg = spec.resolved_config().ok()?;
    let programs: Vec<Program> = scratch
        .programs_for(spec)
        .ok()?
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    let report = shelfsim_analyze::preflight(&cfg, &programs);
    report.has_errors().then(|| {
        let lines: Vec<String> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == shelfsim_analyze::Severity::Error)
            .map(|d| d.to_string())
            .collect();
        lines.join("; ")
    })
}

/// Executes one run to its final status: pre-flight rejection, or bounded
/// retries with diagnostics escalation, then quarantine.
fn execute(spec: &RunSpec, campaign: &CampaignSpec, scratch: &mut WorkerScratch) -> RunRecord {
    if campaign.preflight {
        if let Some(msg) = preflight_check(spec, scratch) {
            return RunRecord {
                spec: spec.clone(),
                status: RunStatus::Rejected,
                attempts: 0,
                failures: vec![RunFailure {
                    bench: spec.mix.join("+"),
                    design: spec.design.clone(),
                    seed: spec.seed,
                    cycle: None,
                    kind: FailureKind::AnalysisRejected,
                    panic_msg: msg,
                    attempt: 0,
                    diagnostics: false,
                }],
                outcome: None,
                resumed: false,
                validated: false,
            };
        }
    }
    let watchdog = campaign.watchdog.map(Watchdog::new);
    let mut failures = Vec::new();
    for attempt in 0..campaign.max_attempts.max(1) {
        let fault = campaign.faults.fault_for(spec.index, attempt);
        match run_attempt(
            spec,
            watchdog,
            fault,
            attempt,
            campaign.trace_dir.as_deref(),
            campaign.validate,
            scratch,
        ) {
            Ok(outcome) => {
                return RunRecord {
                    spec: spec.clone(),
                    status: RunStatus::Ok,
                    attempts: attempt + 1,
                    failures,
                    outcome: Some(outcome),
                    resumed: false,
                    validated: campaign.validate,
                }
            }
            Err(f) => {
                // Deterministic failures (unbuildable config, validation
                // divergence) cannot be fixed by retrying.
                let deterministic =
                    f.kind == FailureKind::Config || f.kind == FailureKind::Divergence;
                failures.push(f);
                if deterministic {
                    break;
                }
            }
        }
    }
    RunRecord {
        spec: spec.clone(),
        status: RunStatus::Quarantined,
        attempts: failures.len() as u32,
        failures,
        outcome: None,
        resumed: false,
        validated: false,
    }
}

/// Runs a campaign to completion: dedupes the matrix against all merged
/// journal history (legacy single-file and/or sharded), executes the cache
/// misses on `spec.workers` threads via work-stealing deques with per-run
/// isolation, and returns the aggregate report. Individual-run failure
/// never aborts the campaign — failed runs are retried, then quarantined,
/// and the report carries partial results plus the error taxonomy.
///
/// Each worker keeps a scratch arena (memoized program builds) for its
/// whole lifetime and, when `spec.journal_dir` is set, appends outcomes to
/// its own journal shard with no shared lock.
///
/// # Errors
///
/// Returns an error only for journal I/O failures (loading an unreadable
/// journal, opening a shard, or failing to append an outcome).
pub fn run_campaign(spec: &CampaignSpec) -> std::io::Result<CampaignReport> {
    let sharded = spec.journal_dir.as_ref().map(ShardedJournal::new);
    let cache = ResultCache::load(sharded.as_ref(), spec.journal.as_deref())?;
    let admission = cache.admit(&spec.runs);

    let mut records: Vec<Option<RunRecord>> = vec![None; spec.runs.len()];
    for (i, entry) in &admission.hits {
        records[*i] = Some(RunRecord::from_journal(spec.runs[*i].clone(), entry));
    }
    let resumed = admission.hits.len();

    let journal_file = match &spec.journal {
        Some(p) => Some(Mutex::new(Journal::new(p).open_append()?)),
        None => None,
    };
    let workers = spec.workers.clamp(1, spec.runs.len().max(1));
    let mut shard_writers: Vec<Option<ShardWriter>> = Vec::with_capacity(workers);
    for w in 0..workers {
        shard_writers.push(match &sharded {
            Some(sj) => Some(sj.open_writer(w)?),
            None => None,
        });
    }

    let _quiet = QuietPanics::new(spec.quiet_panics);
    let queues = StealQueues::new(admission.misses, workers);
    let finished: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::new());
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for (w, mut shard) in shard_writers.into_iter().enumerate() {
            let queues = &queues;
            let finished = &finished;
            let io_error = &io_error;
            let journal_file = &journal_file;
            scope.spawn(move || {
                let mut scratch = WorkerScratch::new();
                while let Some(i) = queues.next(w) {
                    let record = execute(&spec.runs[i], spec, &mut scratch);
                    let entry = record.to_journal_entry();
                    if let Some(sw) = &mut shard {
                        // Lock-free: this worker owns the shard file. The
                        // entry is buffered and flushed with one write per
                        // run completion.
                        sw.buffer(&entry);
                        if let Err(e) = sw.flush() {
                            io_error.lock().expect("io error slot").get_or_insert(e);
                        }
                    }
                    if let Some(file) = &journal_file {
                        let mut guard = file.lock().expect("journal file");
                        if let Err(e) = Journal::append_to(&mut guard, &entry) {
                            io_error.lock().expect("io error slot").get_or_insert(e);
                        }
                    }
                    finished.lock().expect("results").push((i, record));
                }
            });
        }
    });

    if let Some(e) = io_error.into_inner().expect("io error slot") {
        return Err(e);
    }
    for (i, record) in finished.into_inner().expect("results") {
        records[i] = Some(record);
    }
    let records = records
        .into_iter()
        .map(|r| r.expect("every run either resumed or executed"))
        .collect();
    Ok(CampaignReport::new(records, resumed))
}
