//! The config-hash result cache: dedupes requested runs against all merged
//! journal history before any cycle is simulated.
//!
//! [`crate::RunSpec::key`] already fingerprints everything that determines
//! a run's result (resolved config hash, mix, seed, measurement budget,
//! overrides), and the simulator is deterministic — so a journaled `ok`
//! entry for a key *is* the run's result. Admission splits a requested
//! matrix into cache hits (restored without simulating) and misses (queued
//! for the pool). History can come from any combination of a legacy
//! single-file journal and a sharded journal directory.

use crate::journal::{Journal, JournalEntry, ShardedJournal};
use crate::spec::RunSpec;
use std::collections::BTreeMap;
use std::path::Path;

/// Merged journal history keyed by run fingerprint.
#[derive(Clone, Debug, Default)]
pub struct ResultCache {
    entries: BTreeMap<String, JournalEntry>,
}

/// One matrix's admission verdict: which runs the cache satisfies and
/// which must simulate.
#[derive(Clone, Debug)]
pub struct Admission {
    /// `(run index, cached entry)` for every hit.
    pub hits: Vec<(usize, JournalEntry)>,
    /// Run indices that must execute.
    pub misses: Vec<usize>,
}

impl Admission {
    /// Cache-hit fraction of the requested matrix (1.0 for an empty one —
    /// nothing needs simulating).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.len() + self.misses.len();
        if total == 0 {
            return 1.0;
        }
        self.hits.len() as f64 / total as f64
    }
}

impl ResultCache {
    /// An empty cache (every admission misses).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the cache from merged history: a sharded journal directory,
    /// a legacy single-file journal, or both. When both hold the same key,
    /// the sharded entry wins only by the same better-status rule the shard
    /// merge itself uses — here the simpler precedence "legacy first, then
    /// sharded overrides" suffices because identical keys mean identical
    /// results for `ok` entries.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors.
    pub fn load(sharded: Option<&ShardedJournal>, legacy: Option<&Path>) -> std::io::Result<Self> {
        let mut entries = BTreeMap::new();
        if let Some(path) = legacy {
            entries.extend(Journal::new(path).load()?);
        }
        if let Some(sj) = sharded {
            entries.extend(sj.load_merged()?);
        }
        Ok(ResultCache { entries })
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no history.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached entry for a key, if any.
    pub fn get(&self, key: &str) -> Option<&JournalEntry> {
        self.entries.get(key)
    }

    /// Splits a requested matrix into hits and misses. Only final entries
    /// count as hits (every journaled status is final — `ok`,
    /// `quarantined`, and `rejected` all resume without re-execution, the
    /// same contract the single-file journal has always had).
    pub fn admit(&self, runs: &[RunSpec]) -> Admission {
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            match self.entries.get(&run.key()) {
                Some(entry) => hits.push((i, entry.clone())),
                None => misses.push(i),
            }
        }
        Admission { hits, misses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str) -> JournalEntry {
        JournalEntry {
            key: key.to_owned(),
            label: "base64 gcc".to_owned(),
            design: "base64".to_owned(),
            threads: 1,
            seed: 7,
            status: "ok".to_owned(),
            attempts: 1,
            ipc: 1.0,
            cycles: 100,
            committed: 100,
            completion: "fixed-window".to_owned(),
            error: String::new(),
            message: String::new(),
            validated: String::new(),
            mix: "gcc".to_owned(),
            tcpi: "1.000000".to_owned(),
            epi: 0.4,
            edp: 0.4,
        }
    }

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            index: 0,
            design: "base64".to_owned(),
            mix: vec!["gcc".to_owned()],
            seed,
            warmup: 100,
            measure: 1_000,
            overrides: Vec::new(),
        }
    }

    #[test]
    fn admission_splits_hits_and_misses() {
        let hit_spec = spec(7);
        let mut cache = ResultCache::empty();
        cache.entries.insert(hit_spec.key(), entry(&hit_spec.key()));
        let runs = vec![hit_spec, spec(8)];
        let adm = cache.admit(&runs);
        assert_eq!(adm.hits.len(), 1);
        assert_eq!(adm.misses, vec![1]);
        assert!((adm.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merges_legacy_and_sharded_history() {
        let dir = std::env::temp_dir().join("shelfsim_cache_test_merge");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let legacy = dir.join("legacy.jsonl");
        let j = Journal::new(&legacy);
        let mut f = j.open_append().expect("open");
        Journal::append_to(&mut f, &entry("ka")).expect("write");
        drop(f);
        let sj = ShardedJournal::new(dir.join("shards"));
        let mut w = sj.open_writer(0).expect("shard");
        w.buffer(&entry("kb"));
        w.flush().expect("flush");

        let cache = ResultCache::load(Some(&sj), Some(&legacy)).expect("load");
        assert_eq!(cache.len(), 2);
        assert!(cache.get("ka").is_some() && cache.get("kb").is_some());
    }
}
