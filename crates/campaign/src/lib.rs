//! `shelfsim-campaign` — a fault-tolerant runner for the paper's sweep
//! methodology: the full benchmark × design-point × thread-count matrix
//! executed as a resilient job queue (the shape of Figs. 1, 10, 11, 14 of
//! Sleiman & Wenisch, ISCA 2016).
//!
//! A campaign of hundreds of runs must survive individual-run failure: a
//! wedged pipeline must not spin forever, a panic must not kill hours of
//! completed work, and a killed process must resume where it stopped. The
//! crate provides:
//!
//! * **Per-run isolation** ([`run_campaign`]) — every run executes on a
//!   worker thread under `catch_unwind`; a panic becomes a structured
//!   [`RunFailure`] instead of aborting the campaign.
//! * **Forward-progress watchdog** — runs execute through
//!   [`shelfsim_core::Simulation::try_run`] with a
//!   [`shelfsim_core::Watchdog`]: if no thread commits for the configured
//!   cycle window the run aborts with a deadlock diagnosis (ROB/IQ/LSQ/
//!   shelf occupancy snapshot) instead of burning the whole cycle budget.
//! * **Retry with escalation** — failed runs are retried a bounded number
//!   of times; the first retry escalates to the diagnostics tier (commit
//!   log enabled, invariant sanitizer when compiled with `--features
//!   sanitize`); runs that keep failing are quarantined and the campaign
//!   completes with partial results plus an error-taxonomy summary.
//! * **Resumable journal** ([`Journal`]) — every final run outcome is
//!   appended to a JSONL journal keyed by a configuration fingerprint;
//!   re-invoking the same campaign skips completed runs idempotently.
//! * **Deterministic fault injection** ([`FaultPlan`]) — seeded injection
//!   of panics, artificial stalls, and watchdog-window violations into
//!   chosen runs, so the isolation/retry/resume machinery is itself
//!   testable end-to-end.
//!
//! # Example
//!
//! ```
//! use shelfsim_campaign::{CampaignSpec, FaultKind, FaultPlan, run_campaign};
//!
//! let runs = CampaignSpec::matrix(
//!     &["base64".into(), "shelf-opt".into()],
//!     &[vec!["gcc".into(), "mcf".into()]],
//!     7,    // seed
//!     200,  // warm-up cycles
//!     1000, // measured cycles
//! );
//! let spec = CampaignSpec::new(runs)
//!     .with_watchdog(Some(5_000))
//!     // Run #0 panics on its first attempt, then recovers on retry.
//!     .with_faults(FaultPlan::new().inject(0, FaultKind::Panic, 1));
//! let report = run_campaign(&spec).unwrap();
//! assert_eq!(report.completed(), 2);
//! assert!(report.taxonomy().count("panic") >= 1);
//! ```

//!
//! PR 10 scaled the runner from a handful of runs to the paper's full
//! sweep surface: [`SweepSpec`] expands the benchmark × mix × design ×
//! thread-count matrix, [`pool::StealQueues`] distributes it over
//! work-stealing per-worker deques, [`ShardedJournal`] gives every worker
//! a lock-free journal shard merged deterministically on read,
//! [`ResultCache`] dedupes requested runs against all merged history by
//! config-hash key, and [`pareto_report`] reproduces the paper's Fig 13
//! STP / energy-delay / area trade-off over the journal.

pub mod cache;
pub mod fault;
pub mod journal;
pub mod pareto;
pub mod pool;
pub mod report;
pub mod runner;
pub mod spec;
pub mod sweep;

pub use cache::{Admission, ResultCache};
pub use fault::{Fault, FaultKind, FaultMix, FaultPlan};
pub use journal::{Journal, JournalEntry, ShardWriter, ShardedJournal};
pub use pareto::{pareto_report, ParetoPoint, ParetoReport};
pub use pool::{shard_plan, StealQueues};
pub use report::CampaignReport;
pub use runner::{
    run_campaign, FailureKind, RunFailure, RunOutcome, RunRecord, RunStatus, WorkerScratch,
};
pub use spec::{CampaignSpec, RunSpec};
pub use sweep::SweepSpec;
