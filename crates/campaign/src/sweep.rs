//! Sweep-scale matrix expansion: the paper's full evaluation surface
//! (benchmark × mix × design × thread count) expanded into a deterministic
//! run list for the work-stealing pool.
//!
//! The thread-count axis is what distinguishes a sweep from a plain
//! campaign matrix: each SMT width gets its own balanced-random mix set,
//! and the single-thread axis enumerates the *distinct benchmarks those
//! mixes use* — exactly the single-thread CPI references the Pareto
//! report's STP computation needs (Eyerman & Eeckhout's STP divides each
//! thread's multi-thread CPI into its single-thread CPI on the same
//! design).

use crate::spec::RunSpec;
use shelfsim_workload::balanced_random_mixes;
use std::collections::BTreeSet;

/// The full mix-generation pool per thread count (one balanced round over
/// the 28-benchmark suite; `mixes_per_count` takes a prefix).
const MIX_POOL: usize = 28;

/// A sweep over designs × thread counts × mixes.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Design-point names (resolved per thread count via
    /// [`shelfsim_analyze::design_by_name`]).
    pub designs: Vec<String>,
    /// SMT widths to sweep. `1` is implied whenever any width ≥ 2 is
    /// present (the Pareto STP references); listing it explicitly is
    /// also fine.
    pub thread_counts: Vec<usize>,
    /// Mixes per thread count ≥ 2 (clamped to the 28-mix balanced pool).
    pub mixes_per_count: usize,
    /// Workload/mix seed.
    pub seed: u64,
    /// Warm-up cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
}

impl SweepSpec {
    /// The mixes for each thread count, in sweep order: multi-thread
    /// counts as given, then the implied single-thread references (every
    /// distinct benchmark the multi-thread mixes use, sorted). Each entry
    /// is `(threads, mixes)`.
    pub fn mix_plan(&self) -> Vec<(usize, Vec<Vec<String>>)> {
        let names = shelfsim_workload::suite::names();
        let take = self.mixes_per_count.clamp(1, MIX_POOL);
        let mut plan = Vec::new();
        let mut st_refs: BTreeSet<String> = BTreeSet::new();
        let mut want_st = false;
        for &t in &self.thread_counts {
            if t <= 1 {
                want_st = true;
                continue;
            }
            let mixes: Vec<Vec<String>> =
                balanced_random_mixes(&names, t, MIX_POOL, self.seed.wrapping_add(t as u64))
                    .into_iter()
                    .take(take)
                    .map(|m| m.benchmarks.iter().map(|b| (*b).to_owned()).collect())
                    .collect();
            for mix in &mixes {
                st_refs.extend(mix.iter().cloned());
            }
            plan.push((t, mixes));
        }
        // Single-thread axis: the STP references for everything above. A
        // sweep of only T=1 falls back to a balanced single-benchmark set.
        if st_refs.is_empty() && want_st {
            st_refs.extend(
                balanced_random_mixes(&names, 1, MIX_POOL, self.seed)
                    .into_iter()
                    .take(take)
                    .map(|m| m.benchmarks[0].to_owned()),
            );
        }
        if !st_refs.is_empty() {
            plan.push((1, st_refs.into_iter().map(|b| vec![b]).collect()));
        }
        plan
    }

    /// Expands the sweep into its deterministic run list: designs outer,
    /// thread counts (per [`SweepSpec::mix_plan`]) middle, mixes inner.
    pub fn expand(&self) -> Vec<RunSpec> {
        let plan = self.mix_plan();
        let mut runs = Vec::new();
        for design in &self.designs {
            for (_, mixes) in &plan {
                for mix in mixes {
                    runs.push(RunSpec {
                        index: runs.len(),
                        design: design.clone(),
                        mix: mix.clone(),
                        seed: self.seed,
                        warmup: self.warmup,
                        measure: self.measure,
                        overrides: Vec::new(),
                    });
                }
            }
        }
        runs
    }

    /// Matrix size without expanding (designs × Σ mixes per thread count).
    pub fn matrix_size(&self) -> usize {
        let per_design: usize = self.mix_plan().iter().map(|(_, m)| m.len()).sum();
        self.designs.len() * per_design
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> SweepSpec {
        SweepSpec {
            designs: vec!["base64".to_owned(), "shelf-opt".to_owned()],
            thread_counts: vec![2, 4],
            mixes_per_count: 4,
            seed: 7,
            warmup: 100,
            measure: 1_000,
        }
    }

    #[test]
    fn expansion_is_deterministic_and_includes_st_references() {
        let s = sweep();
        let a = s.expand();
        let b = s.expand();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.key() == y.key() && x.index == y.index));
        assert_eq!(a.len(), s.matrix_size());

        // Every benchmark used by a multi-thread mix has a single-thread
        // reference run on every design.
        for design in &s.designs {
            let st: BTreeSet<&String> = a
                .iter()
                .filter(|r| r.design == *design && r.mix.len() == 1)
                .map(|r| &r.mix[0])
                .collect();
            for r in a.iter().filter(|r| r.design == *design && r.mix.len() > 1) {
                for b in &r.mix {
                    assert!(st.contains(b), "missing ST reference for {b}");
                }
            }
        }
        // All keys distinct.
        let keys: BTreeSet<String> = a.iter().map(|r| r.key()).collect();
        assert_eq!(keys.len(), a.len());
    }

    #[test]
    fn single_thread_only_sweep_still_expands() {
        let s = SweepSpec {
            thread_counts: vec![1],
            ..sweep()
        };
        let runs = s.expand();
        assert_eq!(runs.len(), 2 * 4, "2 designs x 4 single benchmarks");
        assert!(runs.iter().all(|r| r.mix.len() == 1));
    }

    #[test]
    fn mixes_per_count_clamps_to_pool() {
        let s = SweepSpec {
            mixes_per_count: 10_000,
            thread_counts: vec![2],
            ..sweep()
        };
        // 28 2-thread mixes over 28 benchmarks use every benchmark twice:
        // 28 mixes + 28 ST references per design.
        assert_eq!(s.matrix_size(), 2 * (28 + 28));
    }
}
