//! The Pareto-frontier report: the paper's Fig 13 trade-off view (STP vs
//! energy-delay vs area) computed over merged journal history.
//!
//! Every `(design, SMT width)` pair in the journal becomes one candidate
//! point: its STP is the geomean over mixes of per-run STP (each thread's
//! single-thread CPI on the same design divided by its multi-thread CPI —
//! Eyerman & Eeckhout's system throughput), its energy-delay product is
//! the geomean of the per-run EDP the energy model journaled, and its
//! area comes from [`shelfsim_energy::EnergyModel`] for the resolved
//! config. The frontier is the non-dominated set maximizing STP while
//! minimizing EDP and area.
//!
//! Single-thread CPI references come from the sweep's implied T=1 axis
//! (see [`crate::SweepSpec::mix_plan`]); the references use the thread-0
//! program seed, a documented approximation (thread t of a mix runs a
//! program seeded `seed ^ t<<8`, the reference runs the `seed` build —
//! same benchmark, statistically identical profile).

use crate::journal::JournalEntry;
use shelfsim_stats::{geomean, stp};
use std::collections::{BTreeMap, HashMap};

/// One aggregated `(design, threads)` candidate point.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// Design-point name.
    pub design: String,
    /// SMT width.
    pub threads: usize,
    /// Completed runs aggregated into the point.
    pub runs: usize,
    /// Geomean system throughput (higher is better).
    pub stp: f64,
    /// Geomean energy-delay product (lower is better).
    pub edp: f64,
    /// Core area in the energy model's arbitrary area units (lower is
    /// better; excludes L1, matching the paper's core-growth accounting —
    /// meaningful for comparisons between points, not as absolute mm²).
    pub area: f64,
    /// True when no other point dominates this one.
    pub on_frontier: bool,
}

/// The full Pareto report.
#[derive(Clone, Debug)]
pub struct ParetoReport {
    /// Candidate points, sorted by descending STP (frontier flags set).
    pub points: Vec<ParetoPoint>,
    /// Multi-thread `ok` runs that could not be scored (missing
    /// single-thread reference, missing per-thread CPIs, or an
    /// unresolvable design) — honest accounting, never silently dropped.
    pub skipped: usize,
}

/// `a` dominates `b` when it is at least as good on every objective and
/// strictly better on at least one (STP maximized; EDP and area
/// minimized).
fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    let ge = a.stp >= b.stp && a.edp <= b.edp && a.area <= b.area;
    let strict = a.stp > b.stp || a.edp < b.edp || a.area < b.area;
    ge && strict
}

/// Marks the non-dominated set. O(n²) in the number of points, which is
/// designs × thread counts — tiny; the expensive part (per-run scoring)
/// is what [`pareto_report`] parallelizes.
fn mark_frontier(points: &mut [ParetoPoint]) {
    for i in 0..points.len() {
        points[i].on_frontier =
            !(0..points.len()).any(|j| j != i && dominates(&points[j], &points[i]));
    }
}

/// Scores one `(design, threads)` group: geomean STP and EDP over its
/// runs. Returns the point plus the number of runs it had to skip.
fn score_group(
    design: &str,
    threads: usize,
    runs: &[&JournalEntry],
    st_refs: &HashMap<(String, String), f64>,
) -> (Option<ParetoPoint>, usize) {
    let Some(cfg) = shelfsim_analyze::design_by_name(design, threads) else {
        return (None, runs.len());
    };
    let area = shelfsim_energy::EnergyModel::for_config(&cfg).core_area(false);
    let mut stps = Vec::with_capacity(runs.len());
    let mut edps = Vec::with_capacity(runs.len());
    let mut skipped = 0usize;
    for entry in runs {
        let mt = entry.thread_cpis();
        let benches: Vec<&str> = entry.mix.split('+').collect();
        if mt.len() != threads || benches.len() != threads || entry.edp <= 0.0 {
            skipped += 1;
            continue;
        }
        let st: Option<Vec<f64>> = benches
            .iter()
            .map(|b| st_refs.get(&(design.to_owned(), (*b).to_owned())).copied())
            .collect();
        let Some(st) = st else {
            skipped += 1;
            continue;
        };
        stps.push(stp(&st, &mt));
        edps.push(entry.edp);
    }
    if stps.is_empty() {
        return (None, skipped);
    }
    let point = ParetoPoint {
        design: design.to_owned(),
        threads,
        runs: stps.len(),
        stp: geomean(&stps),
        edp: geomean(&edps),
        area,
        on_frontier: false,
    };
    (Some(point), skipped)
}

/// Computes the Pareto report over merged journal history, scoring the
/// `(design, threads)` groups in parallel on up to `workers` threads.
pub fn pareto_report(entries: &BTreeMap<String, JournalEntry>, workers: usize) -> ParetoReport {
    // Single-thread CPI references: (design, benchmark) → CPI.
    let mut st_refs: HashMap<(String, String), f64> = HashMap::new();
    for e in entries.values() {
        if e.status == "ok" && e.threads == 1 && !e.mix.is_empty() {
            if let [cpi] = e.thread_cpis()[..] {
                st_refs.insert((e.design.clone(), e.mix.clone()), cpi);
            }
        }
    }

    // Group multi-thread completed runs by (design, threads).
    let mut groups: BTreeMap<(String, usize), Vec<&JournalEntry>> = BTreeMap::new();
    for e in entries.values() {
        if e.status == "ok" && e.threads >= 2 {
            groups
                .entry((e.design.clone(), e.threads))
                .or_default()
                .push(e);
        }
    }
    let groups: Vec<((String, usize), Vec<&JournalEntry>)> = groups.into_iter().collect();

    // Score groups in parallel: chunk the group list across workers.
    let workers = workers.clamp(1, groups.len().max(1));
    let chunk = groups.len().div_ceil(workers).max(1);
    let mut scored: Vec<(Option<ParetoPoint>, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .chunks(chunk)
            .map(|slice| {
                let st_refs = &st_refs;
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|((design, threads), runs)| {
                            score_group(design, *threads, runs, st_refs)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            scored.extend(h.join().expect("pareto scorer"));
        }
    });

    let mut skipped = 0usize;
    let mut points = Vec::new();
    for (point, s) in scored {
        skipped += s;
        if let Some(p) = point {
            points.push(p);
        }
    }
    points.sort_by(|a, b| {
        b.stp
            .partial_cmp(&a.stp)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.design.cmp(&b.design))
            .then_with(|| a.threads.cmp(&b.threads))
    });
    mark_frontier(&mut points);
    ParetoReport { points, skipped }
}

impl ParetoReport {
    /// Points on the frontier, in report order.
    pub fn frontier(&self) -> Vec<&ParetoPoint> {
        self.points.iter().filter(|p| p.on_frontier).collect()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "pareto: {} design points, {} on frontier, {} runs skipped\n",
            self.points.len(),
            self.frontier().len(),
            self.skipped
        );
        for p in &self.points {
            out.push_str(&format!(
                "  [{}] {:<12} t={} stp={:.4} edp={:.4} area={:.0}au ({} runs)\n",
                if p.on_frontier { '*' } else { ' ' },
                p.design,
                p.threads,
                p.stp,
                p.edp,
                p.area,
                p.runs
            ));
        }
        out
    }

    /// Flat-JSON rendering (hand-rolled; the workspace builds offline
    /// with no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    r#"    {{"design":"{}","threads":{},"runs":{},"stp":{:.6},"#,
                    r#""edp":{:.6},"area":{:.4},"on_frontier":{}}}{}"#,
                    "\n"
                ),
                crate::journal::json_escape(&p.design),
                p.threads,
                p.runs,
                p.stp,
                p.edp,
                p.area,
                p.on_frontier,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!("  ],\n  \"skipped\": {}\n}}\n", self.skipped));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(design: &str, mix: &str, tcpi: &str, edp: f64) -> JournalEntry {
        let threads = mix.split('+').count();
        JournalEntry {
            key: format!("{design}-{mix}"),
            label: format!("{design} {mix}"),
            design: design.to_owned(),
            threads,
            seed: 7,
            status: "ok".to_owned(),
            attempts: 1,
            ipc: 1.0,
            cycles: 1_000,
            committed: 1_000,
            completion: "fixed-window".to_owned(),
            error: String::new(),
            message: String::new(),
            validated: String::new(),
            mix: mix.to_owned(),
            tcpi: tcpi.to_owned(),
            epi: 0.5,
            edp,
        }
    }

    fn history() -> BTreeMap<String, JournalEntry> {
        let mut m = BTreeMap::new();
        for e in [
            // ST references on both designs.
            entry("base64", "gcc", "2.000000", 0.9),
            entry("base64", "mcf", "4.000000", 0.9),
            entry("shelf-opt", "gcc", "2.000000", 0.8),
            entry("shelf-opt", "mcf", "4.000000", 0.8),
            // 2-thread runs: shelf-opt has better STP and EDP.
            entry("base64", "gcc+mcf", "3.000000,6.000000", 1.2),
            entry("shelf-opt", "gcc+mcf", "2.500000,5.000000", 1.0),
        ] {
            m.insert(e.key.clone(), e);
        }
        m
    }

    #[test]
    fn stp_uses_same_design_st_references() {
        let report = pareto_report(&history(), 2);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.skipped, 0);
        let shelf = report
            .points
            .iter()
            .find(|p| p.design == "shelf-opt")
            .unwrap();
        // STP = 2.0/2.5 + 4.0/5.0 = 1.6.
        assert!((shelf.stp - 1.6).abs() < 1e-9, "stp = {}", shelf.stp);
        let base = report.points.iter().find(|p| p.design == "base64").unwrap();
        assert!((base.stp - (2.0 / 3.0 + 4.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn runs_without_references_are_counted_skipped() {
        let mut h = history();
        let orphan = entry("base64", "gcc+lbm", "3.000000,6.000000", 1.2);
        h.insert(orphan.key.clone(), orphan);
        let report = pareto_report(&h, 1);
        assert_eq!(report.skipped, 1, "no lbm ST reference on base64");
    }

    #[test]
    fn frontier_matches_brute_force() {
        // Synthetic points exercising every dominance direction, including
        // ties on individual objectives.
        let mk = |design: &str, stp: f64, edp: f64, area: f64| ParetoPoint {
            design: design.to_owned(),
            threads: 2,
            runs: 1,
            stp,
            edp,
            area,
            on_frontier: false,
        };
        let mut points = vec![
            mk("a", 2.0, 1.0, 10.0), // frontier
            mk("b", 1.5, 0.5, 12.0), // frontier (best edp)
            mk("c", 1.4, 0.6, 12.5), // dominated by b
            mk("d", 2.0, 1.0, 9.0),  // frontier, dominates a on area
            mk("e", 2.0, 1.2, 10.0), // dominated by a (worse edp, ties rest)
            mk("f", 0.5, 2.0, 20.0), // dominated by everything
            mk("g", 2.5, 3.0, 30.0), // frontier (best stp)
        ];
        mark_frontier(&mut points);
        // Brute force: a point is on the frontier iff no other point is
        // ≥ on all objectives and > on at least one.
        for i in 0..points.len() {
            let brute = !(0..points.len()).any(|j| {
                j != i
                    && points[j].stp >= points[i].stp
                    && points[j].edp <= points[i].edp
                    && points[j].area <= points[i].area
                    && (points[j].stp > points[i].stp
                        || points[j].edp < points[i].edp
                        || points[j].area < points[i].area)
            });
            assert_eq!(
                points[i].on_frontier, brute,
                "frontier mismatch at {}",
                points[i].design
            );
        }
        let names: Vec<&str> = points
            .iter()
            .filter(|p| p.on_frontier)
            .map(|p| p.design.as_str())
            .collect();
        assert_eq!(names, vec!["b", "d", "g"]);
        // `a` is dominated by `d` (equal stp/edp, smaller area).
        assert!(!points.iter().find(|p| p.design == "a").unwrap().on_frontier);
    }

    #[test]
    fn report_renders_text_and_json() {
        let report = pareto_report(&history(), 4);
        let text = report.render_text();
        assert!(text.contains("pareto: 2 design points"), "{text}");
        assert!(text.contains("[*]"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"on_frontier\":true"), "{json}");
    }
}
