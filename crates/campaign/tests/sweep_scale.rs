//! End-to-end tests of the sweep-scale machinery: sharded journals merged
//! on read, resume across shard layouts (including a killed pool and a
//! crash-corrupted shard), and the config-hash result cache returning
//! bit-identical results without re-simulating.

use shelfsim_campaign::{
    run_campaign, CampaignSpec, ResultCache, RunStatus, ShardedJournal, SweepSpec,
};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shelfsim_sweep_scale_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn small_sweep() -> SweepSpec {
    SweepSpec {
        designs: vec!["base64".to_owned(), "shelf-opt".to_owned()],
        thread_counts: vec![2],
        mixes_per_count: 2,
        seed: 11,
        warmup: 100,
        measure: 400,
    }
}

#[test]
fn merged_journal_is_byte_deterministic_across_worker_counts() {
    let dir = tmp("layouts");
    let runs = small_sweep().expand();

    let solo_dir = dir.join("solo");
    let spec = CampaignSpec::new(runs.clone())
        .with_workers(1)
        .with_journal_dir(&solo_dir);
    let report = run_campaign(&spec).expect("solo sweep");
    assert_eq!(report.completed(), runs.len());

    let wide_dir = dir.join("wide");
    let spec = CampaignSpec::new(runs.clone())
        .with_workers(3)
        .with_journal_dir(&wide_dir);
    run_campaign(&spec).expect("wide sweep");

    let solo = ShardedJournal::new(&solo_dir);
    let wide = ShardedJournal::new(&wide_dir);
    assert_eq!(solo.shard_files().expect("shards").len(), 1);
    assert!(wide.shard_files().expect("shards").len() >= 2);
    assert_eq!(
        solo.merged_bytes().expect("bytes"),
        wide.merged_bytes().expect("bytes"),
        "same completed run set must merge byte-identically in any layout"
    );
}

#[test]
fn resume_after_killed_pool_completes_only_the_remainder() {
    let dir = tmp("killed");
    let runs = small_sweep().expand();
    let half = runs.len() / 2;

    // "Kill" the pool mid-sweep: complete only the first half of the
    // matrix (a prefix of completed runs plus untouched shards is exactly
    // the on-disk state a killed process leaves, minus a torn tail —
    // covered below).
    let spec = CampaignSpec::new(runs[..half].to_vec())
        .with_workers(2)
        .with_journal_dir(&dir);
    run_campaign(&spec).expect("partial sweep");

    // Re-invoke over the full matrix with a different worker count: the
    // completed half resumes from the merged shards, only the rest runs.
    let spec = CampaignSpec::new(runs.clone())
        .with_workers(3)
        .with_journal_dir(&dir);
    let report = run_campaign(&spec).expect("resumed sweep");
    assert_eq!(report.resumed, half, "first half resumed from shards");
    assert_eq!(report.completed(), runs.len());
}

#[test]
fn corrupt_trailing_shard_line_reexecutes_only_that_run() {
    let dir = tmp("corrupt");
    let runs = small_sweep().expand();
    let spec = CampaignSpec::new(runs.clone())
        .with_workers(2)
        .with_journal_dir(&dir);
    run_campaign(&spec).expect("sweep");

    let sj = ShardedJournal::new(&dir);
    let before = sj.load_merged().expect("merge");
    assert_eq!(before.len(), runs.len());

    // Crash-truncate the last line of one shard mid-write.
    let shard = sj.shard_path(0);
    let bytes = std::fs::read(&shard).expect("read shard");
    let cut = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let lost_lines = 1;
    std::fs::write(&shard, &bytes[..cut + 20]).expect("truncate mid-line");

    let merged = sj.load_merged().expect("merge survives corruption");
    assert_eq!(merged.len(), runs.len() - lost_lines, "torn line skipped");

    // Resume: exactly the torn run re-executes, and the merged view comes
    // back to the full set with identical numbers.
    let report = run_campaign(&spec).expect("resume over torn shard");
    assert_eq!(report.resumed, runs.len() - lost_lines);
    let after = sj.load_merged().expect("merge");
    assert_eq!(after.len(), runs.len());
    for (key, entry) in &before {
        let e = &after[key];
        assert_eq!(
            (e.ipc, e.cycles, e.committed),
            (entry.ipc, entry.cycles, entry.committed)
        );
        assert_eq!(e.tcpi, entry.tcpi, "re-executed run is bit-identical");
    }
}

#[test]
fn cache_hits_are_bit_identical_to_fresh_simulation_with_zero_cycles() {
    let dir = tmp("dedup");
    let runs = small_sweep().expand();

    // Fresh, journal-less baseline.
    let fresh =
        run_campaign(&CampaignSpec::new(runs.clone()).with_workers(2)).expect("fresh campaign");

    // Sharded sweep, then an identical re-run that must be 100% cache hits.
    let spec = CampaignSpec::new(runs.clone())
        .with_workers(2)
        .with_journal_dir(&dir);
    run_campaign(&spec).expect("first sweep");
    let rerun = run_campaign(&spec).expect("cached re-run");
    assert_eq!(
        rerun.resumed,
        runs.len(),
        "every run deduped by config hash"
    );

    // The admission preview agrees: zero misses → zero simulated cycles.
    let cache = ResultCache::load(Some(&ShardedJournal::new(&dir)), None).expect("load cache");
    let admission = cache.admit(&runs);
    assert!(admission.misses.is_empty());
    assert_eq!(admission.hit_rate(), 1.0);

    // Cached results are bit-identical to the fresh simulation.
    for (fresh_rec, cached_rec) in fresh.records.iter().zip(&rerun.records) {
        assert_eq!(fresh_rec.spec.key(), cached_rec.spec.key());
        assert_eq!(fresh_rec.status, RunStatus::Ok);
        assert_eq!(cached_rec.status, RunStatus::Ok);
        let f = fresh_rec.outcome.as_ref().expect("fresh outcome");
        let c = cached_rec.outcome.as_ref().expect("cached outcome");
        assert_eq!(f.cycles, c.cycles);
        assert_eq!(f.committed, c.committed);
        // Floats cross a {:.6} journal round-trip; bit-identity holds at
        // the journal's full stored precision.
        assert!((f.ipc - c.ipc).abs() < 1e-6);
        for (a, b) in f.thread_cpi.iter().zip(&c.thread_cpi) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

#[test]
fn overlapping_shard_history_from_two_sweeps_merges_cleanly() {
    let dir = tmp("overlap");
    let runs = small_sweep().expand();
    let two_thirds = runs.len() * 2 / 3;

    // Sweep A covers a prefix with 1 worker (shard-000); sweep B covers
    // the full matrix with 2 workers — its shard-000 overlaps A's file
    // and the resumed prefix never re-executes.
    let spec_a = CampaignSpec::new(runs[..two_thirds].to_vec())
        .with_workers(1)
        .with_journal_dir(&dir);
    run_campaign(&spec_a).expect("sweep A");
    let spec_b = CampaignSpec::new(runs.clone())
        .with_workers(2)
        .with_journal_dir(&dir);
    let report = run_campaign(&spec_b).expect("sweep B");
    assert_eq!(report.resumed, two_thirds);

    let merged = ShardedJournal::new(&dir).load_merged().expect("merge");
    assert_eq!(merged.len(), runs.len(), "one entry per key across shards");
    assert!(merged.values().all(|e| e.status == "ok"));
}
