//! End-to-end resilience tests: a fault-injected campaign must isolate
//! panics, abort livelocks via the watchdog, retry transient failures,
//! quarantine persistent ones, finish with partial results plus an error
//! taxonomy, and resume idempotently from its journal.

use shelfsim_campaign::{run_campaign, CampaignSpec, FailureKind, FaultKind, FaultPlan, RunStatus};

fn matrix() -> Vec<shelfsim_campaign::RunSpec> {
    CampaignSpec::matrix(
        &["base64".to_owned(), "shelf-opt".to_owned()],
        &[
            vec!["gcc".to_owned(), "mcf".to_owned()],
            vec!["hmmer".to_owned(), "lbm".to_owned()],
        ],
        7,     // seed
        200,   // warm-up cycles
        1_200, // measured cycles
    )
}

fn temp_journal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("shelfsim_campaign_tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// The acceptance scenario: injected panics and one injected deadlock; the
/// campaign finishes with partial results and a taxonomy, and a second
/// invocation resumes from the journal without re-running anything.
#[test]
fn faulty_campaign_retries_quarantines_and_resumes() {
    let journal = temp_journal("faulty.jsonl");
    let faults = FaultPlan::new()
        .inject(0, FaultKind::Panic, 1) // transient: retry succeeds
        .inject(1, FaultKind::Livelock, 1) // watchdog aborts attempt 1; retry succeeds
        .inject(3, FaultKind::Panic, u32::MAX); // persistent: quarantined
    let spec = CampaignSpec::new(matrix())
        .with_watchdog(Some(600))
        .with_max_attempts(3)
        .with_workers(2)
        .with_journal(&journal)
        .with_faults(faults);

    let report = run_campaign(&spec).expect("campaign itself must not fail");
    assert_eq!(report.records.len(), 4);
    assert_eq!(report.completed(), 3, "partial results, not an abort");
    assert_eq!(report.quarantined(), 1);
    assert_eq!(report.resumed, 0);

    // Run 0: panicked once, recovered on the diagnostics-tier retry.
    let r0 = &report.records[0];
    assert_eq!(r0.status, RunStatus::Ok);
    assert_eq!(r0.attempts, 2);
    assert_eq!(r0.failures.len(), 1);
    assert_eq!(r0.failures[0].kind, FailureKind::Panic);
    assert!(r0.failures[0].panic_msg.contains("injected fault"));
    assert_eq!(r0.failures[0].bench, "gcc+mcf");
    assert_eq!(
        r0.failures[0].seed, 7,
        "failure is a self-contained reproducer"
    );

    // Run 1: the watchdog diagnosed the injected livelock instead of
    // spinning, and the retry succeeded.
    let r1 = &report.records[1];
    assert_eq!(r1.status, RunStatus::Ok);
    assert_eq!(r1.failures[0].kind, FailureKind::Deadlock);
    assert!(r1.failures[0].cycle.is_some(), "deadlock reports its cycle");
    assert!(
        r1.failures[0].panic_msg.contains("rob="),
        "deadlock carries an occupancy snapshot: {}",
        r1.failures[0].panic_msg
    );

    // Run 3: persistent panic exhausts the attempt budget.
    let r3 = &report.records[3];
    assert_eq!(r3.status, RunStatus::Quarantined);
    assert_eq!(r3.attempts, 3);
    assert!(r3.outcome.is_none());

    // Taxonomy covers every failure mode.
    let taxonomy = report.taxonomy();
    assert_eq!(taxonomy.count("ok"), 3);
    assert_eq!(taxonomy.count("quarantined"), 1);
    assert_eq!(taxonomy.count("retried-ok"), 2);
    assert_eq!(taxonomy.count("panic"), 4, "1 transient + 3 persistent");
    assert_eq!(taxonomy.count("deadlock"), 1);

    // Aggregation covers completed runs only, grouped by design.
    let per_design = report.per_design_ipc();
    assert_eq!(per_design.len(), 2);
    assert_eq!(per_design[0].0, "base64");
    assert_eq!(per_design[0].2, 2);
    assert_eq!(per_design[1].0, "shelf-opt");
    assert_eq!(
        per_design[1].2, 1,
        "the quarantined shelf-opt run is absent"
    );

    // Re-invoking the identical campaign resumes everything from the
    // journal — no run (not even the quarantined one) re-executes, and the
    // aggregate results are identical.
    let resumed_report = run_campaign(&spec).expect("resume");
    assert_eq!(resumed_report.resumed, 4, "nothing re-ran");
    assert!(resumed_report.records.iter().all(|r| r.resumed));
    assert_eq!(resumed_report.completed(), 3);
    assert_eq!(resumed_report.quarantined(), 1);
    for (fresh, restored) in report.records.iter().zip(&resumed_report.records) {
        assert_eq!(fresh.status, restored.status);
        match (&fresh.outcome, &restored.outcome) {
            (Some(a), Some(b)) => {
                assert!((a.ipc - b.ipc).abs() < 1e-6);
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.completion, b.completion);
            }
            (None, None) => {}
            _ => panic!("outcome presence must survive resume"),
        }
    }
}

/// A campaign killed partway through (simulated by journaling only a prefix
/// of the matrix) resumes and produces results identical to an uninterrupted
/// campaign.
#[test]
fn killed_campaign_resumes_with_identical_results() {
    let journal = temp_journal("killed.jsonl");
    let runs = matrix();

    // Reference: the same matrix run in one uninterrupted campaign.
    let reference = run_campaign(&CampaignSpec::new(runs.clone()).with_watchdog(Some(5_000)))
        .expect("reference campaign");

    // "Kill" after two runs: execute only a prefix against the journal.
    let prefix = CampaignSpec::new(runs[..2].to_vec())
        .with_watchdog(Some(5_000))
        .with_journal(&journal);
    let partial = run_campaign(&prefix).expect("prefix campaign");
    assert_eq!(partial.completed(), 2);

    // Re-invoke the FULL campaign: the journaled prefix is skipped, only
    // the remaining half executes, and results match the reference exactly.
    let full = CampaignSpec::new(runs)
        .with_watchdog(Some(5_000))
        .with_journal(&journal);
    let resumed = run_campaign(&full).expect("resumed campaign");
    assert_eq!(resumed.resumed, 2, "the journaled prefix was skipped");
    assert_eq!(resumed.completed(), 4);
    for (a, b) in reference.records.iter().zip(&resumed.records) {
        let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert!(
            (ra.ipc - rb.ipc).abs() < 1e-6,
            "{}: {} vs {}",
            a.spec.label(),
            ra.ipc,
            rb.ipc
        );
        assert_eq!(ra.committed, rb.committed);
    }
}

/// An injected sub-window stall slows a run down but must neither trip the
/// watchdog nor consume a retry.
#[test]
fn sub_window_stall_is_tolerated() {
    let faults = FaultPlan::new().inject(0, FaultKind::Stall, 1);
    let spec = CampaignSpec::new(matrix()[..1].to_vec())
        .with_watchdog(Some(600))
        .with_faults(faults);
    let report = run_campaign(&spec).expect("campaign");
    let r = &report.records[0];
    assert_eq!(r.status, RunStatus::Ok);
    assert_eq!(r.attempts, 1, "no retry consumed");
    assert!(r.failures.is_empty());
}

/// A livelock that survives into the diagnostics tier leaves a lifecycle
/// trace in the campaign's trace directory: the watchdog diagnoses the
/// stall and the escalated attempt dumps its JSONL window before retrying.
#[test]
fn diagnosed_livelock_dumps_a_trace_in_the_trace_dir() {
    let trace_dir =
        std::env::temp_dir().join(format!("shelfsim_campaign_traces_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    let runs = matrix()[..1].to_vec();
    let key = runs[0].key();
    // Livelock on attempts 0 AND 1: attempt 1 runs in the diagnostics tier
    // (tracer enabled), fails under the watchdog, and dumps; attempt 2
    // succeeds.
    let faults = FaultPlan::new().inject(0, FaultKind::Livelock, 2);
    let spec = CampaignSpec::new(runs)
        .with_watchdog(Some(600))
        .with_max_attempts(3)
        .with_faults(faults)
        .with_trace_dir(&trace_dir);
    let report = run_campaign(&spec).expect("campaign");
    let r = &report.records[0];
    assert_eq!(r.status, RunStatus::Ok);
    assert_eq!(r.attempts, 3);
    let dump = trace_dir.join(format!("{key}-attempt1.jsonl"));
    let text = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("diagnostics attempt must dump {}: {e}", dump.display()));
    assert!(
        text.starts_with("{\"type\":\"meta\""),
        "JSONL export format"
    );
    assert!(
        text.contains("\"type\":\"stalls\""),
        "stall attribution rides along"
    );
    // Attempt 0 ran below the diagnostics tier: no trace for it.
    assert!(!trace_dir.join(format!("{key}-attempt0.jsonl")).exists());
    let _ = std::fs::remove_dir_all(&trace_dir);
}

/// Unknown designs and benchmarks quarantine immediately (config failures
/// are not retryable) with a message naming the valid options.
#[test]
fn config_failures_quarantine_without_retries() {
    let mut runs = matrix()[..1].to_vec();
    runs[0].design = "warp-drive".to_owned();
    let report = run_campaign(&CampaignSpec::new(runs)).expect("campaign");
    let r = &report.records[0];
    assert_eq!(r.status, RunStatus::Quarantined);
    assert_eq!(r.attempts, 1, "retrying an unbuildable run is pointless");
    assert_eq!(r.failures[0].kind, FailureKind::Config);
    assert!(
        r.failures[0].panic_msg.contains("base64"),
        "error names valid designs: {}",
        r.failures[0].panic_msg
    );
}

/// A structurally starved run (shelf steering with a 2-entry shelf) is
/// rejected by the static-analysis pre-flight before a single cycle is
/// simulated, journaled with an `analysis-rejected` taxonomy entry, and
/// skipped on resume. Disabling the pre-flight restores the old behavior.
#[test]
fn preflight_rejects_starved_shelf_and_resumes_the_rejection() {
    let journal = temp_journal("preflight.jsonl");
    let mut runs = matrix()[..2].to_vec();
    // Run 0 is starved (2 shelf entries for 2 threads of dependent chains);
    // run 1 is untouched and must still complete.
    runs[0].design = "shelf-inorder".to_owned();
    runs[0].overrides = vec![("shelf".to_owned(), "2".to_owned())];
    let spec = CampaignSpec::new(runs.clone())
        .with_watchdog(Some(5_000))
        .with_journal(&journal);

    let report = run_campaign(&spec).expect("campaign");
    let r0 = &report.records[0];
    assert_eq!(r0.status, RunStatus::Rejected);
    assert_eq!(r0.attempts, 0, "no cycle simulated, no attempt consumed");
    assert_eq!(r0.failures.len(), 1);
    assert_eq!(r0.failures[0].kind, FailureKind::AnalysisRejected);
    assert!(
        r0.failures[0].panic_msg.contains("SR001"),
        "rejection carries the diagnostic: {}",
        r0.failures[0].panic_msg
    );
    assert_eq!(report.records[1].status, RunStatus::Ok);
    assert_eq!(report.completed(), 1);
    assert_eq!(report.rejected(), 1);
    assert_eq!(report.taxonomy().count("analysis-rejected"), 1);
    let text = report.render_text();
    assert!(text.contains("1 rejected"), "{text}");
    assert!(text.contains("[rejected]"), "{text}");
    assert!(report.render_json().contains("\"rejected\":1"));

    // The rejection is journaled and survives resume without re-analysis.
    let resumed = run_campaign(&spec).expect("resume");
    assert_eq!(resumed.resumed, 2, "rejected runs resume too");
    assert_eq!(resumed.records[0].status, RunStatus::Rejected);
    assert_eq!(
        resumed.records[0].failures[0].kind,
        FailureKind::AnalysisRejected
    );

    // Opting out of the pre-flight lets the starved config reach the
    // simulator (where the watchdog, not the prover, is the safety net).
    let unchecked = run_campaign(
        &CampaignSpec::new(runs[1..].to_vec())
            .with_watchdog(Some(5_000))
            .with_preflight(false),
    )
    .expect("campaign without preflight");
    assert_eq!(unchecked.records[0].status, RunStatus::Ok);
}

/// The differential validation tier lockstep-checks every run against the
/// in-order functional reference before timing it; clean runs journal
/// `validated:clean` and the outcome survives resume.
#[test]
fn validate_tier_marks_clean_runs_and_survives_resume() {
    let journal = temp_journal("validated.jsonl");
    let spec = CampaignSpec::new(matrix()[..2].to_vec())
        .with_watchdog(Some(5_000))
        .with_journal(&journal)
        .with_validate(true);
    let report = run_campaign(&spec).expect("campaign");
    assert_eq!(report.completed(), 2);
    assert!(
        report.records.iter().all(|r| r.validated),
        "every run lockstep-validated clean"
    );
    let text = std::fs::read_to_string(&journal).expect("journal");
    assert_eq!(text.matches("\"validated\":\"clean\"").count(), 2);

    let resumed = run_campaign(&spec).expect("resume");
    assert_eq!(resumed.resumed, 2);
    assert!(
        resumed.records.iter().all(|r| r.validated),
        "validation outcome survives resume"
    );
}

/// Reports render both human- and machine-readable summaries.
#[test]
fn report_renders_text_and_json() {
    let faults = FaultPlan::new().inject(1, FaultKind::Panic, u32::MAX);
    let spec = CampaignSpec::new(matrix()[..2].to_vec())
        .with_watchdog(Some(5_000))
        .with_max_attempts(2)
        .with_faults(faults);
    let report = run_campaign(&spec).expect("campaign");
    let text = report.render_text();
    assert!(text.contains("1 completed, 1 quarantined"), "{text}");
    assert!(text.contains("[quarantined]"), "{text}");
    assert!(text.contains("taxonomy:"), "{text}");
    let json = report.render_json();
    assert!(json.starts_with('{'), "{json}");
    assert!(json.contains("\"quarantined\":1"), "{json}");
    assert!(json.contains("\"taxonomy\""), "{json}");
}
