//! # shelfsim-analyze
//!
//! Static lints and invariant checks for the shelfsim workspace, sharing a
//! typed-diagnostic core ([`Diagnostic`], [`Severity`], [`Report`]):
//!
//! * [`lint_program`] — dataflow lints over a [`shelfsim_workload::Program`]
//!   (`SA001`–`SA005`): def-before-use, unreachable blocks, dead writes,
//!   in-sequence series estimation, and footprint/region contradictions.
//! * [`lint_config`] / [`lint_config_file`] — contradiction checks over a
//!   [`shelfsim_core::CoreConfig`] (`SC001`–`SC007`), returning **all**
//!   violations rather than panicking on the first like
//!   `CoreConfig::validate`.
//! * [`lint_kernel_source`] — the `.s` front end: assemble with line
//!   tracking, then lint with source spans.
//!
//! The third leg of the subsystem — the dynamic invariant *sanitizer* — is
//! not in this crate: it lives inside `shelfsim-uarch`/`shelfsim-core`
//! behind the `sanitize` feature, auditing free-list token conservation
//! and queue occupancy every cycle (see `docs/MECHANISMS.md`).
//!
//! ```
//! use shelfsim_analyze::{lint_kernel_source, Report, Severity};
//!
//! let report = Report::new(lint_kernel_source(
//!     "top:\n  add r8, r9\n  loop top, trips=10\n",
//!     "demo.s",
//! ));
//! assert!(report.has_errors()); // r9 is read but never written
//! assert_eq!(report.diagnostics()[0].code, "SA001");
//! ```

pub mod config_lint;
pub mod diagnostic;
pub mod program_lint;

pub use config_lint::{design_by_name, lint_config, lint_config_file, DESIGN_NAMES};
pub use diagnostic::{Diagnostic, Report, Severity, Span};
pub use program_lint::lint_program;

/// Assembles `.s` kernel `source` and lints it with spans into `file`.
///
/// Assembly errors are reported as an `SA000` error diagnostic (with the
/// parser's line number) instead of an `Err`, so callers always get a
/// uniform diagnostic stream.
pub fn lint_kernel_source(source: &str, file: &str) -> Vec<Diagnostic> {
    match shelfsim_workload::asm::assemble_with_lines(source) {
        Ok((program, lines)) => lint_program(&program, Some((file, &lines))),
        Err(e) => vec![Diagnostic::new(
            "SA000",
            Severity::Error,
            format!("assembly failed: {}", e.message),
        )
        .with_span(file, e.line)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_source_front_end_attaches_file_spans() {
        let diags = lint_kernel_source("top:\n add r8, r20\n loop top, trips=10\n", "k.s");
        let d = diags.iter().find(|d| d.code == "SA001").expect("SA001");
        assert_eq!(d.span.as_ref().unwrap().file, "k.s");
        assert_eq!(d.span.as_ref().unwrap().line, 2);
    }

    #[test]
    fn assembly_errors_become_sa000_diagnostics() {
        let diags = lint_kernel_source("top:\n bogus r1\n", "broken.s");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SA000");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.as_ref().unwrap().line, 2);
    }
}
