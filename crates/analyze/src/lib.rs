//! # shelfsim-analyze
//!
//! The static-analysis framework of the shelfsim workspace, sharing a
//! typed-diagnostic core ([`Diagnostic`], [`Severity`], [`Report`]) and a
//! common [`cfg::Cfg`] + worklist [`dataflow`] engine:
//!
//! * [`lint_program`] — dataflow lints over a [`shelfsim_workload::Program`]
//!   (`SA001`–`SA005`): def-before-use, unreachable blocks, dead writes,
//!   in-sequence series estimation, and footprint/region contradictions.
//! * [`lint_config`] / [`lint_config_file`] — contradiction checks over a
//!   [`shelfsim_core::CoreConfig`] (`SC001`–`SC007`), returning **all**
//!   violations rather than panicking on the first like
//!   `CoreConfig::validate`.
//! * [`lint_kernel_source`] — the `.s` front end: assemble with line
//!   tracking, then lint with source spans.
//! * [`dataflow`] — the worklist engine with reaching definitions, def-use
//!   chains, and precise live registers over the [`cfg::Cfg`].
//! * [`ipc_bound`] / [`aggregate_bound`] — sound static IPC upper bounds
//!   per program × config (`SB001`), asserted against simulator results.
//! * [`check_adequacy`] — resource-adequacy proof obligations
//!   (`SR001`–`SR004`): shelf depth vs. dependence runs, MSHR demand,
//!   per-thread queue shares, zero-capacity resources.
//! * [`preflight`] — the campaign pre-flight bundle: config lint + program
//!   lint + adequacy over the exact per-thread programs of a queued run.
//!
//! The registry of every code ([`REGISTRY`], [`code_info`],
//! [`render_code_table`]) is the single source of truth for severities and
//! documentation; the README's lint-code table is generated from it by a
//! test so the two cannot drift.
//!
//! The remaining leg of the subsystem — the dynamic invariant *sanitizer* —
//! is not in this crate: it lives inside `shelfsim-uarch`/`shelfsim-core`
//! behind the `sanitize` feature, auditing free-list token conservation
//! and queue occupancy every cycle (see `docs/MECHANISMS.md`).
//!
//! ```
//! use shelfsim_analyze::{lint_kernel_source, Report, Severity};
//!
//! let report = Report::new(lint_kernel_source(
//!     "top:\n  add r8, r9\n  loop top, trips=10\n",
//!     "demo.s",
//! ));
//! assert!(report.has_errors()); // r9 is read but never written
//! assert_eq!(report.diagnostics()[0].code, "SA001");
//! ```

pub mod adequacy;
pub mod bounds;
pub mod cfg;
pub mod config_lint;
pub mod dataflow;
pub mod diagnostic;
pub mod program_lint;

pub use adequacy::check_adequacy;
pub use bounds::{aggregate_bound, ipc_bound, IpcBoundReport, RecurrenceBound};
pub use cfg::Cfg;
pub use config_lint::{
    apply_override, design_by_name, lint_config, lint_config_file, DESIGN_NAMES,
};
pub use dataflow::{live_registers, BitSet, DataflowAnalysis, DefUse, ReachingDefs, Solution};
pub use diagnostic::{
    code_info, render_code_table, CodeInfo, Diagnostic, Report, Severity, Span, REGISTRY,
};
pub use program_lint::lint_program;

/// Campaign pre-flight: bundles the config lint, the program lints, and
/// the resource-adequacy pass over the exact per-thread `programs` a
/// queued run would execute, returning one combined [`Report`].
///
/// Only errors should reject a run — warnings are throughput advisories
/// and info diagnostics are measurements.
pub fn preflight(
    cfg: &shelfsim_core::CoreConfig,
    programs: &[shelfsim_workload::program::Program],
) -> Report {
    let mut diags = lint_config(cfg);
    for p in programs {
        diags.extend(lint_program(p, None));
        diags.extend(check_adequacy(p, cfg, None));
    }
    Report::new(diags)
}

/// Assembles `.s` kernel `source` and lints it with spans into `file`.
///
/// Assembly errors are reported as an `SA000` error diagnostic (with the
/// parser's line number) instead of an `Err`, so callers always get a
/// uniform diagnostic stream.
pub fn lint_kernel_source(source: &str, file: &str) -> Vec<Diagnostic> {
    match shelfsim_workload::asm::assemble_with_lines(source) {
        Ok((program, lines)) => lint_program(&program, Some((file, &lines))),
        Err(e) => vec![Diagnostic::new(
            "SA000",
            Severity::Error,
            format!("assembly failed: {}", e.message),
        )
        .with_span(file, e.line)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_source_front_end_attaches_file_spans() {
        let diags = lint_kernel_source("top:\n add r8, r20\n loop top, trips=10\n", "k.s");
        let d = diags.iter().find(|d| d.code == "SA001").expect("SA001");
        assert_eq!(d.span.as_ref().unwrap().file, "k.s");
        assert_eq!(d.span.as_ref().unwrap().line, 2);
    }

    #[test]
    fn assembly_errors_become_sa000_diagnostics() {
        let diags = lint_kernel_source("top:\n bogus r1\n", "broken.s");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SA000");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.as_ref().unwrap().line, 2);
    }

    fn preflight_programs(seed: u64) -> Vec<shelfsim_workload::program::Program> {
        ["gcc", "mcf"]
            .iter()
            .enumerate()
            .map(|(t, name)| {
                shelfsim_workload::suite::by_name(name)
                    .expect("suite bench")
                    .build_program(shelfsim_core::thread_program_seed(seed, t))
            })
            .collect()
    }

    #[test]
    fn preflight_accepts_standard_designs_on_suite_programs() {
        let cfg = design_by_name("shelf-opt", 2).expect("known design");
        let report = preflight(&cfg, &preflight_programs(7));
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn preflight_rejects_starved_shelf_before_any_cycle() {
        let mut cfg = design_by_name("shelf-inorder", 2).expect("known design");
        apply_override(&mut cfg, "shelf", "2").expect("valid override");
        let report = preflight(&cfg, &preflight_programs(7));
        assert!(report.has_errors(), "{}", report.render_text());
        assert!(
            report.diagnostics().iter().any(|d| d.code == "SR001"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn registry_codes_are_unique_sorted_and_resolvable() {
        let codes: Vec<&str> = diagnostic::REGISTRY.iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, codes,
            "registry must stay sorted and duplicate-free"
        );
        assert_eq!(code_info("SR001").expect("known").severity, Severity::Error);
        assert!(code_info("XX999").is_none());
    }
}
