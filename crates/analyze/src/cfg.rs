//! Control-flow graph over a [`Program`]'s basic blocks.
//!
//! Every analysis in this crate sees a kernel the way the trace source
//! runs it: an infinite loop entered at block 0, with `loop`/`beq`
//! back-edges, `call`/`ret` edges, and an implicit wrap-around from the
//! last block back to block 0. [`Cfg`] materializes that graph once —
//! successors, predecessors, reachability from the entry block, and a
//! reverse postorder for fast dataflow convergence — so the lint passes,
//! the dataflow engine, and the bound/adequacy passes all agree on the
//! shape of the program.

use shelfsim_workload::program::{Block, Program, Terminator};

/// Successor blocks of `b` (at index `i` of `n` blocks) in execution
/// order; the implicit wrap-around from the last block re-enters block 0
/// (kernels are infinite loops). `Ret` returns to an unknown caller, so it
/// contributes no static edge — callers are linked through their `Call`
/// terminator's fall-through instead.
pub fn block_successors(b: &Block, i: usize, n: usize) -> Vec<usize> {
    let wrap = if i + 1 < n { i + 1 } else { 0 };
    match b.terminator {
        Terminator::Loop { target, .. } => vec![target, wrap],
        Terminator::Cond { target, .. } => vec![target, wrap],
        Terminator::Jump { target } => vec![target],
        Terminator::Call { callee } => vec![callee, wrap],
        Terminator::Ret => vec![],
    }
}

/// The control-flow graph of one program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successor block indices per block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices per block.
    pub preds: Vec<Vec<usize>>,
    /// Whether each block is reachable from the entry block (block 0).
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn new(program: &Program) -> Self {
        let n = program.blocks.len();
        let succs: Vec<Vec<usize>> = program
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| block_successors(b, i, n))
            .collect();
        let mut preds = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }
        let mut reachable = vec![false; n];
        let mut work = vec![0usize];
        while let Some(i) = work.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            for &s in &succs[i] {
                if !reachable[s] {
                    work.push(s);
                }
            }
        }
        Cfg {
            succs,
            preds,
            reachable,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Indices of the blocks reachable from the entry block.
    pub fn reachable_blocks(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_blocks()).filter(|&i| self.reachable[i])
    }

    /// Reverse postorder of the reachable blocks (entry first). Iterating
    /// forward dataflow in this order reaches the fixed point in few
    /// passes; backward analyses iterate it reversed.
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let n = self.num_blocks();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if let Some(&s) = self.succs[b].get(*next) {
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_workload::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::new(&assemble(src).expect("assembles"))
    }

    #[test]
    fn straight_loop_wraps_to_entry() {
        let cfg = cfg_of("top:\n add r8, r8\n loop top, trips=10\n");
        assert_eq!(cfg.num_blocks(), 1);
        assert_eq!(cfg.succs[0], vec![0, 0]);
        assert!(cfg.reachable[0]);
        assert_eq!(cfg.reverse_postorder(), vec![0]);
    }

    #[test]
    fn diamond_has_both_edges_and_preds() {
        let cfg = cfg_of(
            "a:\n add r8, r8\n beq r8, c, p=0.5\nb:\n mul r9, r8, r8\n jmp a\n\
             c:\n add r10, r8\n jmp a\n",
        );
        assert_eq!(cfg.succs[0], vec![2, 1]);
        assert_eq!(cfg.succs[1], vec![0]);
        assert_eq!(cfg.succs[2], vec![0]);
        let mut p0 = cfg.preds[0].clone();
        p0.sort_unstable();
        assert_eq!(p0, vec![1, 2]);
        assert!(cfg.reachable.iter().all(|&r| r));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], 0, "entry first");
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn unreachable_blocks_are_marked() {
        let cfg = cfg_of(
            "top:\n add r8, r8\n jmp end\norphan:\n mul r9, r8, r8\n jmp end\n\
             end:\n add r10, r8\n jmp top\n",
        );
        assert!(cfg.reachable[0]);
        assert!(!cfg.reachable[1], "orphan block is unreachable");
        assert!(cfg.reachable[2]);
        assert!(!cfg.reverse_postorder().contains(&1));
    }
}
