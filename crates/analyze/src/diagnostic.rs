//! Typed diagnostics shared by every analysis pass.
//!
//! A [`Diagnostic`] is one finding: a stable lint code (`SA…` for program
//! lints, `SC…` for configuration contradictions), a [`Severity`], a
//! human-readable message, and — when the subject came from a `.s` kernel
//! or a config file — a source [`Span`]. A [`Report`] collects the findings
//! of one lint run and renders them as text or JSON.

/// How serious a finding is.
///
/// Only [`Severity::Error`] makes a lint run fail (nonzero CLI exit);
/// a *lint-clean* artifact additionally has no warnings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a measurement or estimate, never a defect.
    Info,
    /// Suspicious but not definitely wrong; does not fail the run.
    Warning,
    /// A definite contradiction or bug; fails the run.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Source location of a finding (1-based line in a named file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// File the finding refers to, as given to the linter.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
}

/// One analysis finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`SA001`, `SC003`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source location, when the subject has one.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a spanless diagnostic.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, file: &str, line: usize) -> Self {
        self.span = Some(Span {
            file: file.to_owned(),
            line,
        });
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.span {
            Some(s) => write!(
                f,
                "{}:{}: {} [{}] {}",
                s.file, s.line, self.severity, self.code, self.message
            ),
            None => write!(f, "{} [{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// The findings of one lint run, ordered most severe first.
#[derive(Clone, Debug, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report, sorting findings by descending severity, then by
    /// source line, then by code.
    pub fn new(mut diags: Vec<Diagnostic>) -> Self {
        diags.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| {
                    a.span
                        .as_ref()
                        .map(|s| s.line)
                        .cmp(&b.span.as_ref().map(|s| s.line))
                })
                .then_with(|| a.code.cmp(b.code))
        });
        Report { diags }
    }

    /// The findings, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Returns `true` if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Returns `true` if there are no errors and no warnings (informational
    /// findings are allowed).
    pub fn is_clean(&self) -> bool {
        !self.diags.iter().any(|d| d.severity >= Severity::Warning)
    }

    /// Renders the report as one diagnostic per line plus a summary line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diags {
            writeln!(out, "{d}").expect("write");
        }
        writeln!(
            out,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
        .expect("write");
        out
    }

    /// Renders the report as a JSON array of finding objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            out.push_str(&format!("\"code\":\"{}\",", d.code));
            out.push_str(&format!("\"severity\":\"{}\",", d.severity));
            out.push_str(&format!("\"message\":\"{}\"", json_escape(&d.message)));
            if let Some(s) = &d.span {
                out.push_str(&format!(
                    ",\"file\":\"{}\",\"line\":{}",
                    json_escape(&s.file),
                    s.line
                ));
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_drives_report_order() {
        let r = Report::new(vec![
            Diagnostic::new("SA004", Severity::Info, "note"),
            Diagnostic::new("SA001", Severity::Error, "bug"),
            Diagnostic::new("SA003", Severity::Warning, "meh"),
        ]);
        let codes: Vec<_> = r.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["SA001", "SA003", "SA004"]);
        assert!(r.has_errors());
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_means_no_errors_or_warnings() {
        let r = Report::new(vec![Diagnostic::new("SA004", Severity::Info, "note")]);
        assert!(r.is_clean());
        assert!(!r.has_errors());
    }

    #[test]
    fn text_rendering_includes_span_and_summary() {
        let r = Report::new(vec![Diagnostic::new(
            "SA001",
            Severity::Error,
            "r9 read before any write",
        )
        .with_span("k.s", 3)]);
        let text = r.render_text();
        assert!(
            text.contains("k.s:3: error [SA001] r9 read before any write"),
            "{text}"
        );
        assert!(
            text.contains("1 error(s), 0 warning(s), 0 note(s)"),
            "{text}"
        );
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let r = Report::new(vec![Diagnostic::new(
            "SC001",
            Severity::Error,
            "a \"quoted\" message",
        )
        .with_span("c.cfg", 2)]);
        let json = r.render_json();
        assert!(json.contains("\"code\":\"SC001\""), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"line\":2"), "{json}");
    }
}
