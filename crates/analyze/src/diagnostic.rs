//! Typed diagnostics shared by every analysis pass.
//!
//! A [`Diagnostic`] is one finding: a stable lint code (`SA…` for program
//! lints, `SC…` for configuration contradictions), a [`Severity`], a
//! human-readable message, and — when the subject came from a `.s` kernel
//! or a config file — a source [`Span`]. A [`Report`] collects the findings
//! of one lint run and renders them as text or JSON.

/// How serious a finding is.
///
/// Only [`Severity::Error`] makes a lint run fail (nonzero CLI exit);
/// a *lint-clean* artifact additionally has no warnings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a measurement or estimate, never a defect.
    Info,
    /// Suspicious but not definitely wrong; does not fail the run.
    Warning,
    /// A definite contradiction or bug; fails the run.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Source location of a finding (1-based line in a named file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// File the finding refers to, as given to the linter.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
}

/// One analysis finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`SA001`, `SC003`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source location, when the subject has one.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a spanless diagnostic.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, file: &str, line: usize) -> Self {
        self.span = Some(Span {
            file: file.to_owned(),
            line,
        });
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.span {
            Some(s) => write!(
                f,
                "{}:{}: {} [{}] {}",
                s.file, s.line, self.severity, self.code, self.message
            ),
            None => write!(f, "{} [{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// The findings of one lint run, ordered most severe first.
#[derive(Clone, Debug, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report, sorting findings by descending severity, then by
    /// source line, then by code.
    pub fn new(mut diags: Vec<Diagnostic>) -> Self {
        diags.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| {
                    a.span
                        .as_ref()
                        .map(|s| s.line)
                        .cmp(&b.span.as_ref().map(|s| s.line))
                })
                .then_with(|| a.code.cmp(b.code))
        });
        Report { diags }
    }

    /// The findings, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Returns `true` if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Returns `true` if there are no errors and no warnings (informational
    /// findings are allowed).
    pub fn is_clean(&self) -> bool {
        !self.diags.iter().any(|d| d.severity >= Severity::Warning)
    }

    /// Renders the report as one diagnostic per line plus a summary line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diags {
            writeln!(out, "{d}").expect("write");
        }
        writeln!(
            out,
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
        .expect("write");
        out
    }

    /// Renders the report as a JSON array of finding objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            out.push_str(&format!("\"code\":\"{}\",", d.code));
            out.push_str(&format!("\"severity\":\"{}\",", d.severity));
            out.push_str(&format!("\"message\":\"{}\"", json_escape(&d.message)));
            if let Some(s) = &d.span {
                out.push_str(&format!(
                    ",\"file\":\"{}\",\"line\":{}",
                    json_escape(&s.file),
                    s.line
                ));
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

/// Registry metadata for one diagnostic code: the single source of truth
/// for severity, the one-line summary shown in tables, and the long-form
/// explanation behind `shelfsim lint --explain CODE`. The README lint-code
/// table is generated from this registry by a test, so the two can never
/// drift apart.
#[derive(Clone, Copy, Debug)]
pub struct CodeInfo {
    /// Stable lint code.
    pub code: &'static str,
    /// Severity every diagnostic with this code carries.
    pub severity: Severity,
    /// One-line summary (table cell).
    pub summary: &'static str,
    /// Long-form explanation (`--explain`).
    pub explain: &'static str,
}

/// Every diagnostic code any pass in this crate can emit, in table order.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: "SA000",
        severity: Severity::Error,
        summary: "kernel source failed to assemble",
        explain: "The `.s` source could not be parsed into a program. The span points at \
                  the offending line; nothing else can be analyzed until it assembles.",
    },
    CodeInfo {
        code: "SA001",
        severity: Severity::Error,
        summary: "register read but never written and not an input register",
        explain: "A source register has no defining instruction anywhere in the program \
                  and is not one of the conventional inputs (r0-r7, f0-f7, or the chase \
                  cursors r24-r27). The value is garbage; the kernel is buggy.",
    },
    CodeInfo {
        code: "SA002",
        severity: Severity::Warning,
        summary: "basic block unreachable from the entry block",
        explain: "No path of terminator edges (loop/beq/jmp/call plus fall-through) from \
                  block 0 reaches this block, so it never executes. Usually a label typo \
                  or dead experiment code.",
    },
    CodeInfo {
        code: "SA003",
        severity: Severity::Warning,
        summary: "dead write: value overwritten before any read",
        explain: "The destination register is re-written before any instruction reads it \
                  on every forward path. Liveness is deliberately conservative across \
                  backward edges (everything is assumed live at a back edge), so \
                  loop-carried accumulators are never flagged.",
    },
    CodeInfo {
        code: "SA004",
        severity: Severity::Info,
        summary: "in-sequence series length estimate (shelf affinity)",
        explain: "Reports the mean and maximum length of runs of consecutive instructions \
                  each depending on the previous one. Paper §IV steers exactly such runs \
                  to the shelf; longer series predict more shelf coverage.",
    },
    CodeInfo {
        code: "SA005",
        severity: Severity::Warning,
        summary: "strided footprint contradicts the region= label",
        explain: "A strided access either has a stride at least as large as its region \
                  (every access aliases after wrap-around) or walks past the region's \
                  size within one loop entry. The measured locality will not match the \
                  region label the kernel claims.",
    },
    CodeInfo {
        code: "SB001",
        severity: Severity::Info,
        summary: "static IPC upper bound for a program on a config",
        explain: "The dependence-graph critical-path pass computed a sound upper bound on \
                  committed IPC from core width, functional-unit mix, and loop-carried \
                  dependence chains. Measured IPC above this bound indicates a simulator \
                  bug; see `shelfsim analyze --bounds` and docs/MECHANISMS.md §13.",
    },
    CodeInfo {
        code: "SC001",
        severity: Severity::Error,
        summary: "ROB/LQ/SQ too small for the thread count",
        explain: "Static partitioning gives each thread fewer entries than one dispatch \
                  group (ROB) or zero entries (LQ/SQ). The core cannot make progress for \
                  every thread.",
    },
    CodeInfo {
        code: "SC002",
        severity: Severity::Error,
        summary: "issue width exceeds IQ capacity",
        explain: "The scheduler can never select more instructions than the issue queue \
                  holds; an issue width above `iq_entries` is unrealizable.",
    },
    CodeInfo {
        code: "SC003",
        severity: Severity::Warning,
        summary: "LQ/SQ larger than the ROB",
        explain: "Every in-flight load/store also holds a ROB entry, so load/store queue \
                  capacity beyond the ROB size is unreachable silicon.",
    },
    CodeInfo {
        code: "SC004",
        severity: Severity::Error,
        summary: "shelf steering enabled with zero shelf entries",
        explain: "A steering policy other than always-IQ needs a shelf to steer to; with \
                  `shelf_entries = 0` steered instructions have nowhere to go.",
    },
    CodeInfo {
        code: "SC005",
        severity: Severity::Warning,
        summary: "shelf configured but unusable or never used",
        explain: "Either the shelf exists under always-IQ steering (dead silicon), or the \
                  per-thread shelf share is smaller than the dispatch width (a steered \
                  dispatch group cannot fit).",
    },
    CodeInfo {
        code: "SC006",
        severity: Severity::Warning,
        summary: "fetch width below dispatch width",
        explain: "The front end cannot sustain the dispatch rate; dispatch width is \
                  effectively capped by fetch.",
    },
    CodeInfo {
        code: "SC007",
        severity: Severity::Error,
        summary: "config file failed to parse",
        explain: "A `key = value` line in the config file has an unknown key or an \
                  unparsable value. The span points at the line.",
    },
    CodeInfo {
        code: "SR001",
        severity: Severity::Error,
        summary: "shelf share cannot hold the longest in-sequence run",
        explain: "The resource-adequacy pass could not prove deadlock-freedom: a steering \
                  policy is active but a thread's shelf share is smaller than \
                  `min(longest in-sequence dependence run, dispatch width)`, so a steered \
                  run can wedge dispatch with every shelf entry waiting on an IQ-side \
                  producer. Campaign pre-flight rejects such runs before simulating.",
    },
    CodeInfo {
        code: "SR002",
        severity: Severity::Warning,
        summary: "static outstanding-miss demand exceeds data MSHRs",
        explain: "The number of static memory accesses that target L1-exceeding regions \
                  (capped by the per-thread LQ+SQ share) is larger than the data-MSHR \
                  pool, so misses will serialize. Progress is still provable; throughput \
                  suffers.",
    },
    CodeInfo {
        code: "SR003",
        severity: Severity::Warning,
        summary: "per-thread LQ/SQ/ROB share smaller than the densest block",
        explain: "Some reachable block contains more loads/stores/instructions than one \
                  thread's queue share, so the block can never be fully in flight and \
                  dispatch will stall inside it on every entry.",
    },
    CodeInfo {
        code: "SR004",
        severity: Severity::Error,
        summary: "a required progress resource has zero capacity",
        explain: "The program uses a resource the config provides zero of (data MSHRs \
                  with memory accesses, store-buffer entries with stores, or a \
                  functional-unit kind with zero units). The first such instruction can \
                  never complete: an unconditional deadlock.",
    },
];

/// Looks up registry metadata for `code`.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|c| c.code == code)
}

/// Renders the registry as the markdown lint-code table embedded in the
/// README (between the `lint-codes` markers). Kept here so the README
/// generator test and any future doc tooling agree byte-for-byte.
pub fn render_code_table() -> String {
    let mut out = String::from("| Code | Severity | Finding |\n|------|----------|---------|\n");
    for c in REGISTRY {
        let sev = match c.severity {
            Severity::Info => "Info",
            Severity::Warning => "Warning",
            Severity::Error => "Error",
        };
        out.push_str(&format!("| {} | {} | {} |\n", c.code, sev, c.summary));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_drives_report_order() {
        let r = Report::new(vec![
            Diagnostic::new("SA004", Severity::Info, "note"),
            Diagnostic::new("SA001", Severity::Error, "bug"),
            Diagnostic::new("SA003", Severity::Warning, "meh"),
        ]);
        let codes: Vec<_> = r.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["SA001", "SA003", "SA004"]);
        assert!(r.has_errors());
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_means_no_errors_or_warnings() {
        let r = Report::new(vec![Diagnostic::new("SA004", Severity::Info, "note")]);
        assert!(r.is_clean());
        assert!(!r.has_errors());
    }

    #[test]
    fn text_rendering_includes_span_and_summary() {
        let r = Report::new(vec![Diagnostic::new(
            "SA001",
            Severity::Error,
            "r9 read before any write",
        )
        .with_span("k.s", 3)]);
        let text = r.render_text();
        assert!(
            text.contains("k.s:3: error [SA001] r9 read before any write"),
            "{text}"
        );
        assert!(
            text.contains("1 error(s), 0 warning(s), 0 note(s)"),
            "{text}"
        );
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let r = Report::new(vec![Diagnostic::new(
            "SC001",
            Severity::Error,
            "a \"quoted\" message",
        )
        .with_span("c.cfg", 2)]);
        let json = r.render_json();
        assert!(json.contains("\"code\":\"SC001\""), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"line\":2"), "{json}");
    }
}
