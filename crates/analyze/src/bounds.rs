//! Static IPC upper bounds: sound, distribution-free limits on the
//! committed IPC any run of a program on a [`CoreConfig`] can sustain.
//!
//! Three families of bound are combined; each is an *upper* bound under
//! every possible random draw of trip counts and branch outcomes, so the
//! minimum is too:
//!
//! 1. **Core width** — IPC can never exceed the narrowest pipeline stage:
//!    `min(fetch, dispatch, issue, commit)` (and never the total FU count).
//! 2. **FU mix** — let `frac_k` be the smallest fraction of kind-`k`
//!    operations in any *reachable* block. Any committed stream is a
//!    concatenation of whole blocks, so at least `frac_k` of it needs a
//!    kind-`k` unit, and those units retire at most `units_k` ops/cycle:
//!    `IPC ≤ units_k / frac_k`.
//! 3. **Recurrence (RecMII)** — for single-block programs (the stream is
//!    that block repeated, regardless of trip randomness), a loop-carried
//!    register dependence chain — found via the [`DefUse`] chains — forces
//!    at least `λ` cycles per iteration, so `IPC ≤ block_len / λ`.
//!    `λ` is lower-bounded by iterating the max-plus recurrence
//!    `val[dest] = max(val[srcs]) + spacing(op)` and taking the **minimum**
//!    of the trailing per-iteration growth of the register front: max-plus
//!    systems become eventually periodic with mean slope `λ`, so the
//!    minimum trailing delta never exceeds `λ` and the bound stays sound
//!    even before the periodic regime is reached. `spacing` is the
//!    register-to-register forwarding distance: `latency()` for ALU ops
//!    and 1 for loads/stores (store-to-load forwarding can satisfy a
//!    dependent load in a cycle, so memory latency must not be assumed).
//!
//! What the bounds deliberately ignore — cache misses, branch squashes,
//! fetch hiccups, memory-carried dependences — only ever *lowers* real
//! IPC, keeping every bound here an over-approximation.

use crate::cfg::Cfg;
use crate::dataflow::DefUse;
use crate::diagnostic::{Diagnostic, Severity};
use shelfsim_core::CoreConfig;
use shelfsim_isa::{FuKind, OpClass, NUM_ARCH_REGS};
use shelfsim_workload::program::Program;

/// Register-to-register forwarding distance of `op`, in cycles, for the
/// recurrence DP. Never larger than what the pipeline can actually achieve.
fn spacing(op: OpClass) -> u64 {
    match op {
        OpClass::Load | OpClass::Store => 1,
        other => u64::from(other.latency()),
    }
}

/// The loop-carried recurrence component of a bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecurrenceBound {
    /// Lower bound on cycles per iteration forced by carried chains.
    pub lambda: f64,
    /// Instructions per iteration (block length including the branch).
    pub block_len: usize,
    /// `block_len / lambda`.
    pub ipc: f64,
}

/// A static IPC upper bound for one program on one config, with the
/// individual components that produced it.
#[derive(Clone, Debug)]
pub struct IpcBoundReport {
    /// Program name.
    pub name: String,
    /// Narrowest pipeline stage width.
    pub width: f64,
    /// Total functional units (all kinds).
    pub fu_capacity: f64,
    /// Per-[`FuKind`] mix caps, indexed by `FuKind::index()`; `None` when
    /// some reachable block uses none of that kind (cap not binding).
    pub kind_caps: [Option<f64>; 4],
    /// Loop-carried recurrence bound, for single-block programs with a
    /// carried register dependence.
    pub recurrence: Option<RecurrenceBound>,
    /// The combined bound: the minimum of every component.
    pub bound: f64,
    /// Which component is binding: `"core-width"`, `"fu-capacity"`,
    /// `"fu-mix"`, or `"recurrence"`.
    pub binding: &'static str,
}

impl IpcBoundReport {
    /// Renders the bound as an `SB001` info diagnostic.
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::new(
            "SB001",
            Severity::Info,
            format!(
                "static IPC bound {:.3} for {} (binding constraint: {})",
                self.bound, self.name, self.binding
            ),
        )
    }
}

/// Iterates the max-plus register recurrence of the single reachable block
/// and returns a sound lower bound on its cycles-per-iteration slope, or
/// `None` when no dependence is carried between iterations.
fn recurrence_lambda(program: &Program, cfg: &Cfg, block: usize) -> Option<f64> {
    // Gate on the def-use chains: without a use fed by a same-block def at
    // or after its own position (i.e. around the back edge), values settle
    // and there is no recurrence to bound.
    let du = DefUse::build(program, cfg);
    if du.carried_uses().is_empty() {
        return None;
    }
    let b = &program.blocks[block];
    const WARMUP_ITERS: usize = 192;
    const SAMPLE_ITERS: usize = 64;
    let mut val = [0u64; NUM_ARCH_REGS];
    let mut prev_max = 0u64;
    let mut min_delta = u64::MAX;
    for iter in 0..WARMUP_ITERS + SAMPLE_ITERS {
        for inst in b.body.iter().chain(std::iter::once(&b.branch_inst)) {
            if let Some(d) = inst.dest {
                let ready = inst
                    .srcs
                    .iter()
                    .flatten()
                    .map(|r| val[r.index()])
                    .max()
                    .unwrap_or(0);
                val[d.index()] = ready + spacing(inst.op);
            }
        }
        let cur_max = val.iter().copied().max().unwrap_or(0);
        if iter >= WARMUP_ITERS {
            min_delta = min_delta.min(cur_max - prev_max);
        }
        prev_max = cur_max;
    }
    (min_delta > 0 && min_delta != u64::MAX).then_some(min_delta as f64)
}

/// Computes the static IPC upper bound of `program` on `cfg`.
pub fn ipc_bound(program: &Program, cfg: &CoreConfig) -> IpcBoundReport {
    let graph = Cfg::new(program);
    let width = cfg
        .fetch_width
        .min(cfg.dispatch_width)
        .min(cfg.issue_width)
        .min(cfg.commit_width) as f64;
    let fu_capacity = cfg.fu_total() as f64;

    // FU-mix caps: the smallest per-block fraction of kind-k ops bounds
    // the kind-k fraction of any committed stream from below.
    let mut kind_caps = [None; 4];
    for kind in FuKind::ALL {
        let frac_min = graph
            .reachable_blocks()
            .map(|bi| {
                let b = &program.blocks[bi];
                let ops = b
                    .body
                    .iter()
                    .chain(std::iter::once(&b.branch_inst))
                    .filter(|i| i.op.fu_kind() == kind)
                    .count();
                ops as f64 / b.len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        if frac_min > 0.0 && frac_min.is_finite() {
            kind_caps[kind.index()] = Some(cfg.fu_count(kind) as f64 / frac_min);
        }
    }

    // Recurrence bound: only when exactly one block is reachable, so the
    // committed stream is that block repeated whatever the trip draws do.
    let reachable: Vec<usize> = graph.reachable_blocks().collect();
    let recurrence = if let [only] = reachable[..] {
        recurrence_lambda(program, &graph, only).map(|lambda| {
            let block_len = program.blocks[only].len();
            RecurrenceBound {
                lambda,
                block_len,
                ipc: block_len as f64 / lambda,
            }
        })
    } else {
        None
    };

    let mut bound = width;
    let mut binding = "core-width";
    if fu_capacity < bound {
        bound = fu_capacity;
        binding = "fu-capacity";
    }
    for cap in kind_caps.iter().flatten() {
        if *cap < bound {
            bound = *cap;
            binding = "fu-mix";
        }
    }
    if let Some(r) = &recurrence {
        if r.ipc < bound {
            bound = r.ipc;
            binding = "recurrence";
        }
    }
    IpcBoundReport {
        name: program.name.to_string(),
        width,
        fu_capacity,
        kind_caps,
        recurrence,
        bound,
        binding,
    }
}

/// Combines per-thread bounds into a bound on the *aggregate* IPC of an
/// SMT run: each per-thread bound holds even with zero contention, so
/// their sum bounds the total, and the shared width/FU limits still apply.
pub fn aggregate_bound(per_thread: &[IpcBoundReport], cfg: &CoreConfig) -> f64 {
    let width = cfg
        .fetch_width
        .min(cfg.dispatch_width)
        .min(cfg.issue_width)
        .min(cfg.commit_width) as f64;
    let sum: f64 = per_thread.iter().map(|r| r.bound).sum();
    width.min(cfg.fu_total() as f64).min(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_workload::kernels;

    fn bound_of(name: &str) -> IpcBoundReport {
        let p = kernels::by_name(name)
            .expect("in library")
            .assemble()
            .expect("valid");
        ipc_bound(&p, &CoreConfig::base64(1))
    }

    #[test]
    fn width_bound_caps_streaming_kernels() {
        // daxpy has no carried register chain; the 4-wide core (or the
        // exactly-matching 2-port memory mix) is the limit.
        let r = bound_of("daxpy");
        assert_eq!(r.width, 4.0);
        assert!((r.bound - 4.0).abs() < 1e-9, "{r:?}");
        assert!(r.recurrence.is_none());
    }

    #[test]
    fn recurrence_bound_caps_the_reduction() {
        // reduce: fadd f9, f9, f8 carries a 2-cycle FP chain through a
        // 3-instruction block: bound 1.5 IPC.
        let r = bound_of("reduce");
        let rec = r.recurrence.expect("carried chain found");
        assert!((rec.lambda - 2.0).abs() < 1e-9, "{rec:?}");
        assert_eq!(rec.block_len, 3);
        assert!((r.bound - 1.5).abs() < 1e-9, "{r:?}");
        assert_eq!(r.binding, "recurrence");
    }

    #[test]
    fn pointer_chase_spacing_stays_sound() {
        // chase: load r24, [r24] — memory latency must NOT be assumed
        // (forwarding could be fast), so spacing is 1 and the bound is
        // block_len / 1 = 3, not something tighter.
        let r = bound_of("chase");
        let rec = r.recurrence.expect("self-loop found");
        assert!((rec.lambda - 1.0).abs() < 1e-9, "{rec:?}");
        assert!((r.bound - 3.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn fu_mix_caps_use_reachable_blocks_only() {
        let p = kernels::by_name("branchy")
            .expect("in library")
            .assemble()
            .expect("valid");
        let r = ipc_bound(&p, &CoreConfig::base64(1));
        // Multi-block: no recurrence bound, width binds.
        assert!(r.recurrence.is_none());
        assert!((r.bound - 4.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn memory_carried_chains_do_not_tighten_the_register_bound() {
        // forward carries a value through memory; the register DP cannot
        // see it, so the bound falls back to width — sound, just loose.
        let r = bound_of("forward");
        assert!((r.bound - 4.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn aggregate_bound_saturates_at_core_width() {
        let cfg = CoreConfig::base64(4);
        let reports: Vec<IpcBoundReport> = (0..4).map(|_| bound_of("daxpy")).collect();
        assert!((aggregate_bound(&reports, &cfg) - 4.0).abs() < 1e-9);
        let slow: Vec<IpcBoundReport> = (0..2).map(|_| bound_of("reduce")).collect();
        let agg = aggregate_bound(&slow, &cfg);
        assert!((agg - 3.0).abs() < 1e-9, "two 1.5-bounded threads: {agg}");
    }

    #[test]
    fn sb001_diagnostic_is_info() {
        let d = bound_of("reduce").diagnostic();
        assert_eq!(d.code, "SB001");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("recurrence"), "{}", d.message);
    }
}
