//! Configuration contradiction checks over a [`CoreConfig`] (`SC…` codes)
//! and a small `key = value` config-file front end.
//!
//! | Code  | Severity | Finding |
//! |-------|----------|---------|
//! | SC001 | Error    | a per-thread partition cannot hold its minimum working unit |
//! | SC002 | Error    | issue width exceeds IQ capacity |
//! | SC003 | Warning  | LQ/SQ larger than the ROB can ever fill |
//! | SC004 | Error    | shelf steering selected with zero shelf entries |
//! | SC005 | Warning  | shelf provisioned but unusable (never steered / degenerate partition) |
//! | SC006 | Warning  | fetch narrower than dispatch |
//! | SC007 | Error    | config-file parse problem (unknown key, bad value) |
//!
//! Unlike [`CoreConfig::validate`], which panics on the first contradiction,
//! [`lint_config`] returns **all** violations so a sweep script can fix a
//! whole config file in one pass.

use crate::diagnostic::{Diagnostic, Severity};
use shelfsim_core::{CoreConfig, SteerPolicy};

/// Checks `cfg` for internal contradictions, returning every violation.
pub fn lint_config(cfg: &CoreConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let err = |code, msg: String| Diagnostic::new(code, Severity::Error, msg);
    let warn = |code, msg: String| Diagnostic::new(code, Severity::Warning, msg);

    // SC001: static partitions must hold at least one working unit each.
    if cfg.rob_entries < cfg.threads * cfg.dispatch_width {
        diags.push(err(
            "SC001",
            format!(
                "rob_entries ({}) < threads ({}) x dispatch_width ({}): a thread's static \
                 ROB partition cannot hold one dispatch group",
                cfg.rob_entries, cfg.threads, cfg.dispatch_width
            ),
        ));
    }
    if cfg.lq_entries < cfg.threads {
        diags.push(err(
            "SC001",
            format!(
                "lq_entries ({}) < threads ({}): some thread's LQ partition is empty",
                cfg.lq_entries, cfg.threads
            ),
        ));
    }
    if cfg.sq_entries < cfg.threads {
        diags.push(err(
            "SC001",
            format!(
                "sq_entries ({}) < threads ({}): some thread's SQ partition is empty",
                cfg.sq_entries, cfg.threads
            ),
        ));
    }

    // SC002: issue can never reach its stated width.
    if cfg.issue_width > cfg.iq_entries {
        diags.push(err(
            "SC002",
            format!(
                "issue_width ({}) > iq_entries ({}): the IQ can never supply a full issue group",
                cfg.issue_width, cfg.iq_entries
            ),
        ));
    }

    // SC003: over-provisioned LSQ (ROB bounds in-flight memory ops).
    if cfg.lq_entries > cfg.rob_entries {
        diags.push(warn(
            "SC003",
            format!(
                "lq_entries ({}) > rob_entries ({}): the extra LQ entries can never fill \
                 (every IQ load also holds a ROB entry)",
                cfg.lq_entries, cfg.rob_entries
            ),
        ));
    }
    if cfg.sq_entries > cfg.rob_entries {
        diags.push(warn(
            "SC003",
            format!(
                "sq_entries ({}) > rob_entries ({}): the extra SQ entries can never fill",
                cfg.sq_entries, cfg.rob_entries
            ),
        ));
    }

    // SC004/SC005: steering and shelf provisioning must agree.
    if cfg.shelf_entries == 0 && cfg.steer != SteerPolicy::AlwaysIq {
        diags.push(err(
            "SC004",
            format!(
                "steer policy {:?} requires shelf entries, but shelf_entries = 0",
                cfg.steer
            ),
        ));
    }
    if cfg.shelf_entries > 0 && cfg.steer == SteerPolicy::AlwaysIq {
        diags.push(warn(
            "SC005",
            format!(
                "shelf_entries = {} but steer = AlwaysIq: the shelf is dead area that \
                 nothing is ever steered to",
                cfg.shelf_entries
            ),
        ));
    }
    if cfg.shelf_entries > 0 && cfg.shelf_per_thread() < cfg.dispatch_width {
        diags.push(warn(
            "SC005",
            format!(
                "per-thread shelf partition ({}) is smaller than dispatch_width ({}): one \
                 dispatch group of in-sequence instructions cannot be shelved without stalling",
                cfg.shelf_per_thread(),
                cfg.dispatch_width
            ),
        ));
    }

    // SC006: the front end cannot sustain the back end.
    if cfg.fetch_width < cfg.dispatch_width {
        diags.push(warn(
            "SC006",
            format!(
                "fetch_width ({}) < dispatch_width ({}): dispatch can never run at full width",
                cfg.fetch_width, cfg.dispatch_width
            ),
        ));
    }

    diags
}

/// The evaluated design-point names accepted by [`design_by_name`], in
/// presentation order. Single source of truth for CLI/campaign error
/// messages ("unknown design" suggestions).
pub const DESIGN_NAMES: [&str; 6] = [
    "base64",
    "base128",
    "shelf-cons",
    "shelf-opt",
    "shelf-oracle",
    "shelf-inorder",
];

/// Resolves an evaluated design-point name (the CLI `--design` names) to a
/// configuration.
pub fn design_by_name(name: &str, threads: usize) -> Option<CoreConfig> {
    Some(match name {
        "base64" => CoreConfig::base64(threads),
        "base128" => CoreConfig::base128(threads),
        "shelf-cons" => CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, false),
        "shelf-opt" => CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, true),
        "shelf-oracle" => CoreConfig::base64_shelf64(threads, SteerPolicy::Oracle, true),
        "shelf-inorder" => CoreConfig::base64_shelf64(threads, SteerPolicy::AlwaysShelf, true),
        _ => return None,
    })
}

/// Applies one structural `key = value` override to `cfg`.
///
/// The accepted keys are the config-file override keys: `steer`
/// (`always-iq|always-shelf|practical|oracle`) and the sizing keys `rob`,
/// `iq`, `lq`, `sq`, `shelf`, `fetch`, `dispatch`, `issue`, `commit`,
/// `store-buffer` (non-negative integers). Shared by [`lint_config_file`]
/// and the campaign CLI's `--override` flag so both front ends accept the
/// same vocabulary.
///
/// # Errors
///
/// Returns a human-readable description of what was expected.
pub fn apply_override(cfg: &mut CoreConfig, key: &str, value: &str) -> Result<(), String> {
    if key == "steer" {
        cfg.steer = match value {
            "always-iq" => SteerPolicy::AlwaysIq,
            "always-shelf" => SteerPolicy::AlwaysShelf,
            "practical" => SteerPolicy::Practical,
            "oracle" => SteerPolicy::Oracle,
            _ => {
                return Err(format!(
                    "steer: expected always-iq|always-shelf|practical|oracle, got `{value}`"
                ))
            }
        };
        return Ok(());
    }
    let slot = match key {
        "rob" => &mut cfg.rob_entries,
        "iq" => &mut cfg.iq_entries,
        "lq" => &mut cfg.lq_entries,
        "sq" => &mut cfg.sq_entries,
        "shelf" => &mut cfg.shelf_entries,
        "fetch" => &mut cfg.fetch_width,
        "dispatch" => &mut cfg.dispatch_width,
        "issue" => &mut cfg.issue_width,
        "commit" => &mut cfg.commit_width,
        "store-buffer" => &mut cfg.store_buffer_entries,
        _ => return Err(format!("unknown config key `{key}`")),
    };
    match value.parse::<usize>() {
        Ok(n) => {
            *slot = n;
            Ok(())
        }
        Err(_) => Err(format!(
            "{key}: expected a non-negative integer, got `{value}`"
        )),
    }
}

/// Parses a `key = value` config file into a [`CoreConfig`] and lints it.
///
/// Lines are `key = value`; `#` and `;` start comments. The `design` key
/// picks a base design point (default `base64`), `threads` its thread
/// count (default 4); the remaining keys override individual structures:
/// `rob`, `iq`, `lq`, `sq`, `shelf`, `fetch`, `dispatch`, `issue`,
/// `commit`, `store-buffer`, and `steer`
/// (`always-iq|always-shelf|practical|oracle`).
///
/// Parse problems are reported as `SC007` errors with the offending line;
/// the configuration is still built best-effort so the contradiction
/// checks can run on what was understood.
pub fn lint_config_file(text: &str, file: &str) -> (CoreConfig, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut pairs: Vec<(usize, String, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split(['#', ';']).next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        match body.split_once('=') {
            Some((k, v)) => pairs.push((line, k.trim().to_ascii_lowercase(), v.trim().to_owned())),
            None => diags.push(
                Diagnostic::new(
                    "SC007",
                    Severity::Error,
                    format!("expected `key = value`, got `{body}`"),
                )
                .with_span(file, line),
            ),
        }
    }

    // The base design and thread count shape everything else, so resolve
    // them first regardless of where they appear in the file.
    let mut threads = 4usize;
    let mut design = "base64".to_owned();
    for (line, k, v) in &pairs {
        match k.as_str() {
            "threads" => match v.parse::<usize>() {
                Ok(n) if (1..=8).contains(&n) => threads = n,
                _ => diags.push(
                    Diagnostic::new(
                        "SC007",
                        Severity::Error,
                        format!("threads must be 1..=8, got `{v}`"),
                    )
                    .with_span(file, *line),
                ),
            },
            "design" => {
                if design_by_name(v, 1).is_some() {
                    design = v.clone();
                } else {
                    diags.push(
                        Diagnostic::new(
                            "SC007",
                            Severity::Error,
                            format!(
                                "unknown design `{v}` (base64, base128, shelf-cons, \
                                     shelf-opt, shelf-oracle, shelf-inorder)"
                            ),
                        )
                        .with_span(file, *line),
                    );
                }
            }
            _ => {}
        }
    }
    let mut cfg = design_by_name(&design, threads).expect("validated above");

    for (line, k, v) in &pairs {
        if k == "threads" || k == "design" {
            continue;
        }
        if let Err(msg) = apply_override(&mut cfg, k, v) {
            diags.push(Diagnostic::new("SC007", Severity::Error, msg).with_span(file, *line));
        }
    }

    diags.extend(lint_config(&cfg));
    (cfg, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    // ---- SC001 -----------------------------------------------------------

    #[test]
    fn sc001_flags_partitions_too_small() {
        let mut cfg = CoreConfig::base64(8);
        cfg.rob_entries = 16; // 8 threads x 4-wide dispatch needs >= 32
        cfg.lq_entries = 4;
        cfg.sq_entries = 4;
        let diags = lint_config(&cfg);
        assert_eq!(
            diags.iter().filter(|d| d.code == "SC001").count(),
            3,
            "{diags:?}"
        );
        assert!(diags
            .iter()
            .all(|d| d.code != "SC001" || d.severity == Severity::Error));
    }

    #[test]
    fn sc001_quiet_on_table1_partitions() {
        assert!(!codes(&lint_config(&CoreConfig::base64(4))).contains(&"SC001"));
    }

    // ---- SC002 -----------------------------------------------------------

    #[test]
    fn sc002_flags_issue_wider_than_iq() {
        let mut cfg = CoreConfig::base64(4);
        cfg.iq_entries = 2;
        assert!(codes(&lint_config(&cfg)).contains(&"SC002"));
    }

    #[test]
    fn sc002_quiet_when_iq_covers_issue_width() {
        assert!(!codes(&lint_config(&CoreConfig::base64(4))).contains(&"SC002"));
    }

    // ---- SC003 -----------------------------------------------------------

    #[test]
    fn sc003_flags_lsq_bigger_than_rob() {
        let mut cfg = CoreConfig::base64(4);
        cfg.lq_entries = 128;
        let diags = lint_config(&cfg);
        let d = diags
            .iter()
            .find(|d| d.code == "SC003")
            .expect("SC003 fires");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn sc003_quiet_for_balanced_lsq() {
        assert!(!codes(&lint_config(&CoreConfig::base128(4))).contains(&"SC003"));
    }

    // ---- SC004 / SC005 ---------------------------------------------------

    #[test]
    fn sc004_flags_steering_without_shelf() {
        let mut cfg = CoreConfig::base64(4);
        cfg.steer = SteerPolicy::Practical;
        let diags = lint_config(&cfg);
        let d = diags
            .iter()
            .find(|d| d.code == "SC004")
            .expect("SC004 fires");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn sc005_flags_dead_or_degenerate_shelf() {
        let mut dead = CoreConfig::base64(4);
        dead.shelf_entries = 64; // provisioned, never steered to
        assert!(codes(&lint_config(&dead)).contains(&"SC005"));

        let mut shallow = CoreConfig::base64_shelf64(8, SteerPolicy::Practical, true);
        shallow.shelf_entries = 8; // 1 entry per thread < 4-wide dispatch
        assert!(codes(&lint_config(&shallow)).contains(&"SC005"));
    }

    #[test]
    fn sc004_sc005_quiet_on_evaluated_shelf_designs() {
        let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
        let diags = lint_config(&cfg);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // ---- SC006 -----------------------------------------------------------

    #[test]
    fn sc006_flags_fetch_narrower_than_dispatch() {
        let mut cfg = CoreConfig::base64(4);
        cfg.fetch_width = 2;
        assert!(codes(&lint_config(&cfg)).contains(&"SC006"));
    }

    #[test]
    fn sc006_quiet_on_table1_widths() {
        assert!(!codes(&lint_config(&CoreConfig::base64(4))).contains(&"SC006"));
    }

    // ---- config files ----------------------------------------------------

    #[test]
    fn config_file_round_trips_design_and_overrides() {
        let (cfg, diags) = lint_config_file(
            "# shelf design, doubled LQ\ndesign = shelf-opt\nthreads = 2\nlq = 64 ; why not\n",
            "t.cfg",
        );
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.shelf_entries, 64);
        assert_eq!(cfg.lq_entries, 64);
        assert!(cfg.same_cycle_shelf_issue);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn config_file_reports_all_contradictions_at_once() {
        let (_, diags) = lint_config_file(
            "design = base64\nthreads = 8\nrob = 16\niq = 2\nsteer = practical\n",
            "t.cfg",
        );
        let codes = codes(&diags);
        assert!(codes.contains(&"SC001"), "{diags:?}");
        assert!(codes.contains(&"SC002"), "{diags:?}");
        assert!(codes.contains(&"SC004"), "{diags:?}");
    }

    #[test]
    fn config_file_parse_errors_carry_spans() {
        let (_, diags) = lint_config_file("design = base64\nwhatever = 3\nnot a pair\n", "bad.cfg");
        let mut lines: Vec<usize> = diags
            .iter()
            .filter(|d| d.code == "SC007")
            .map(|d| d.span.as_ref().unwrap().line)
            .collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![2, 3], "{diags:?}");
    }
}
