//! Resource-adequacy pass (`SR…` codes): static proof obligations that a
//! config's per-thread resource shares suffice for a program's dependence
//! and memory structure.
//!
//! PR 2's watchdog *detects* a wedged pipeline after the fact; this pass
//! *prevents* a class of those runs by refusing configs whose adequacy it
//! cannot statically prove. Errors mean "no adequacy proof exists — the
//! run may deadlock or livelock"; warnings mean "provably a throughput
//! hazard, but forward progress still provable".
//!
//! | Code  | Severity | Obligation that failed |
//! |-------|----------|------------------------|
//! | SR001 | Error    | shelf depth vs. longest in-sequence dependence run |
//! | SR002 | Warning  | data-MSHR count vs. static outstanding-miss demand |
//! | SR003 | Warning  | per-thread LQ/SQ/ROB share vs. densest block |
//! | SR004 | Error    | a required progress resource has zero capacity |

use crate::cfg::Cfg;
use crate::diagnostic::{Diagnostic, Severity};
use shelfsim_core::{CoreConfig, SteerPolicy};
use shelfsim_isa::{ArchReg, FuKind, OpClass};
use shelfsim_workload::asm::PcLineMap;
use shelfsim_workload::program::{AccessPattern, Program, Region};

/// The longest in-sequence dependence run in any reachable block: the
/// maximal chain of consecutive instructions each reading the previous
/// instruction's destination (the runs the shelf steers), plus the PC of
/// the run's first instruction for spans.
fn longest_in_sequence_run(program: &Program, cfg: &Cfg) -> (usize, u64) {
    let mut best = (0usize, 0u64);
    for bi in cfg.reachable_blocks() {
        let b = &program.blocks[bi];
        let mut run = 0usize;
        let mut run_start_pc = 0u64;
        let mut prev_dest: Option<ArchReg> = None;
        for inst in &b.body {
            let in_seq = prev_dest.is_some_and(|d| inst.srcs.iter().flatten().any(|&s| s == d));
            if in_seq {
                run += 1;
            } else {
                run = 1;
                run_start_pc = inst.pc;
            }
            if run > best.0 {
                best = (run, run_start_pc);
            }
            prev_dest = inst.dest;
        }
    }
    best
}

/// Checks that `cfg`'s per-thread resource shares are statically adequate
/// for `program`, attaching spans from `source` when given.
pub fn check_adequacy(
    program: &Program,
    cfg: &CoreConfig,
    source: Option<(&str, &PcLineMap)>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let spanned =
        |d: Diagnostic, pc: u64| match source.and_then(|(f, m)| m.get(&pc).map(|&l| (f, l))) {
            Some((file, line)) => d.with_span(file, line),
            None => d,
        };
    let graph = Cfg::new(program);

    // ---- SR001: shelf depth vs. in-sequence dependence runs --------------
    // A shelf issues strictly in FIFO order; steering policies move whole
    // in-sequence runs there. If a thread's shelf share cannot hold even
    // `min(longest run, dispatch width)` instructions, a steered run can
    // wedge dispatch with the shelf full while every shelf entry waits on
    // an IQ-side producer — the adequacy proof fails.
    if cfg.shelf_entries > 0 && cfg.steer != SteerPolicy::AlwaysIq {
        let (run, run_pc) = longest_in_sequence_run(program, &graph);
        let need = run.min(cfg.dispatch_width);
        if cfg.shelf_per_thread() < need {
            diags.push(spanned(
                Diagnostic::new(
                    "SR001",
                    Severity::Error,
                    format!(
                        "cannot prove deadlock-freedom: shelf share is {} entries/thread but \
                         {} has an in-sequence run of {} dependent instruction(s) (need >= {})",
                        cfg.shelf_per_thread(),
                        program.name,
                        run,
                        need
                    ),
                ),
                run_pc,
            ));
        }
    }

    // ---- SR002: MSHR count vs. static outstanding-miss demand ------------
    // Every static memory access targeting a region larger than the L1 can
    // miss concurrently, but in-flight misses are also capped by the
    // thread's LQ+SQ share; exceeding the MSHR pool serializes misses.
    let miss_statics = graph
        .reachable_blocks()
        .flat_map(|bi| &program.blocks[bi].body)
        .filter(|i| {
            matches!(
                i.access,
                Some(
                    AccessPattern::Strided { region, .. }
                        | AccessPattern::PointerChase { region }
                        | AccessPattern::Random { region }
                ) if region != Region::L1
            )
        })
        .count();
    let demand = miss_statics.min(cfg.lq_per_thread() + cfg.sq_per_thread());
    if demand > cfg.hierarchy.data_mshrs {
        diags.push(Diagnostic::new(
            "SR002",
            Severity::Warning,
            format!(
                "static outstanding-miss demand {} exceeds the {} data MSHRs: misses will \
                 serialize ({} has {} L1-exceeding memory static(s))",
                demand, cfg.hierarchy.data_mshrs, program.name, miss_statics
            ),
        ));
    }

    // ---- SR003: per-thread LQ/SQ/ROB share vs. densest block -------------
    // A block whose loads exceed the thread's LQ share (or stores the SQ
    // share, or total length the ROB share) cannot be fully in flight:
    // dispatch stalls inside every entry of that block.
    for bi in graph.reachable_blocks() {
        let b = &program.blocks[bi];
        let loads = b.body.iter().filter(|i| i.op == OpClass::Load).count();
        let stores = b.body.iter().filter(|i| i.op == OpClass::Store).count();
        let first_pc = b.body.first().map_or(b.branch_inst.pc, |i| i.pc);
        for (what, have, need) in [
            ("LQ", cfg.lq_per_thread(), loads),
            ("SQ", cfg.sq_per_thread(), stores),
            ("ROB", cfg.rob_per_thread(), b.len()),
        ] {
            if need > have {
                diags.push(spanned(
                    Diagnostic::new(
                        "SR003",
                        Severity::Warning,
                        format!(
                            "block {} of {} needs {} {} entries but each thread's share is \
                             {}: the block can never be fully in flight",
                            bi, program.name, need, what, have
                        ),
                    ),
                    first_pc,
                ));
            }
        }
    }

    // ---- SR004: zero-capacity progress resources -------------------------
    // A resource on the commit path with zero capacity is an unconditional
    // deadlock, not a sizing question.
    let has_mem = graph
        .reachable_blocks()
        .flat_map(|bi| &program.blocks[bi].body)
        .any(|i| i.op.is_mem());
    let has_store = graph
        .reachable_blocks()
        .flat_map(|bi| &program.blocks[bi].body)
        .any(|i| i.op == OpClass::Store);
    if has_mem && cfg.hierarchy.data_mshrs == 0 {
        diags.push(Diagnostic::new(
            "SR004",
            Severity::Error,
            format!(
                "{} performs memory accesses but the config has zero data MSHRs: the first \
                 miss can never complete",
                program.name
            ),
        ));
    }
    if has_store && cfg.store_buffer_entries == 0 {
        diags.push(Diagnostic::new(
            "SR004",
            Severity::Error,
            format!(
                "{} performs stores but the store buffer has zero entries: committed stores \
                 can never drain",
                program.name
            ),
        ));
    }
    for kind in FuKind::ALL {
        if cfg.fu_count(kind) > 0 {
            continue;
        }
        let used = graph
            .reachable_blocks()
            .flat_map(|bi| {
                let b = &program.blocks[bi];
                b.body.iter().chain(std::iter::once(&b.branch_inst))
            })
            .find(|i| i.op.fu_kind() == kind);
        if let Some(inst) = used {
            diags.push(spanned(
                Diagnostic::new(
                    "SR004",
                    Severity::Error,
                    format!(
                        "{} uses a {:?} operation but the config has zero {:?} units: it can \
                         never issue",
                        program.name, inst.op, kind
                    ),
                ),
                inst.pc,
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_workload::asm::assemble_with_lines;
    use shelfsim_workload::kernels;

    fn kernel(name: &str) -> Program {
        kernels::by_name(name)
            .expect("in library")
            .assemble()
            .expect("valid")
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn standard_designs_prove_adequate_on_every_kernel() {
        use shelfsim_analyze_testcfgs::*;
        for cfg in all_standard_configs() {
            for k in kernels::all() {
                let diags = check_adequacy(&k.assemble().expect("valid"), &cfg, None);
                assert!(
                    !diags.iter().any(|d| d.severity == Severity::Error),
                    "{} on {:?}: {diags:?}",
                    k.name,
                    cfg.steer
                );
            }
        }
    }

    #[test]
    fn sr001_rejects_starved_shelf_with_span() {
        let mut cfg = CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, false);
        cfg.shelf_entries = 4; // 1 entry per thread
        let k = kernels::by_name("daxpy").expect("in library");
        let (p, lines) = assemble_with_lines(k.source).expect("valid");
        let diags = check_adequacy(&p, &cfg, Some(("daxpy.s", &lines)));
        let d = diags
            .iter()
            .find(|d| d.code == "SR001")
            .expect("SR001 fires");
        assert_eq!(d.severity, Severity::Error);
        let span = d.span.as_ref().expect("spanned");
        assert_eq!(span.file, "daxpy.s");
        assert!(span.line > 0);
    }

    #[test]
    fn sr002_warns_when_miss_demand_exceeds_mshrs() {
        let mut cfg = CoreConfig::base64(1);
        cfg.hierarchy.data_mshrs = 1;
        let diags = check_adequacy(&kernel("chase2"), &cfg, None);
        let d = diags
            .iter()
            .find(|d| d.code == "SR002")
            .expect("SR002 fires");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn sr003_warns_on_undersized_per_thread_shares() {
        let mut cfg = CoreConfig::base64(8);
        cfg.lq_entries = 8; // 1 LQ entry per thread; daxpy has 2 loads
        let diags = check_adequacy(&kernel("daxpy"), &cfg, None);
        assert!(codes(&diags).contains(&"SR003"), "{diags:?}");
    }

    #[test]
    fn sr004_rejects_zero_capacity_resources() {
        let mut cfg = CoreConfig::base64(1);
        cfg.hierarchy.data_mshrs = 0;
        let diags = check_adequacy(&kernel("daxpy"), &cfg, None);
        let sr4: Vec<_> = diags.iter().filter(|d| d.code == "SR004").collect();
        assert!(!sr4.is_empty());
        assert!(sr4.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn sr004_rejects_missing_fu_kind_with_span() {
        let mut cfg = CoreConfig::base64(1);
        cfg.fu_fp = 0;
        let k = kernels::by_name("reduce").expect("in library");
        let (p, lines) = assemble_with_lines(k.source).expect("valid");
        let diags = check_adequacy(&p, &cfg, Some(("reduce.s", &lines)));
        let d = diags
            .iter()
            .find(|d| d.code == "SR004" && d.message.contains("Fp"))
            .expect("zero-FP-unit error");
        assert!(d.span.is_some());
    }
}

#[cfg(test)]
mod shelfsim_analyze_testcfgs {
    use shelfsim_core::{CoreConfig, SteerPolicy};

    pub fn all_standard_configs() -> Vec<CoreConfig> {
        let mut v = Vec::new();
        for threads in [1, 2, 4, 8] {
            v.push(CoreConfig::base64(threads));
            v.push(CoreConfig::base128(threads));
            for steer in [
                SteerPolicy::Practical,
                SteerPolicy::Oracle,
                SteerPolicy::AlwaysShelf,
            ] {
                v.push(CoreConfig::base64_shelf64(threads, steer, true));
            }
        }
        v
    }
}
