//! A worklist dataflow engine over the [`Cfg`], plus the three concrete
//! analyses the rest of the crate consumes: reaching definitions, def-use
//! chains, and precise live registers.
//!
//! The engine is the textbook iterative scheme: facts live at block
//! boundaries, blocks are visited in reverse postorder (or its reverse for
//! backward analyses), and iteration repeats until no fact changes. All
//! three analyses are monotone over finite lattices, so the fixed point is
//! reached in a handful of passes.
//!
//! Note the contrast with the `SA003` dead-write lint: that lint keeps its
//! deliberately *conservative* forward-path liveness (backward edges force
//! everything live) so loop-carried accumulators are never flagged. The
//! [`live_registers`] analysis here is the *precise* fixed point — use it
//! when you need real liveness, not lint-grade caution.

use crate::cfg::Cfg;
use shelfsim_isa::{ArchReg, NUM_ARCH_REGS};
use shelfsim_workload::program::{Block, Program, StaticInst};

/// A growable bitset used for reaching-definition facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `len` bits.
    pub fn empty(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Inserts bit `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// `self & other` as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Indices of the set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1u64 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// One dataflow analysis: a fact lattice plus per-block transfer.
pub trait DataflowAnalysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;
    /// Whether facts flow against control flow (liveness) or with it.
    const BACKWARD: bool;
    /// Fact at the program boundary (entry for forward, exit for backward).
    fn boundary(&self) -> Self::Fact;
    /// The join identity (bottom of the join semilattice).
    fn top(&self) -> Self::Fact;
    /// `acc := acc ⊔ other`.
    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact);
    /// Applies block `b`'s effect to a fact at its input boundary
    /// (entry for forward analyses, exit for backward ones).
    fn transfer(&self, b: usize, fact: &Self::Fact) -> Self::Fact;
}

/// Fixed-point facts per block, for every block in the CFG (unreachable
/// blocks keep the `top` fact).
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// Fact at each block's entry.
    pub entry: Vec<F>,
    /// Fact at each block's exit.
    pub exit: Vec<F>,
    /// Full sweeps the worklist needed to converge (diagnostics/tests).
    pub passes: usize,
}

/// Runs `analysis` to its fixed point over `cfg`.
pub fn solve<A: DataflowAnalysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.num_blocks();
    let mut entry = vec![analysis.top(); n];
    let mut exit = vec![analysis.top(); n];
    let rpo = cfg.reverse_postorder();
    let order: Vec<usize> = if A::BACKWARD {
        rpo.iter().rev().copied().collect()
    } else {
        rpo
    };
    let mut passes = 0usize;
    // Monotone facts over finite lattices converge; the cap is a guard
    // against a broken transfer function, not a tuning knob.
    let cap = 4 * n + 8;
    loop {
        passes += 1;
        let mut changed = false;
        for &b in &order {
            let mut fact = analysis.top();
            if A::BACKWARD {
                if cfg.succs[b].is_empty() {
                    analysis.join(&mut fact, &analysis.boundary());
                }
                for &s in &cfg.succs[b] {
                    analysis.join(&mut fact, &entry[s]);
                }
                if exit[b] != fact {
                    exit[b] = fact;
                    changed = true;
                }
                let new_entry = analysis.transfer(b, &exit[b]);
                if entry[b] != new_entry {
                    entry[b] = new_entry;
                    changed = true;
                }
            } else {
                if b == 0 {
                    analysis.join(&mut fact, &analysis.boundary());
                }
                for &p in &cfg.preds[b] {
                    if cfg.reachable[p] {
                        analysis.join(&mut fact, &exit[p]);
                    }
                }
                if entry[b] != fact {
                    entry[b] = fact;
                    changed = true;
                }
                let new_exit = analysis.transfer(b, &entry[b]);
                if exit[b] != new_exit {
                    exit[b] = new_exit;
                    changed = true;
                }
            }
        }
        if !changed || passes >= cap {
            debug_assert!(passes < cap, "dataflow failed to converge");
            break;
        }
    }
    Solution {
        entry,
        exit,
        passes,
    }
}

fn block_insts(b: &Block) -> impl Iterator<Item = &StaticInst> {
    b.body.iter().chain(std::iter::once(&b.branch_inst))
}

fn reg_bit(r: ArchReg) -> u64 {
    const { assert!(NUM_ARCH_REGS <= 64, "register masks are u64") };
    1u64 << r.index()
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// One definition site: instruction `index` of `block` writes `reg`.
/// `index` counts body instructions first; the terminator (which never
/// writes a register today) would sit at `body.len()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// Block index.
    pub block: usize,
    /// Instruction position within the block.
    pub index: usize,
    /// Register written.
    pub reg: ArchReg,
    /// PC of the defining instruction (for spans).
    pub pc: u64,
}

/// Reaching-definitions analysis: which definition sites may reach each
/// block boundary.
pub struct ReachingDefs<'p> {
    program: &'p Program,
    /// All definition sites, in (block, index) order.
    pub defs: Vec<DefSite>,
    /// `def_at[block][index]` is the def-site index, if that instruction
    /// defines a register.
    pub def_at: Vec<Vec<Option<usize>>>,
    /// For each architectural register, the set of all its def sites.
    pub defs_of_reg: Vec<BitSet>,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl<'p> ReachingDefs<'p> {
    /// Collects def sites and per-block gen/kill sets for `program`.
    pub fn new(program: &'p Program) -> Self {
        let mut defs = Vec::new();
        let mut def_at = Vec::with_capacity(program.blocks.len());
        for (bi, b) in program.blocks.iter().enumerate() {
            let mut at = Vec::with_capacity(b.len());
            for (ii, inst) in block_insts(b).enumerate() {
                at.push(inst.dest.map(|reg| {
                    defs.push(DefSite {
                        block: bi,
                        index: ii,
                        reg,
                        pc: inst.pc,
                    });
                    defs.len() - 1
                }));
            }
            def_at.push(at);
        }
        let nd = defs.len();
        let mut defs_of_reg = vec![BitSet::empty(nd); NUM_ARCH_REGS];
        for (i, d) in defs.iter().enumerate() {
            defs_of_reg[d.reg.index()].insert(i);
        }
        let mut gen = Vec::with_capacity(program.blocks.len());
        let mut kill = Vec::with_capacity(program.blocks.len());
        for (bi, b) in program.blocks.iter().enumerate() {
            let mut g = BitSet::empty(nd);
            let mut k = BitSet::empty(nd);
            for (ii, inst) in block_insts(b).enumerate() {
                if let Some(d) = inst.dest {
                    k.union_with(&defs_of_reg[d.index()]);
                    g.subtract(&defs_of_reg[d.index()]);
                    g.insert(def_at[bi][ii].expect("dest implies def site"));
                }
            }
            gen.push(g);
            kill.push(k);
        }
        ReachingDefs {
            program,
            defs,
            def_at,
            defs_of_reg,
            gen,
            kill,
        }
    }

    /// Runs the analysis to its fixed point.
    pub fn solve(&self, cfg: &Cfg) -> Solution<BitSet> {
        solve(self, cfg)
    }
}

impl DataflowAnalysis for ReachingDefs<'_> {
    type Fact = BitSet;
    const BACKWARD: bool = false;

    fn boundary(&self) -> BitSet {
        BitSet::empty(self.defs.len())
    }

    fn top(&self) -> BitSet {
        BitSet::empty(self.defs.len())
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) {
        acc.union_with(other);
    }

    fn transfer(&self, b: usize, fact: &BitSet) -> BitSet {
        let _ = &self.program.blocks[b];
        let mut out = fact.clone();
        out.subtract(&self.kill[b]);
        out.union_with(&self.gen[b]);
        out
    }
}

// ---------------------------------------------------------------------------
// Def-use chains
// ---------------------------------------------------------------------------

/// One use site: source slot `slot` of instruction `index` in `block`
/// reads `reg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseSite {
    /// Block index.
    pub block: usize,
    /// Instruction position within the block (terminator = `body.len()`).
    pub index: usize,
    /// Source operand slot (0 or 1).
    pub slot: usize,
    /// Register read.
    pub reg: ArchReg,
    /// PC of the reading instruction (for spans).
    pub pc: u64,
}

/// Def-use chains: for every use in a reachable block, the set of
/// definitions that may reach it (including definitions carried around
/// loop back-edges from a previous iteration).
pub struct DefUse {
    /// All definition sites (shared numbering with `reaching`).
    pub defs: Vec<DefSite>,
    /// All use sites in reachable blocks, in (block, index, slot) order.
    pub uses: Vec<UseSite>,
    /// `reaching[u]` is the def-site set that may reach `uses[u]`.
    pub reaching: Vec<BitSet>,
    /// `uses_of_def[d]` lists the use indices `defs[d]` may feed.
    pub uses_of_def: Vec<Vec<usize>>,
}

impl DefUse {
    /// Builds def-use chains for `program` from the reaching-definitions
    /// fixed point.
    pub fn build(program: &Program, cfg: &Cfg) -> DefUse {
        let rd = ReachingDefs::new(program);
        let sol = rd.solve(cfg);
        let mut uses = Vec::new();
        let mut reaching = Vec::new();
        for bi in cfg.reachable_blocks() {
            let b = &program.blocks[bi];
            let mut cur = sol.entry[bi].clone();
            for (ii, inst) in block_insts(b).enumerate() {
                for (slot, src) in inst.srcs.iter().enumerate() {
                    if let Some(r) = src {
                        uses.push(UseSite {
                            block: bi,
                            index: ii,
                            slot,
                            reg: *r,
                            pc: inst.pc,
                        });
                        reaching.push(cur.intersection(&rd.defs_of_reg[r.index()]));
                    }
                }
                if let Some(d) = inst.dest {
                    cur.subtract(&rd.defs_of_reg[d.index()]);
                    cur.insert(rd.def_at[bi][ii].expect("dest implies def site"));
                }
            }
        }
        let mut uses_of_def = vec![Vec::new(); rd.defs.len()];
        for (ui, r) in reaching.iter().enumerate() {
            for di in r.ones() {
                uses_of_def[di].push(ui);
            }
        }
        DefUse {
            defs: rd.defs,
            uses,
            reaching,
            uses_of_def,
        }
    }

    /// Use sites fed by a definition *at or after* the use's own position
    /// in the same block — i.e. dependences carried around a back edge
    /// from a previous iteration. For a single-block loop these are
    /// exactly the loop-carried recurrences that bound steady-state IPC.
    pub fn carried_uses(&self) -> Vec<&UseSite> {
        self.uses
            .iter()
            .enumerate()
            .filter(|(ui, u)| {
                self.reaching[*ui]
                    .ones()
                    .any(|di| self.defs[di].block == u.block && self.defs[di].index >= u.index)
            })
            .map(|(_, u)| u)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Live registers (precise)
// ---------------------------------------------------------------------------

struct Liveness<'p> {
    program: &'p Program,
}

impl DataflowAnalysis for Liveness<'_> {
    type Fact = u64;
    const BACKWARD: bool = true;

    fn boundary(&self) -> u64 {
        // `ret` (or any exit) escapes to an unknown continuation: assume
        // every register outlives the program.
        u64::MAX
    }

    fn top(&self) -> u64 {
        0
    }

    fn join(&self, acc: &mut u64, other: &u64) {
        *acc |= other;
    }

    fn transfer(&self, bi: usize, fact: &u64) -> u64 {
        let b = &self.program.blocks[bi];
        let mut live = *fact;
        for r in b.branch_inst.srcs.iter().flatten() {
            live |= reg_bit(*r);
        }
        for inst in b.body.iter().rev() {
            if let Some(d) = inst.dest {
                live &= !reg_bit(d);
            }
            for r in inst.srcs.iter().flatten() {
                live |= reg_bit(*r);
            }
        }
        live
    }
}

/// Precise live-register masks (bit `i` = `ArchReg` with flat index `i`)
/// at every block boundary, via the backward fixed point.
pub fn live_registers(program: &Program, cfg: &Cfg) -> Solution<u64> {
    solve(&Liveness { program }, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_workload::asm::assemble;
    use shelfsim_workload::kernels;

    fn build(src: &str) -> (Program, Cfg) {
        let p = assemble(src).expect("assembles");
        let cfg = Cfg::new(&p);
        (p, cfg)
    }

    #[test]
    fn bitset_basics() {
        let mut a = BitSet::empty(130);
        a.insert(0);
        a.insert(65);
        a.insert(129);
        assert!(a.contains(65) && !a.contains(64));
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![0, 65, 129]);
        assert_eq!(a.count(), 3);
        let mut b = BitSet::empty(130);
        b.insert(65);
        assert_eq!(a.intersection(&b).ones().collect::<Vec<_>>(), vec![65]);
        a.subtract(&b);
        assert!(!a.contains(65));
    }

    #[test]
    fn reaching_defs_flow_around_the_back_edge() {
        // f9 += f8 every iteration: the def of f9 must reach its own use
        // via the loop back edge.
        let (p, cfg) =
            build("top:\n load f8, [r0], region=l1\n fadd f9, f9, f8\n loop top, trips=10\n");
        let rd = ReachingDefs::new(&p);
        let sol = rd.solve(&cfg);
        assert_eq!(rd.defs.len(), 2, "f8 and f9");
        // Both defs reach the block entry around the back edge.
        assert_eq!(sol.entry[0].count(), 2);
        assert!(sol.passes >= 2, "needs a second pass to see the back edge");
    }

    #[test]
    fn def_use_chains_find_loop_carried_recurrences() {
        let (p, cfg) =
            build("top:\n load f8, [r0], region=l1\n fadd f9, f9, f8\n loop top, trips=10\n");
        let du = DefUse::build(&p, &cfg);
        let carried = du.carried_uses();
        // Only the f9 accumulator is carried; f8 is re-defined before use.
        assert_eq!(carried.len(), 1, "{carried:?}");
        assert_eq!(carried[0].reg.index(), 32 + 9);
    }

    #[test]
    fn def_use_chains_empty_when_nothing_is_carried() {
        // daxpy reads only inputs and same-iteration values.
        let k = kernels::by_name("daxpy").expect("in library");
        let p = k.assemble().expect("assembles");
        let cfg = Cfg::new(&p);
        let du = DefUse::build(&p, &cfg);
        assert!(du.carried_uses().is_empty());
        // But the same-iteration chains exist: f8's def feeds the fmul.
        let f8_def = du
            .defs
            .iter()
            .position(|d| d.reg.index() == 32 + 8)
            .expect("f8 defined");
        assert!(!du.uses_of_def[f8_def].is_empty());
    }

    #[test]
    fn precise_liveness_sees_through_back_edges() {
        // r9 is written then immediately overwritten next iteration without
        // a read: precisely dead at block exit. r8 feeds itself: live.
        let (p, cfg) = build("top:\n add r8, r8\n add r9, r0\n loop top, trips=10\n");
        let live = live_registers(&p, &cfg);
        assert_ne!(live.entry[0] & (1u64 << 8), 0, "r8 live into the block");
        assert_eq!(live.entry[0] & (1u64 << 9), 0, "r9 dead into the block");
    }

    #[test]
    fn every_kernel_converges_quickly() {
        for k in kernels::all() {
            let p = k.assemble().expect("valid");
            let cfg = Cfg::new(&p);
            let rd = ReachingDefs::new(&p);
            let sol = rd.solve(&cfg);
            assert!(sol.passes <= 6, "{}: {} passes", k.name, sol.passes);
            let live = live_registers(&p, &cfg);
            assert!(live.passes <= 6, "{}: {} passes", k.name, live.passes);
            let du = DefUse::build(&p, &cfg);
            assert_eq!(
                du.reaching.len(),
                du.uses.len(),
                "{}: one chain per use",
                k.name
            );
        }
    }
}
