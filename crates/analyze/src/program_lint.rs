//! Static dataflow lints over a [`Program`] (`SA…` codes).
//!
//! | Code  | Severity | Finding |
//! |-------|----------|---------|
//! | SA001 | Error    | register read but never written and not an input register |
//! | SA002 | Warning  | basic block unreachable from the entry block |
//! | SA003 | Warning  | dead write: value overwritten before any read |
//! | SA004 | Info     | in-sequence series length estimate (shelf affinity) |
//! | SA005 | Warning  | strided footprint contradicts the `region=` label |
//!
//! The analyses treat a kernel the way the trace source runs it: an
//! infinite loop entered at block 0, with `loop`/`beq` back-edges and a
//! wrap-around from the last block. Liveness is conservative across
//! backward edges (everything is assumed live), so loop-carried
//! accumulators are never flagged — only values overwritten before any
//! read on a forward path are dead.

use crate::cfg::{block_successors, Cfg};
use crate::diagnostic::{Diagnostic, Severity};
use shelfsim_isa::{ArchReg, NUM_ARCH_REGS};
use shelfsim_workload::asm::PcLineMap;
use shelfsim_workload::program::{AccessPattern, Program, Terminator};

/// Registers a kernel may read without defining: by convention `r0`–`r7`
/// and `f0`–`f7` are inputs (base addresses, constants), and `r24`–`r27`
/// are pre-initialized pointer-chase cursors.
fn is_input_reg(r: ArchReg) -> bool {
    let i = r.index();
    i < 8 || (32..40).contains(&i) || (24..28).contains(&i)
}

fn reg_name(r: ArchReg) -> String {
    if r.is_fp() {
        format!("f{}", r.index() - 32)
    } else {
        format!("r{}", r.index())
    }
}

fn bit(r: ArchReg) -> u64 {
    const { assert!(NUM_ARCH_REGS <= 64, "register liveness masks are u64") };
    1u64 << r.index()
}

/// Lints `program`, attaching spans from `source` (file name + PC→line
/// map from [`shelfsim_workload::asm::assemble_with_lines`]) when given.
pub fn lint_program(program: &Program, source: Option<(&str, &PcLineMap)>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let span_of = |pc: u64| source.and_then(|(file, map)| map.get(&pc).map(|&l| (file, l)));
    let spanned = |d: Diagnostic, pc: u64| match span_of(pc) {
        Some((file, line)) => d.with_span(file, line),
        None => d,
    };
    let n = program.blocks.len();

    // ---- SA002: reachability from the entry block -----------------------
    let cfg = Cfg::new(program);
    let reachable = &cfg.reachable;
    for (i, b) in program.blocks.iter().enumerate() {
        if !reachable[i] {
            let pc = b.body.first().map_or(b.branch_inst.pc, |inst| inst.pc);
            diags.push(spanned(
                Diagnostic::new(
                    "SA002",
                    Severity::Warning,
                    format!("block {i} is unreachable from the entry block"),
                ),
                pc,
            ));
        }
    }

    // ---- SA001: reads of registers no instruction ever writes -----------
    let mut defined = 0u64;
    for b in &program.blocks {
        for inst in &b.body {
            if let Some(d) = inst.dest {
                defined |= bit(d);
            }
        }
    }
    let mut reported = 0u64;
    for b in &program.blocks {
        let reads = b
            .body
            .iter()
            .map(|inst| (inst.pc, inst.srcs))
            .chain(std::iter::once((b.branch_inst.pc, b.branch_inst.srcs)));
        for (pc, srcs) in reads {
            for r in srcs.iter().flatten() {
                if defined & bit(*r) == 0 && !is_input_reg(*r) && reported & bit(*r) == 0 {
                    reported |= bit(*r);
                    diags.push(spanned(
                        Diagnostic::new(
                            "SA001",
                            Severity::Error,
                            format!(
                                "{} is read but never written (inputs are r0-r7, f0-f7, \
                                 and chase cursors r24-r27)",
                                reg_name(*r)
                            ),
                        ),
                        pc,
                    ));
                }
            }
        }
    }

    // ---- SA003: dead writes (forward-path liveness) ----------------------
    // live_in[j] is only consulted for forward edges (j > i); any backward
    // edge or `ret` makes everything live, so loop-carried values survive.
    let mut live_in = vec![u64::MAX; n];
    for i in (0..n).rev() {
        let b = &program.blocks[i];
        let succs = block_successors(b, i, n);
        let mut live = if succs.is_empty() {
            u64::MAX
        } else {
            succs.iter().fold(0u64, |acc, &j| {
                acc | if j > i { live_in[j] } else { u64::MAX }
            })
        };
        for r in b.branch_inst.srcs.iter().flatten() {
            live |= bit(*r);
        }
        for inst in b.body.iter().rev() {
            if let Some(d) = inst.dest {
                if live & bit(d) == 0 && reachable[i] {
                    diags.push(spanned(
                        Diagnostic::new(
                            "SA003",
                            Severity::Warning,
                            format!(
                                "write to {} is dead: overwritten before any read",
                                reg_name(d)
                            ),
                        ),
                        inst.pc,
                    ));
                }
                live &= !bit(d);
            }
            for r in inst.srcs.iter().flatten() {
                live |= bit(*r);
            }
        }
        live_in[i] = live;
    }

    // ---- SA004: in-sequence series length estimate -----------------------
    // A body instruction is "in-sequence" when it has a RAW dependence on
    // the immediately preceding instruction — the paper's shelf steers
    // exactly such runs. Longer mean series predict more shelf coverage.
    let mut runs: Vec<usize> = Vec::new();
    let mut total_insts = 0usize;
    for (i, b) in program.blocks.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let mut run = 0usize;
        let mut prev_dest: Option<ArchReg> = None;
        for inst in &b.body {
            total_insts += 1;
            let in_seq = prev_dest.is_some_and(|d| inst.srcs.iter().flatten().any(|&s| s == d));
            if in_seq {
                run += 1;
            } else {
                if run > 0 {
                    runs.push(run);
                }
                run = 1;
            }
            prev_dest = inst.dest;
        }
        if run > 0 {
            runs.push(run);
        }
    }
    if total_insts > 0 {
        let max = runs.iter().copied().max().unwrap_or(0);
        let mean = runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64;
        diags.push(Diagnostic::new(
            "SA004",
            Severity::Info,
            format!(
                "in-sequence series estimate: mean {mean:.1}, max {max} over {total_insts} \
                 body instruction(s); longer series shift more work to the shelf"
            ),
        ));
    }

    // ---- SA005: strided footprint vs. region label -----------------------
    for b in &program.blocks {
        let loop_trips = match b.terminator {
            Terminator::Loop { trip_mean, .. } => Some(trip_mean as u64),
            _ => None,
        };
        for inst in &b.body {
            let Some(AccessPattern::Strided { region, stride }) = inst.access else {
                continue;
            };
            if stride as u64 >= region.size() {
                diags.push(spanned(
                    Diagnostic::new(
                        "SA005",
                        Severity::Warning,
                        format!(
                            "stride {} >= region size {} ({:?}): every access aliases after \
                             wrap-around, contradicting the region label",
                            stride,
                            region.size(),
                            region
                        ),
                    ),
                    inst.pc,
                ));
            } else if let Some(trips) = loop_trips {
                let walked = stride as u64 * trips;
                if walked > region.size() {
                    diags.push(spanned(
                        Diagnostic::new(
                            "SA005",
                            Severity::Warning,
                            format!(
                                "one loop entry walks stride {} x trips {} = {} bytes, past \
                                 the {} byte {:?} region: the working set contradicts the \
                                 region label",
                                stride,
                                trips,
                                walked,
                                region.size(),
                                region
                            ),
                        ),
                        inst.pc,
                    ));
                }
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelfsim_workload::asm::{assemble, assemble_with_lines};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let (p, lines) = assemble_with_lines(src).unwrap();
        lint_program(&p, Some(("test.s", &lines)))
    }

    // ---- SA001 -----------------------------------------------------------

    #[test]
    fn sa001_flags_read_of_never_written_register() {
        let diags = lint_src("top:\n add r10, r9, r15\n loop top, trips=10\n");
        let sa1: Vec<_> = diags.iter().filter(|d| d.code == "SA001").collect();
        assert_eq!(sa1.len(), 2, "both r9 and r15 are undefined: {diags:?}");
        assert!(sa1.iter().all(|d| d.severity == Severity::Error));
        assert!(sa1.iter().any(|d| d.message.contains("r9")));
        assert!(sa1.iter().any(|d| d.message.contains("r15")));
        assert_eq!(sa1[0].span.as_ref().unwrap().line, 2);
    }

    #[test]
    fn sa001_accepts_inputs_and_defined_registers() {
        let diags = lint_src(
            "top:\n add r8, r0\n mul r9, r8, r8\n load r10, [r1], region=l1\n \
             loop top, trips=10\n",
        );
        assert!(!codes(&diags).contains(&"SA001"), "{diags:?}");
    }

    // ---- SA002 -----------------------------------------------------------

    #[test]
    fn sa002_flags_unreachable_block() {
        // `jmp top` skips the middle block; nothing targets it.
        let diags = lint_src(
            "top:\n add r8, r8\n jmp end\norphan:\n mul r9, r8, r8\n jmp end\n\
             end:\n add r10, r8\n jmp top\n",
        );
        let d = diags
            .iter()
            .find(|d| d.code == "SA002")
            .expect("SA002 fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("block 1"), "{}", d.message);
    }

    #[test]
    fn sa002_quiet_when_all_blocks_reachable() {
        let diags = lint_src(
            "a:\n add r8, r8\n beq r8, c, p=0.5\nb:\n mul r9, r8, r8\n jmp a\n\
             c:\n add r10, r8\n jmp a\n",
        );
        assert!(!codes(&diags).contains(&"SA002"), "{diags:?}");
    }

    // ---- SA003 -----------------------------------------------------------

    #[test]
    fn sa003_flags_overwrite_before_read() {
        let diags = lint_src(
            "top:\n add r8, r0\n add r8, r1\n mul r9, r8, r8\n \
                              loop top, trips=10\n",
        );
        let d = diags
            .iter()
            .find(|d| d.code == "SA003")
            .expect("SA003 fires");
        assert!(d.message.contains("r8"), "{}", d.message);
        assert_eq!(
            d.span.as_ref().unwrap().line,
            2,
            "first write is the dead one"
        );
        assert_eq!(diags.iter().filter(|d| d.code == "SA003").count(), 1);
    }

    #[test]
    fn sa003_spares_loop_carried_accumulators() {
        // r8 is read only by its own next-iteration write; the back-edge
        // keeps it live. r11's value escapes through the loop exit.
        let diags = lint_src(
            "top:\n add r8, r8\n mul r11, r8, r8\n load r24, [r24], chase, region=mem\n \
             loop top, trips=100\n",
        );
        assert!(!codes(&diags).contains(&"SA003"), "{diags:?}");
    }

    // ---- SA004 -----------------------------------------------------------

    #[test]
    fn sa004_reports_long_series_for_dependence_chain() {
        let diags = lint_src(
            "top:\n add r8, r0\n mul r9, r8, r8\n add r10, r9\n mul r11, r10, r10\n \
             loop top, trips=10\n",
        );
        let d = diags
            .iter()
            .find(|d| d.code == "SA004")
            .expect("SA004 fires");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("max 4"), "{}", d.message);
    }

    #[test]
    fn sa004_reports_short_series_for_independent_work() {
        let diags = lint_src(
            "top:\n add r8, r8\n add r9, r9\n add r10, r10\n \
                              loop top, trips=10\n",
        );
        let d = diags
            .iter()
            .find(|d| d.code == "SA004")
            .expect("SA004 fires");
        assert!(d.message.contains("max 1"), "{}", d.message);
    }

    // ---- SA005 -----------------------------------------------------------

    #[test]
    fn sa005_flags_loop_walking_past_region() {
        // 64 KB stride x 500 trips = 32 MB walked through a 16 KB L1 region.
        let diags =
            lint_src("top:\n load r8, [r0], stride=65536, region=l1\n loop top, trips=500\n");
        assert!(codes(&diags).contains(&"SA005"), "{diags:?}");
    }

    #[test]
    fn sa005_flags_stride_exceeding_region_size() {
        let diags = lint_src("top:\n load r8, [r0], stride=32768, region=l1\n jmp top\n");
        let d = diags
            .iter()
            .find(|d| d.code == "SA005")
            .expect("SA005 fires");
        assert!(d.message.contains("aliases"), "{}", d.message);
    }

    #[test]
    fn sa005_quiet_for_region_resident_strides() {
        let diags = lint_src("top:\n load f8, [r0], stride=8, region=l2\n loop top, trips=200\n");
        assert!(!codes(&diags).contains(&"SA005"), "{diags:?}");
    }

    // ---- generated programs ---------------------------------------------

    #[test]
    fn suite_programs_are_free_of_hard_errors() {
        // The synthetic generator must never produce def-before-use bugs.
        use shelfsim_workload::program::ProgramBuilder;
        for name in shelfsim_workload::suite::names().iter().take(8) {
            let profile = shelfsim_workload::suite::by_name(name).expect("suite profile");
            let p = ProgramBuilder::new(profile, 7).build();
            let diags = lint_program(&p, None);
            assert!(
                !diags.iter().any(|d| d.severity == Severity::Error),
                "{name}: {diags:?}"
            );
        }
    }

    #[test]
    fn spanless_lint_works_without_a_line_map() {
        let p = assemble("top:\n add r10, r9\n loop top, trips=10\n").unwrap();
        let diags = lint_program(&p, None);
        let d = diags
            .iter()
            .find(|d| d.code == "SA001")
            .expect("SA001 fires");
        assert!(d.span.is_none());
    }
}
