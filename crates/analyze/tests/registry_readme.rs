//! The README's lint-code table is generated from the code registry; this
//! test fails when the two drift, printing the expected table.

#[test]
fn readme_lint_code_table_matches_the_registry() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(path).expect("README.md at the workspace root");
    let begin = "<!-- lint-codes:begin -->";
    let end = "<!-- lint-codes:end -->";
    let start = readme.find(begin).expect("README has the begin marker") + begin.len();
    let stop = readme.find(end).expect("README has the end marker");
    assert!(start <= stop, "markers out of order");
    let actual = readme[start..stop].trim();
    let expected = shelfsim_analyze::render_code_table();
    assert_eq!(
        actual,
        expected.trim(),
        "README lint-code table drifted from the registry; replace the \
         marker block with:\n{expected}"
    );
}
