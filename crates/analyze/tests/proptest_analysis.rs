//! Property tests of the static-analysis framework: every generator-built
//! suite program is valid by construction, so the lints must find no
//! errors, the dataflow passes must converge, and the IPC bounds must be
//! finite, positive, and no looser than the core width. Every shipped
//! design point must be config-lint-clean at every evaluated thread count.

use proptest::prelude::*;
use shelfsim_analyze::{
    check_adequacy, design_by_name, ipc_bound, lint_config, lint_program, Cfg, DefUse,
    ReachingDefs, Severity, DESIGN_NAMES,
};
use shelfsim_workload::suite;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn generated_suite_programs_analyze_clean(bench in 0usize..28, seed in 0u64..10_000) {
        let profile = &suite::all()[bench];
        let program = profile.build_program(seed);

        // Lints: generator output is valid by construction, so any
        // error-severity finding is a bug in the linter or the generator.
        let errors: Vec<_> = lint_program(&program, None)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "{}/{seed}: {errors:?}", profile.name);

        // Dataflow: the worklist engine must converge quickly and the
        // def-use chains must only ever point at real sites.
        let cfg = Cfg::new(&program);
        let reaching = ReachingDefs::new(&program).solve(&cfg);
        prop_assert!(reaching.passes <= 4 * program.blocks.len() + 8);
        let du = DefUse::build(&program, &cfg);
        for (def, uses) in du.uses_of_def.iter().enumerate() {
            prop_assert!(def < du.defs.len());
            for &u in uses {
                prop_assert!(u < du.uses.len());
            }
        }

        // Bounds: sound means finite, positive, and never above the width.
        let core = design_by_name("base64", 1).expect("known design");
        let bound = ipc_bound(&program, &core);
        prop_assert!(bound.bound.is_finite() && bound.bound > 0.0);
        prop_assert!(bound.bound <= bound.width + 1e-9);

        // Adequacy: the standard design must be provably deadlock-free on
        // every generated program.
        let adequacy_errors: Vec<_> = check_adequacy(&program, &core, None)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(
            adequacy_errors.is_empty(),
            "{}/{seed}: {adequacy_errors:?}",
            profile.name
        );
    }
}

/// Every shipped design point is config-lint-clean at every thread count
/// the paper evaluates.
#[test]
fn every_design_is_lint_clean_at_every_thread_count() {
    for name in DESIGN_NAMES {
        for threads in 1..=8 {
            let cfg = design_by_name(name, threads).expect("listed design resolves");
            let errors: Vec<_> = lint_config(&cfg)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{name}/{threads}: {errors:?}");
        }
    }
}
