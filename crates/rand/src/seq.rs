//! Sequence-related extensions (the shim only provides
//! [`SliceRandom::shuffle`]).

use crate::RngCore;

/// Extension trait for slices: in-place Fisher–Yates shuffle.
pub trait SliceRandom {
    /// Shuffles the slice in place, uniformly over permutations.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
