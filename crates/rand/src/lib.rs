//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this minimal, dependency-free implementation of the
//! exact API surface shelfsim uses: `SmallRng` (xoshiro256++ seeded through
//! SplitMix64), the `Rng`/`SeedableRng` traits with `gen`, `gen_range`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The streams are deterministic in the seed — which is all the simulator
//! requires — but do **not** bit-match the real `rand` crate. Every
//! experiment in this repository is therefore reproducible against this
//! shim, not against upstream `rand`.

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform `bool`, full-range integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard distribution of a type (the shim's stand-in for
/// `Distribution<T> for Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from a bounded interval (the shim's
/// stand-in for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }

    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// A range that can be sampled uniformly (the shim's stand-in for
/// `rand::distributions::uniform::SampleRange`).
///
/// Implemented once over all [`SampleUniform`] types — a single generic impl
/// is what lets integer-literal ranges infer their type from the use site,
/// exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u8..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&c));
            let d = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }
}
