//! Dynamic instruction representation consumed by the core model.

use crate::op::OpClass;
use crate::reg::ArchReg;

/// Memory access information attached to loads and stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemInfo {
    /// Virtual byte address of the access.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
}

impl MemInfo {
    /// Creates memory info for an access of `size` bytes at `addr`.
    pub fn new(addr: u64, size: u8) -> Self {
        MemInfo { addr, size }
    }

    /// Returns `true` if the two accesses overlap in memory.
    ///
    /// The load/store queues use this for forwarding and ordering checks.
    #[inline]
    pub fn overlaps(&self, other: &MemInfo) -> bool {
        let a_end = self.addr + self.size as u64;
        let b_end = other.addr + other.size as u64;
        self.addr < b_end && other.addr < a_end
    }
}

/// Control-flow information attached to branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BranchInfo {
    /// Whether the branch is actually taken in this dynamic instance.
    pub taken: bool,
    /// The actual next PC (fall-through or target).
    pub next_pc: u64,
    /// Whether the branch is a function return (uses the RAS).
    pub is_return: bool,
    /// Whether the branch is a call (pushes the RAS).
    pub is_call: bool,
}

/// A decoded dynamic instruction.
///
/// This is what the workload generator emits and the pipeline consumes. The
/// simulator is timing-only: no data values are tracked, but memory addresses
/// and branch outcomes are exact so that the LSQ, caches, and branch
/// predictor behave faithfully.
///
/// # Example
///
/// ```
/// use shelfsim_isa::{ArchReg, DynInst, MemInfo, OpClass};
///
/// let ld = DynInst::load(ArchReg::int(1), ArchReg::int(2), MemInfo::new(0x1000, 8));
/// assert!(ld.is_load());
/// assert_eq!(ld.mem.unwrap().addr, 0x1000);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DynInst {
    /// Static instruction address (used by the branch predictor and for
    /// replay after memory-order violations).
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the instruction writes one.
    pub dest: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Memory access info for loads/stores.
    pub mem: Option<MemInfo>,
    /// Branch info for branches.
    pub branch: Option<BranchInfo>,
}

impl DynInst {
    /// Creates a register-to-register arithmetic instruction.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class, or more than two sources
    /// are supplied.
    pub fn alu(op: OpClass, dest: ArchReg, srcs: &[ArchReg]) -> Self {
        assert!(
            !op.is_mem() && op != OpClass::Branch,
            "use load/store/branch constructors"
        );
        assert!(srcs.len() <= 2, "at most two source registers");
        let mut s = [None; 2];
        for (slot, &r) in s.iter_mut().zip(srcs) {
            *slot = Some(r);
        }
        DynInst {
            pc: 0,
            op,
            dest: Some(dest),
            srcs: s,
            mem: None,
            branch: None,
        }
    }

    /// Creates a load of `mem` into `dest`, with `base` as the address source.
    pub fn load(dest: ArchReg, base: ArchReg, mem: MemInfo) -> Self {
        DynInst {
            pc: 0,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [Some(base), None],
            mem: Some(mem),
            branch: None,
        }
    }

    /// Creates a store of `data` to `mem`, with `base` as the address source.
    pub fn store(data: ArchReg, base: ArchReg, mem: MemInfo) -> Self {
        DynInst {
            pc: 0,
            op: OpClass::Store,
            dest: None,
            srcs: [Some(base), Some(data)],
            mem: Some(mem),
            branch: None,
        }
    }

    /// Creates a conditional branch reading `cond`.
    pub fn branch(cond: Option<ArchReg>, info: BranchInfo) -> Self {
        DynInst {
            pc: 0,
            op: OpClass::Branch,
            dest: None,
            srcs: [cond, None],
            mem: None,
            branch: Some(info),
        }
    }

    /// Creates a memory barrier.
    pub fn barrier() -> Self {
        DynInst {
            pc: 0,
            op: OpClass::MemBarrier,
            dest: None,
            srcs: [None, None],
            mem: None,
            branch: None,
        }
    }

    /// Sets the static PC (builder-style).
    pub fn at(mut self, pc: u64) -> Self {
        self.pc = pc;
        self
    }

    /// Returns `true` for loads.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.op == OpClass::Load
    }

    /// Returns `true` for stores.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.op == OpClass::Store
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }

    /// Returns `true` for branches.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.op == OpClass::Branch
    }

    /// Iterates over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Number of present source registers.
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_overlap_detection() {
        let a = MemInfo::new(0x100, 8);
        let b = MemInfo::new(0x104, 4);
        let c = MemInfo::new(0x108, 8);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&MemInfo::new(0x107, 1)));
        assert!(!b.overlaps(&MemInfo::new(0x103, 1)));
    }

    #[test]
    fn alu_constructor_sets_sources() {
        let i = DynInst::alu(OpClass::IntMul, ArchReg::int(4), &[ArchReg::int(1)]);
        assert_eq!(i.num_sources(), 1);
        assert_eq!(i.dest, Some(ArchReg::int(4)));
        assert_eq!(i.sources().next(), Some(ArchReg::int(1)));
    }

    #[test]
    #[should_panic(expected = "constructors")]
    fn alu_rejects_mem_class() {
        let _ = DynInst::alu(OpClass::Load, ArchReg::int(0), &[]);
    }

    #[test]
    fn store_has_no_dest() {
        let s = DynInst::store(ArchReg::int(1), ArchReg::int(2), MemInfo::new(0, 4));
        assert!(s.dest.is_none());
        assert!(s.is_store());
        assert_eq!(s.num_sources(), 2);
    }

    #[test]
    fn branch_carries_outcome() {
        let b = DynInst::branch(
            Some(ArchReg::int(7)),
            BranchInfo {
                taken: true,
                next_pc: 0x40,
                is_return: false,
                is_call: false,
            },
        );
        assert!(b.is_branch());
        assert!(b.branch.unwrap().taken);
    }

    #[test]
    fn at_sets_pc() {
        let i = DynInst::barrier().at(0x123);
        assert_eq!(i.pc, 0x123);
    }
}
