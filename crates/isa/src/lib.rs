//! Instruction-set model for the `shelfsim` SMT out-of-order core simulator.
//!
//! The paper evaluates ARMv7 binaries; we substitute a compact RISC-like
//! abstract ISA that captures everything the microarchitecture cares about:
//! operation class (which functional unit and latency), up to two source
//! registers, an optional destination register, memory addresses for loads
//! and stores, and branch outcomes.
//!
//! # Example
//!
//! ```
//! use shelfsim_isa::{ArchReg, DynInst, OpClass};
//!
//! let add = DynInst::alu(OpClass::IntAlu, ArchReg::int(3), &[ArchReg::int(1), ArchReg::int(2)]);
//! assert_eq!(add.op.latency(), 1);
//! assert!(!add.is_mem());
//! ```

pub mod inst;
pub mod op;
pub mod reg;

pub use inst::{BranchInfo, DynInst, MemInfo};
pub use op::{FuKind, OpClass};
pub use reg::{ArchReg, ThreadId, NUM_ARCH_REGS};
