//! Architectural register and hardware-thread identifiers.

use std::fmt;

/// Number of integer architectural registers per thread.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers per thread.
pub const NUM_FP_REGS: u8 = 32;
/// Total architectural registers per thread (integer + floating point).
///
/// The rename stage, the Ready Cycle Table, and the Parent Loads Table are
/// all indexed by this flat space.
pub const NUM_ARCH_REGS: usize = (NUM_INT_REGS + NUM_FP_REGS) as usize;

/// An architectural (logical) register identifier.
///
/// Registers `0..32` are the integer file, `32..64` the floating-point file.
/// The distinction only matters to the workload generator (FP ops read/write
/// FP registers); the rename machinery treats the space uniformly, exactly as
/// a merged-RAT design would.
///
/// # Example
///
/// ```
/// use shelfsim_isa::ArchReg;
/// let r = ArchReg::int(5);
/// let f = ArchReg::fp(5);
/// assert_ne!(r, f);
/// assert_eq!(r.index(), 5);
/// assert_eq!(f.index(), 37);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an integer register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn int(n: u8) -> Self {
        assert!(n < NUM_INT_REGS, "integer register {n} out of range");
        ArchReg(n)
    }

    /// Creates a floating-point register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn fp(n: u8) -> Self {
        assert!(n < NUM_FP_REGS, "fp register {n} out of range");
        ArchReg(NUM_INT_REGS + n)
    }

    /// Creates a register from a flat index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(index < NUM_ARCH_REGS, "register index {index} out of range");
        ArchReg(index as u8)
    }

    /// Flat index into the per-thread architectural register space.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is a floating-point register.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - NUM_INT_REGS)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A hardware-thread (SMT context) identifier within one core.
///
/// The evaluated designs use 1, 2, 4, or 8 contexts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Flat index for use in per-thread arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u8> for ThreadId {
    fn from(v: u8) -> Self {
        ThreadId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_spaces_are_disjoint() {
        for n in 0..NUM_INT_REGS {
            assert!(!ArchReg::int(n).is_fp());
        }
        for n in 0..NUM_FP_REGS {
            assert!(ArchReg::fp(n).is_fp());
        }
    }

    #[test]
    fn flat_index_round_trips() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(ArchReg::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_out_of_range_panics() {
        let _ = ArchReg::from_index(NUM_ARCH_REGS);
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(ArchReg::fp(1).to_string(), "f1");
        assert_eq!(ArchReg::int(9).to_string(), "r9");
    }
}
