//! Operation classes, functional-unit kinds, execution latencies, and
//! speculation resolution delays.

use std::fmt;

/// The operation class of an instruction.
///
/// Classes determine which functional unit executes the instruction, its
/// execution latency, and its speculation resolution delay (the number of
/// cycles after issue until the instruction can no longer squash younger
/// instructions — used by the speculation shift registers of paper §III-B).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpClass {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// Memory barrier; synchronizes the pipeline at dispatch (paper §III-D).
    MemBarrier,
}

impl OpClass {
    /// All operation classes, for exhaustive iteration in tests and the
    /// energy model.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::MemBarrier,
    ];

    /// Fixed execution latency in cycles, excluding memory access time.
    ///
    /// Loads take `latency()` cycles of address generation plus the cache
    /// access; the paper's minimum 2-cycle load-to-use for L1 hits is modeled
    /// in the memory pipeline, not here.
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 12,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 16,
            OpClass::Load => 1,  // address generation; cache adds more
            OpClass::Store => 1, // address generation
            OpClass::Branch => 1,
            OpClass::MemBarrier => 1,
        }
    }

    /// Speculation resolution delay in cycles after issue (paper §III-B).
    ///
    /// This is the bounded, pipeline-determined number of cycles until the
    /// instruction can no longer cause younger instructions to be squashed:
    /// branches resolve at execute; loads and stores resolve once their
    /// address has been generated and checked against the load/store queues
    /// (under the relaxed memory model of §III-D the window does not extend
    /// to the full miss latency); arithmetic never squashes in our ISA.
    #[inline]
    pub fn resolution_delay(self) -> u32 {
        match self {
            OpClass::Branch => 2,
            // Loads resolve once the address/fault check completes; stores
            // once their address scans the load queue (both at execute+1).
            // Under the relaxed model neither extends to the miss latency.
            OpClass::Load => 2,
            OpClass::Store => 2,
            OpClass::IntDiv | OpClass::FpDiv => 2, // divide-by-zero trap point
            _ => 1,
        }
    }

    /// The functional-unit pool that executes this class.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::MemBarrier => FuKind::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => FuKind::Fp,
            OpClass::Load | OpClass::Store => FuKind::MemPort,
        }
    }

    /// Whether this class reads or writes memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the functional unit is pipelined (can accept a new operation
    /// every cycle). Divides are unpipelined, matching typical cores.
    #[inline]
    pub fn pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::IntDiv => "int_div",
            OpClass::FpAlu => "fp_alu",
            OpClass::FpMul => "fp_mul",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::MemBarrier => "barrier",
        };
        f.write_str(s)
    }
}

/// A functional-unit pool kind.
///
/// The core has a fixed number of units of each kind; the issue stage
/// enforces the structural limit (paper §II: structural dependences).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FuKind {
    /// Simple integer ALUs; also execute branches and barriers.
    IntAlu,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Floating-point units.
    Fp,
    /// Memory address-generation / cache ports.
    MemPort,
}

impl FuKind {
    /// All functional-unit kinds.
    pub const ALL: [FuKind; 4] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::Fp,
        FuKind::MemPort,
    ];

    /// Flat index for per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::Fp => 2,
            FuKind::MemPort => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_positive() {
        for op in OpClass::ALL {
            assert!(op.latency() >= 1, "{op} must have at least 1 cycle latency");
        }
    }

    #[test]
    fn resolution_delays_are_positive() {
        for op in OpClass::ALL {
            assert!(op.resolution_delay() >= 1);
        }
    }

    #[test]
    fn divide_latency_dominates() {
        assert!(OpClass::IntDiv.latency() > OpClass::IntMul.latency());
        assert!(OpClass::FpDiv.latency() > OpClass::FpMul.latency());
    }

    #[test]
    fn mem_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(!OpClass::MemBarrier.is_mem());
    }

    #[test]
    fn fu_kind_mapping_is_total() {
        for op in OpClass::ALL {
            let k = op.fu_kind();
            assert!(FuKind::ALL.contains(&k));
            assert!(k.index() < FuKind::ALL.len());
        }
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!OpClass::IntDiv.pipelined());
        assert!(!OpClass::FpDiv.pipelined());
        assert!(OpClass::IntAlu.pipelined());
        assert!(OpClass::Load.pipelined());
    }

    #[test]
    fn fu_indices_are_unique() {
        let mut seen = [false; 4];
        for k in FuKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
    }
}
