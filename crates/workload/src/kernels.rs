//! A library of classic microbenchmark kernels, authored in the
//! [`crate::asm`] DSL.
//!
//! These are the directed workloads architects reach for when probing a
//! design: streaming (STREAM triad / daxpy), reductions, pointer chasing,
//! store-to-load forwarding chains, branchy search loops, and mixed
//! latency/ILP kernels. Each kernel is an infinite loop suitable for the
//! fixed-window measurement methodology.
//!
//! # Example
//!
//! ```
//! use shelfsim_workload::kernels;
//!
//! let k = kernels::by_name("triad").expect("in library");
//! let program = k.assemble().expect("library kernels always assemble");
//! assert!(program.footprint() > 3);
//! ```

use crate::asm::{assemble, AsmError};
use crate::program::Program;

/// A named kernel with its DSL source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// Registry name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// DSL source (see [`crate::asm`]).
    pub source: &'static str,
}

impl Kernel {
    /// Assembles the kernel into a runnable [`Program`].
    ///
    /// # Errors
    ///
    /// Library kernels are validated by the test suite, so this only fails
    /// if a kernel was modified incorrectly.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        assemble(self.source)
    }
}

/// The kernel registry.
pub const KERNELS: [Kernel; 8] = [
    Kernel {
        name: "daxpy",
        description: "y[i] = a*x[i] + y[i] over L2-resident arrays",
        source: "\
top:
    load  f8, [r0], stride=8, region=l2
    fmul  f9, f8, f0
    load  f10, [r1], stride=8, region=l2
    fadd  f11, f9, f10
    store [r1], f11, stride=8, region=l2
    loop  top, trips=200
",
    },
    Kernel {
        name: "triad",
        description: "STREAM triad: a[i] = b[i] + s*c[i], memory-bound",
        source: "\
top:
    load  f8, [r0], stride=8, region=mem
    fmul  f9, f8, f0
    load  f10, [r1], stride=8, region=mem
    fadd  f11, f9, f10
    store [r2], f11, stride=8, region=mem
    loop  top, trips=400
",
    },
    Kernel {
        name: "reduce",
        description: "serial floating-point reduction (latency-bound chain)",
        source: "\
top:
    load  f8, [r0], stride=8, region=l1
    fadd  f9, f9, f8
    loop  top, trips=300
",
    },
    Kernel {
        name: "chase",
        description: "serialized pointer chase over a memory-bound region",
        source: "\
top:
    load  r24, [r24], chase, region=mem
    add   r8, r8
    loop  top, trips=500
",
    },
    Kernel {
        name: "chase2",
        description: "two independent pointer chases (MLP = 2)",
        source: "\
top:
    load  r24, [r24], chase, region=mem
    load  r25, [r25], chase, region=mem
    add   r8, r8
    loop  top, trips=500
",
    },
    Kernel {
        name: "forward",
        description: "store-to-load forwarding through one cell",
        source: "\
top:
    add   r9, r10
    store [r0], r9, stride=0, region=l1
    load  r10, [r0], stride=0, region=l1
    loop  top, trips=300
",
    },
    Kernel {
        name: "branchy",
        description: "data-dependent branches over cached data (search-like)",
        source: "\
top:
    load  r8, [r0], stride=8, region=l1
    add   r9, r8
    beq   r9, skip, p=0.4
    mul   r10, r9, r1
    add   r11, r10
skip:
    add   r12, r12
    loop  top, trips=50
",
    },
    Kernel {
        name: "mixed",
        description: "latency chain + wide independent ILP (hybrid-window showcase)",
        source: "\
top:
    load  r24, [r24], chase, region=l2
    add   r8, r24
    add   r9, r8
    add   r10, r9
    fadd  f8, f8, f0
    fadd  f9, f9, f1
    add   r12, r12
    add   r13, r13
    mul   r14, r12, r13
    loop  top, trips=400
",
    },
];

/// All kernels.
pub fn all() -> &'static [Kernel] {
    &KERNELS
}

/// Looks a kernel up by name.
pub fn by_name(name: &str) -> Option<&'static Kernel> {
    KERNELS.iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSource;

    #[test]
    fn every_kernel_assembles_and_runs() {
        for k in all() {
            let program = k.assemble().unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let mut t = TraceSource::new(program, 0);
            for _ in 0..2_000 {
                let _ = t.fetch();
            }
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let mut names: Vec<_> = all().iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KERNELS.len());
        assert_eq!(by_name("triad").map(|k| k.name), Some("triad"));
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn chase_kernels_differ_in_parallelism() {
        // chase2 has two independent chains — the trace must show two
        // distinct self-dependent chase registers.
        let p = by_name("chase2")
            .expect("exists")
            .assemble()
            .expect("valid");
        let chases: Vec<_> = p.blocks[0]
            .body
            .iter()
            .filter(|i| {
                i.op == shelfsim_isa::OpClass::Load && i.srcs[0] == i.dest.map(Some).unwrap_or(None)
            })
            .collect();
        assert_eq!(chases.len(), 2);
        assert_ne!(chases[0].dest, chases[1].dest);
    }

    #[test]
    fn branchy_kernel_branches_unpredictably() {
        let p = by_name("branchy")
            .expect("exists")
            .assemble()
            .expect("valid");
        let has_hard_branch = p.blocks.iter().any(|b| {
            matches!(
                b.terminator,
                crate::program::Terminator::Cond { taken_prob, .. }
                    if (0.2..=0.8).contains(&taken_prob)
            )
        });
        assert!(has_hard_branch);
    }
}
