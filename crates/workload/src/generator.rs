//! Functional execution of a [`Program`] into a dynamic instruction stream,
//! with bounded replay for squash-and-refetch.

use crate::program::{AccessPattern, Program, Terminator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use shelfsim_isa::{BranchInfo, DynInst, MemInfo, OpClass};
use std::collections::VecDeque;

/// Base virtual address of a program's data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Replay window: must exceed the deepest possible in-flight state
/// (ROB + shelf + front end + execution pipes).
const REPLAY_CAPACITY: usize = 8192;

/// A per-thread dynamic instruction source.
///
/// `TraceSource` walks the program's control-flow graph, drawing loop trip
/// counts and data-dependent branch outcomes from a seeded RNG, and
/// materializing memory addresses from each static instruction's access
/// pattern. Every emitted instruction is retained in a bounded replay buffer
/// so the core can *rewind* after a memory-order violation or memory
/// dependence mispredict (paper §III-D: "cause a pipeline flush and restart
/// at the mispredicted instruction") and receive byte-identical
/// instructions.
///
/// All code and data addresses are offset by a per-thread base so SMT
/// threads, like the paper's multiprogrammed mixes, share no data.
#[derive(Clone, Debug)]
pub struct TraceSource {
    program: Program,
    thread_base: u64,
    // CFG walk state.
    block: usize,
    slot: usize,
    loop_remaining: Vec<Option<u32>>,
    call_stack: Vec<usize>,
    // Per-static-instruction address state.
    stride_counters: Vec<u64>,
    chase_state: Vec<u64>,
    rng: SmallRng,
    // Stream state.
    next_seq: u64,
    buffer: VecDeque<(u64, DynInst)>,
    /// When set, the next fetch replays from the buffer at this sequence.
    cursor: Option<u64>,
}

impl TraceSource {
    /// Creates a source for `program` running as SMT context `thread_index`.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::validate`] (hand-built
    /// programs with out-of-range targets or inconsistent layout would
    /// otherwise fail deep inside the simulator).
    pub fn new(program: Program, thread_index: usize) -> Self {
        if let Err(e) = program.validate() {
            panic!("invalid program `{}`: {e}", program.name);
        }
        let n = program.num_statics as usize;
        let nb = program.blocks.len();
        let seed = program.seed ^ ((thread_index as u64) << 17) ^ 0xC0FFEE;
        TraceSource {
            // Threads live in disjoint address spaces (bit 36+) and are
            // additionally offset by a per-thread "page color" so their hot
            // blocks do not all collide in the same cache sets — as with
            // distinct physical mappings on a real OS.
            thread_base: ((thread_index as u64) << 36) + thread_index as u64 * 0x19_F040,
            block: 0,
            slot: 0,
            loop_remaining: vec![None; nb],
            call_stack: Vec::new(),
            stride_counters: vec![0; n],
            chase_state: (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
            rng: SmallRng::seed_from_u64(seed),
            next_seq: 0,
            buffer: VecDeque::with_capacity(REPLAY_CAPACITY),
            cursor: None,
            program,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The code address range `[start, end)` of this thread's program, for
    /// explicit cache warming (the stand-in for the paper's 100M-instruction
    /// warm-up).
    pub fn code_range(&self) -> (u64, u64) {
        let start = self.program.blocks[0].start_pc + self.thread_base;
        let last = self.program.blocks.len() - 1;
        let end = self.program.fallthrough_pc(last) + self.thread_base;
        (start, end)
    }

    /// The data region address ranges `[start, end)` of this thread, from
    /// smallest (L1-resident) to largest (memory-bound).
    pub fn data_region_ranges(&self) -> [(u64, u64); 3] {
        use crate::program::Region;
        [Region::L1, Region::L2, Region::Mem].map(|r| {
            let start = DATA_BASE + self.thread_base + r.base();
            (start, start + r.size())
        })
    }

    /// Sequence number the next [`TraceSource::fetch`] will return.
    pub fn next_fetch_seq(&self) -> u64 {
        self.cursor.unwrap_or(self.next_seq)
    }

    /// Fetches the next dynamic instruction (replaying after a rewind).
    pub fn fetch(&mut self) -> (u64, DynInst) {
        if let Some(seq) = self.cursor {
            let front = self
                .buffer
                .front()
                .expect("replay cursor points into buffer")
                .0;
            let inst = self.buffer[(seq - front) as usize].1;
            let next = seq + 1;
            self.cursor = if next == self.next_seq {
                None
            } else {
                Some(next)
            };
            return (seq, inst);
        }
        let inst = self.generate();
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.buffer.len() == REPLAY_CAPACITY {
            self.buffer.pop_front();
        }
        self.buffer.push_back((seq, inst));
        (seq, inst)
    }

    /// Rewinds the stream so the next fetch returns sequence `seq` again.
    ///
    /// # Panics
    ///
    /// Panics if `seq` has fallen out of the replay window or has not been
    /// fetched yet.
    pub fn rewind_to(&mut self, seq: u64) {
        assert!(
            seq < self.next_seq,
            "cannot rewind to the future (seq {seq})"
        );
        let front = self
            .buffer
            .front()
            .map(|&(s, _)| s)
            .expect("non-empty replay buffer");
        assert!(
            seq >= front,
            "seq {seq} fell out of the replay window (oldest {front})"
        );
        self.cursor = Some(seq);
    }

    fn generate(&mut self) -> DynInst {
        let block = &self.program.blocks[self.block];
        if self.slot < block.body.len() {
            let s = block.body[self.slot];
            self.slot += 1;
            let mem = s
                .access
                .map(|a| MemInfo::new(self.materialize(a, s.static_id), 8));
            return DynInst {
                pc: s.pc + self.thread_base,
                op: s.op,
                dest: s.dest,
                srcs: s.srcs,
                mem,
                branch: None,
            };
        }
        // Terminator.
        let b = self.block;
        let s = block.branch_inst;
        let term = block.terminator;
        // Fall-through of the last block wraps to block 0 (hand-written
        // kernels may end in a conditional).
        let fallthrough = if b + 1 < self.program.blocks.len() {
            b + 1
        } else {
            0
        };
        let (taken, next, is_call, is_return) = match term {
            Terminator::Loop { target, trip_mean } => {
                let rng = &mut self.rng;
                let rem = self.loop_remaining[b]
                    .get_or_insert_with(|| trip_mean / 2 + rng.gen_range(0..trip_mean.max(1)));
                if *rem > 0 {
                    *rem -= 1;
                    (true, target, false, false)
                } else {
                    self.loop_remaining[b] = None;
                    (false, fallthrough, false, false)
                }
            }
            Terminator::Cond { target, taken_prob } => {
                if self.rng.gen::<f64>() < taken_prob {
                    (true, target, false, false)
                } else {
                    (false, fallthrough, false, false)
                }
            }
            Terminator::Jump { target } => (true, target, false, false),
            Terminator::Call { callee } => {
                self.call_stack.push(b + 1);
                (true, callee, true, false)
            }
            Terminator::Ret => {
                let ret = self.call_stack.pop().unwrap_or(0);
                (true, ret, false, true)
            }
        };
        let next_pc = self.program.blocks[next].start_pc + self.thread_base;
        self.block = next;
        self.slot = 0;
        DynInst {
            pc: s.pc + self.thread_base,
            op: OpClass::Branch,
            dest: None,
            srcs: s.srcs,
            mem: None,
            branch: Some(BranchInfo {
                taken,
                next_pc,
                is_call,
                is_return,
            }),
        }
    }

    fn materialize(&mut self, access: AccessPattern, static_id: u32) -> u64 {
        let sid = static_id as usize;
        let off = match access {
            AccessPattern::Strided { region, stride } => {
                let c = self.stride_counters[sid];
                self.stride_counters[sid] = c + 1;
                let base = region.base();
                base + (c * stride as u64) % region.size()
            }
            AccessPattern::Random { region } => {
                region.base() + (self.rng.gen_range(0..region.size()) & !7)
            }
            AccessPattern::PointerChase { region } => {
                let state = self.chase_state[sid];
                self.chase_state[sid] =
                    state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xB5);
                // Cache-line-aligned hops across the region.
                region.base() + ((state % region.size()) & !63)
            }
        };
        DATA_BASE + self.thread_base + (off & !7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    fn source(name: &str, thread: usize) -> TraceSource {
        TraceSource::new(suite::by_name(name).unwrap().build_program(11), thread)
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = source("gcc", 0);
        let mut b = source("gcc", 0);
        for _ in 0..5000 {
            assert_eq!(a.fetch(), b.fetch());
        }
    }

    #[test]
    fn threads_have_disjoint_addresses() {
        let mut a = source("gcc", 0);
        let mut b = source("gcc", 1);
        for _ in 0..2000 {
            let (_, ia) = a.fetch();
            let (_, ib) = b.fetch();
            if let (Some(ma), Some(mb)) = (ia.mem, ib.mem) {
                assert_ne!(ma.addr >> 36, mb.addr >> 36);
            }
            assert_ne!(ia.pc >> 36, ib.pc >> 36);
        }
    }

    #[test]
    fn rewind_replays_identically() {
        let mut t = source("mcf", 0);
        let mut first: Vec<(u64, DynInst)> = Vec::new();
        for _ in 0..300 {
            first.push(t.fetch());
        }
        t.rewind_to(100);
        for item in first.iter().skip(100) {
            assert_eq!(t.fetch(), *item);
        }
        // After draining the replay, generation continues seamlessly.
        let (seq, _) = t.fetch();
        assert_eq!(seq, 300);
    }

    #[test]
    fn rewind_twice_is_allowed() {
        let mut t = source("mcf", 0);
        for _ in 0..50 {
            t.fetch();
        }
        t.rewind_to(10);
        t.fetch();
        t.rewind_to(5);
        assert_eq!(t.next_fetch_seq(), 5);
        let (seq, _) = t.fetch();
        assert_eq!(seq, 5);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rewind_to_future_panics() {
        let mut t = source("gcc", 0);
        t.fetch();
        t.rewind_to(5);
    }

    #[test]
    fn branch_outcomes_resolve_to_valid_blocks() {
        let mut t = source("xalancbmk", 0);
        let program = t.program().clone();
        let starts: Vec<u64> = program.blocks.iter().map(|b| b.start_pc).collect();
        for _ in 0..20_000 {
            let (_, inst) = t.fetch();
            if let Some(br) = inst.branch {
                if br.taken || !starts.contains(&(br.next_pc)) {
                    assert!(
                        starts.contains(&br.next_pc),
                        "taken branch must land on a block start, got {:#x}",
                        br.next_pc
                    );
                }
            }
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let mut t = source("gcc", 0);
        let profile = suite::by_name("gcc").unwrap();
        let n = 50_000;
        let (mut loads, mut stores, mut branches) = (0, 0, 0);
        for _ in 0..n {
            let (_, i) = t.fetch();
            match i.op {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let sf = stores as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!((lf - profile.frac_load).abs() < 0.08, "load fraction {lf}");
        assert!(
            (sf - profile.frac_store).abs() < 0.06,
            "store fraction {sf}"
        );
        assert!(
            (bf - profile.frac_branch).abs() < 0.08,
            "branch fraction {bf}"
        );
    }

    #[test]
    fn pointer_chase_addresses_are_serialized_through_registers() {
        let mut t = source("mcf", 0);
        let mut found = false;
        for _ in 0..5000 {
            let (_, i) = t.fetch();
            if i.is_load() && i.dest.is_some() && i.srcs[0] == i.dest.map(Some).unwrap_or(None) {
                found = true;
                break;
            }
        }
        assert!(found, "mcf must emit self-dependent chase loads");
    }

    #[test]
    fn calls_and_returns_balance() {
        let mut t = source("gcc", 0);
        let mut depth: i64 = 0;
        let mut calls = 0;
        for _ in 0..100_000 {
            let (_, i) = t.fetch();
            if let Some(b) = i.branch {
                if b.is_call {
                    depth += 1;
                    calls += 1;
                }
                if b.is_return {
                    depth -= 1;
                }
                assert!(depth >= 0, "return without call");
                assert!(depth <= 64, "unbounded call depth");
            }
        }
        assert!(calls > 0, "gcc profile should exercise calls");
    }
}
