//! The 28-benchmark synthetic suite (SPEC CPU2006 analogues).
//!
//! The paper runs all of SPEC CPU2006 except dealII — 28 benchmarks. Each
//! profile below approximates the published microarchitectural character of
//! its namesake (instruction mix, working-set pressure, branch behaviour);
//! see `DESIGN.md` §1 for the substitution rationale. The absolute numbers
//! are behavioural targets, not measurements of SPEC binaries.

use crate::profile::BenchmarkProfile;

macro_rules! profile {
    ($name:literal, ld=$ld:literal, st=$st:literal, br=$br:literal, fp=$fp:literal,
     md=$md:literal, chain=$chain:literal, l1=$l1:literal, l2=$l2:literal,
     chase=$chase:literal, ent=$ent:literal, code=$code:literal, trip=$trip:literal) => {
        BenchmarkProfile {
            name: $name,
            frac_load: $ld,
            frac_store: $st,
            frac_branch: $br,
            frac_fp: $fp,
            frac_muldiv: $md,
            chain_density: $chain,
            mem_l1_frac: $l1,
            mem_l2_frac: $l2,
            pointer_chase: $chase,
            branch_entropy: $ent,
            code_footprint: $code,
            mean_trip_count: $trip,
        }
    };
}

/// The full suite, in a fixed canonical order.
pub const SUITE: [BenchmarkProfile; 28] = [
    // ---- SPECint 2006 analogues ----
    profile!(
        "perlbench",
        ld = 0.26,
        st = 0.12,
        br = 0.21,
        fp = 0.00,
        md = 0.04,
        chain = 0.55,
        l1 = 0.92,
        l2 = 0.07,
        chase = 0.06,
        ent = 0.12,
        code = 9000,
        trip = 12
    ),
    profile!(
        "bzip2",
        ld = 0.28,
        st = 0.09,
        br = 0.15,
        fp = 0.00,
        md = 0.05,
        chain = 0.60,
        l1 = 0.70,
        l2 = 0.28,
        chase = 0.02,
        ent = 0.15,
        code = 1500,
        trip = 40
    ),
    profile!(
        "gcc",
        ld = 0.25,
        st = 0.13,
        br = 0.20,
        fp = 0.00,
        md = 0.03,
        chain = 0.50,
        l1 = 0.80,
        l2 = 0.15,
        chase = 0.10,
        ent = 0.14,
        code = 12000,
        trip = 8
    ),
    profile!(
        "mcf",
        ld = 0.31,
        st = 0.09,
        br = 0.19,
        fp = 0.00,
        md = 0.02,
        chain = 0.70,
        l1 = 0.35,
        l2 = 0.25,
        chase = 0.45,
        ent = 0.17,
        code = 800,
        trip = 15
    ),
    profile!(
        "gobmk",
        ld = 0.24,
        st = 0.11,
        br = 0.21,
        fp = 0.00,
        md = 0.04,
        chain = 0.52,
        l1 = 0.88,
        l2 = 0.10,
        chase = 0.05,
        ent = 0.19,
        code = 8000,
        trip = 6
    ),
    profile!(
        "hmmer",
        ld = 0.28,
        st = 0.11,
        br = 0.08,
        fp = 0.00,
        md = 0.10,
        chain = 0.35,
        l1 = 0.95,
        l2 = 0.05,
        chase = 0.00,
        ent = 0.03,
        code = 900,
        trip = 60
    ),
    profile!(
        "sjeng",
        ld = 0.21,
        st = 0.08,
        br = 0.22,
        fp = 0.00,
        md = 0.05,
        chain = 0.55,
        l1 = 0.85,
        l2 = 0.12,
        chase = 0.08,
        ent = 0.20,
        code = 4000,
        trip = 5
    ),
    profile!(
        "libquantum",
        ld = 0.24,
        st = 0.06,
        br = 0.14,
        fp = 0.00,
        md = 0.12,
        chain = 0.30,
        l1 = 0.10,
        l2 = 0.20,
        chase = 0.00,
        ent = 0.02,
        code = 400,
        trip = 120
    ),
    profile!(
        "h264ref",
        ld = 0.35,
        st = 0.13,
        br = 0.08,
        fp = 0.00,
        md = 0.12,
        chain = 0.40,
        l1 = 0.90,
        l2 = 0.09,
        chase = 0.00,
        ent = 0.05,
        code = 5000,
        trip = 30
    ),
    profile!(
        "omnetpp",
        ld = 0.30,
        st = 0.16,
        br = 0.20,
        fp = 0.00,
        md = 0.03,
        chain = 0.62,
        l1 = 0.55,
        l2 = 0.25,
        chase = 0.30,
        ent = 0.15,
        code = 7000,
        trip = 7
    ),
    profile!(
        "astar",
        ld = 0.28,
        st = 0.08,
        br = 0.17,
        fp = 0.00,
        md = 0.03,
        chain = 0.68,
        l1 = 0.60,
        l2 = 0.30,
        chase = 0.25,
        ent = 0.17,
        code = 1200,
        trip = 10
    ),
    profile!(
        "xalancbmk",
        ld = 0.29,
        st = 0.09,
        br = 0.23,
        fp = 0.00,
        md = 0.02,
        chain = 0.55,
        l1 = 0.70,
        l2 = 0.22,
        chase = 0.18,
        ent = 0.12,
        code = 11000,
        trip = 6
    ),
    // ---- SPECfp 2006 analogues ----
    profile!(
        "bwaves",
        ld = 0.40,
        st = 0.09,
        br = 0.04,
        fp = 0.85,
        md = 0.20,
        chain = 0.30,
        l1 = 0.30,
        l2 = 0.40,
        chase = 0.00,
        ent = 0.02,
        code = 700,
        trip = 200
    ),
    profile!(
        "gamess",
        ld = 0.30,
        st = 0.10,
        br = 0.08,
        fp = 0.70,
        md = 0.18,
        chain = 0.42,
        l1 = 0.92,
        l2 = 0.07,
        chase = 0.00,
        ent = 0.03,
        code = 6000,
        trip = 25
    ),
    profile!(
        "milc",
        ld = 0.33,
        st = 0.13,
        br = 0.03,
        fp = 0.80,
        md = 0.22,
        chain = 0.38,
        l1 = 0.20,
        l2 = 0.30,
        chase = 0.00,
        ent = 0.02,
        code = 1000,
        trip = 90
    ),
    profile!(
        "zeusmp",
        ld = 0.30,
        st = 0.11,
        br = 0.04,
        fp = 0.78,
        md = 0.18,
        chain = 0.36,
        l1 = 0.45,
        l2 = 0.35,
        chase = 0.00,
        ent = 0.02,
        code = 1800,
        trip = 80
    ),
    profile!(
        "gromacs",
        ld = 0.29,
        st = 0.11,
        br = 0.05,
        fp = 0.72,
        md = 0.20,
        chain = 0.45,
        l1 = 0.85,
        l2 = 0.12,
        chase = 0.00,
        ent = 0.04,
        code = 2500,
        trip = 50
    ),
    profile!(
        "cactusADM",
        ld = 0.36,
        st = 0.13,
        br = 0.01,
        fp = 0.88,
        md = 0.25,
        chain = 0.40,
        l1 = 0.40,
        l2 = 0.40,
        chase = 0.00,
        ent = 0.01,
        code = 1400,
        trip = 150
    ),
    profile!(
        "leslie3d",
        ld = 0.34,
        st = 0.12,
        br = 0.03,
        fp = 0.82,
        md = 0.20,
        chain = 0.34,
        l1 = 0.35,
        l2 = 0.40,
        chase = 0.00,
        ent = 0.02,
        code = 1200,
        trip = 120
    ),
    profile!(
        "namd",
        ld = 0.26,
        st = 0.08,
        br = 0.05,
        fp = 0.75,
        md = 0.22,
        chain = 0.44,
        l1 = 0.90,
        l2 = 0.08,
        chase = 0.00,
        ent = 0.03,
        code = 2200,
        trip = 60
    ),
    profile!(
        "soplex",
        ld = 0.31,
        st = 0.08,
        br = 0.16,
        fp = 0.45,
        md = 0.10,
        chain = 0.58,
        l1 = 0.50,
        l2 = 0.30,
        chase = 0.15,
        ent = 0.10,
        code = 4500,
        trip = 12
    ),
    profile!(
        "povray",
        ld = 0.28,
        st = 0.11,
        br = 0.13,
        fp = 0.55,
        md = 0.15,
        chain = 0.52,
        l1 = 0.93,
        l2 = 0.06,
        chase = 0.03,
        ent = 0.09,
        code = 5500,
        trip = 10
    ),
    profile!(
        "calculix",
        ld = 0.29,
        st = 0.10,
        br = 0.06,
        fp = 0.70,
        md = 0.20,
        chain = 0.42,
        l1 = 0.75,
        l2 = 0.20,
        chase = 0.00,
        ent = 0.03,
        code = 3000,
        trip = 45
    ),
    profile!(
        "GemsFDTD",
        ld = 0.38,
        st = 0.13,
        br = 0.02,
        fp = 0.85,
        md = 0.18,
        chain = 0.36,
        l1 = 0.25,
        l2 = 0.35,
        chase = 0.00,
        ent = 0.01,
        code = 1600,
        trip = 160
    ),
    profile!(
        "tonto",
        ld = 0.28,
        st = 0.12,
        br = 0.09,
        fp = 0.65,
        md = 0.16,
        chain = 0.46,
        l1 = 0.88,
        l2 = 0.10,
        chase = 0.02,
        ent = 0.05,
        code = 7000,
        trip = 20
    ),
    profile!(
        "lbm",
        ld = 0.32,
        st = 0.17,
        br = 0.01,
        fp = 0.82,
        md = 0.18,
        chain = 0.32,
        l1 = 0.15,
        l2 = 0.25,
        chase = 0.00,
        ent = 0.01,
        code = 300,
        trip = 250
    ),
    profile!(
        "wrf",
        ld = 0.31,
        st = 0.11,
        br = 0.06,
        fp = 0.75,
        md = 0.18,
        chain = 0.40,
        l1 = 0.60,
        l2 = 0.28,
        chase = 0.00,
        ent = 0.03,
        code = 9000,
        trip = 70
    ),
    profile!(
        "sphinx3",
        ld = 0.33,
        st = 0.07,
        br = 0.10,
        fp = 0.60,
        md = 0.15,
        chain = 0.48,
        l1 = 0.55,
        l2 = 0.30,
        chase = 0.05,
        ent = 0.07,
        code = 2800,
        trip = 35
    ),
];

/// All profiles in canonical order.
pub fn all() -> &'static [BenchmarkProfile] {
    &SUITE
}

/// Looks up a profile by benchmark name.
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    SUITE.iter().find(|p| p.name == name)
}

/// The canonical benchmark names, in suite order.
pub fn names() -> Vec<&'static str> {
    SUITE.iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_28_benchmarks() {
        // The paper: "We have excluded only dealII of the 29 SPEC benchmarks."
        assert_eq!(SUITE.len(), 28);
        assert!(by_name("dealII").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut n = names();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 28);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("mcf").unwrap().name, "mcf");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn suite_spans_memory_behaviours() {
        // At least one memory-bound benchmark (most accesses beyond L2)...
        assert!(SUITE.iter().any(|p| p.mem_l1_frac + p.mem_l2_frac < 0.5));
        // ...and at least one cache-resident benchmark.
        assert!(SUITE.iter().any(|p| p.mem_l1_frac > 0.9));
        // Pointer-chasers and streamers both present.
        assert!(SUITE.iter().any(|p| p.pointer_chase > 0.3));
        assert!(SUITE.iter().any(|p| p.pointer_chase == 0.0));
    }

    #[test]
    fn suite_spans_ilp_behaviours() {
        assert!(
            SUITE.iter().any(|p| p.chain_density < 0.35),
            "high-ILP present"
        );
        assert!(
            SUITE.iter().any(|p| p.chain_density > 0.65),
            "serial code present"
        );
    }

    #[test]
    fn int_and_fp_subsets() {
        let int = SUITE.iter().filter(|p| p.frac_fp == 0.0).count();
        let fp = SUITE.iter().filter(|p| p.frac_fp > 0.0).count();
        assert_eq!(int, 12);
        assert_eq!(fp, 16);
    }
}
