//! A small assembly-like DSL for hand-written kernels.
//!
//! Real simulator users constantly need *directed* microbenchmarks —
//! dependence chains, pointer chases, store-to-load patterns — that the
//! synthetic suite's statistical generator cannot express precisely. This
//! module parses a compact text syntax into a [`Program`] runnable on the
//! simulator:
//!
//! ```text
//! ; a dependent multiply chain with a streaming load
//! loop:
//!     load  r9, [r0], stride=8, region=l1
//!     mul   r8, r8, r9
//!     add   r10, r8
//!     loop  loop, trips=100        ; back-edge, ~100 iterations per entry
//! ```
//!
//! ## Syntax
//!
//! * One instruction per line; `;` starts a comment; blank lines ignored.
//! * `label:` introduces a basic-block label (alone or before an
//!   instruction).
//! * Integer registers `r0`–`r31`, floating-point `f0`–`f31`.
//! * Arithmetic: `add|mul|div|fadd|fmul|fdiv dest[, src[, src]]`.
//! * Memory: `load dest, [base]` and `store [base], data`, with optional
//!   `, stride=N`, `, region=l1|l2|mem`, or `, chase` attributes.
//! * Control: `beq cond_reg, label, p=0.5` (taken with probability),
//!   `loop label, trips=N` (back-edge taken ~N times per entry),
//!   `jmp label`, `call label`, `ret`, `barrier`.
//! * Blocks without explicit control fall through via an implicit `jmp`
//!   (which costs one branch instruction, as on real hardware). The last
//!   block jumps back to the first, making every kernel an infinite loop.

use crate::program::{AccessPattern, Block, Program, Region, StaticInst, Terminator};
use shelfsim_isa::{ArchReg, OpClass};

/// Map from instruction PC to the 1-based source line it was assembled
/// from. Implicit fall-through branches have no source line and are absent.
pub type PcLineMap = std::collections::HashMap<u64, usize>;

/// A parse error with line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

#[derive(Clone, Debug)]
enum Stmt {
    Label(String),
    Body(BodyOp),
    Control(ControlOp),
}

#[derive(Clone, Debug)]
struct BodyOp {
    op: OpClass,
    dest: Option<ArchReg>,
    srcs: Vec<ArchReg>,
    access: Option<AccessPattern>,
}

#[derive(Clone, Debug)]
enum ControlOp {
    Beq {
        cond: ArchReg,
        target: String,
        prob: f64,
    },
    Loop {
        target: String,
        trips: u32,
    },
    Jmp {
        target: String,
    },
    Call {
        target: String,
    },
    Ret,
}

fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, AsmError> {
    let (kind, num) = tok.split_at(1);
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    match kind {
        "r" if n < 32 => Ok(ArchReg::int(n)),
        "f" if n < 32 => Ok(ArchReg::fp(n)),
        _ => Err(err(line, format!("bad register `{tok}` (r0-r31 / f0-f31)"))),
    }
}

fn parse_region(tok: &str, line: usize) -> Result<Region, AsmError> {
    match tok {
        "l1" => Ok(Region::L1),
        "l2" => Ok(Region::L2),
        "mem" => Ok(Region::Mem),
        other => Err(err(line, format!("bad region `{other}` (l1|l2|mem)"))),
    }
}

/// Parses memory attributes: `stride=N`, `region=X`, `chase`.
fn parse_access(attrs: &[&str], line: usize) -> Result<AccessPattern, AsmError> {
    let mut stride = 8u32;
    let mut region = Region::L1;
    let mut chase = false;
    for a in attrs {
        if let Some(v) = a.strip_prefix("stride=") {
            stride = v
                .parse()
                .map_err(|_| err(line, format!("bad stride `{v}`")))?;
        } else if let Some(v) = a.strip_prefix("region=") {
            region = parse_region(v, line)?;
        } else if *a == "chase" {
            chase = true;
        } else {
            return Err(err(line, format!("unknown memory attribute `{a}`")));
        }
    }
    Ok(if chase {
        AccessPattern::PointerChase { region }
    } else {
        AccessPattern::Strided { region, stride }
    })
}

fn parse_line(raw: &str, line: usize) -> Result<Vec<Stmt>, AsmError> {
    let text = raw.split(';').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(vec![]);
    }
    let mut stmts = Vec::new();
    let mut rest = text;
    // Leading `label:` (possibly followed by an instruction).
    if let Some(colon) = rest.find(':') {
        let (label, after) = rest.split_at(colon);
        if label.chars().all(|c| c.is_alphanumeric() || c == '_') && !label.is_empty() {
            stmts.push(Stmt::Label(label.to_owned()));
            rest = after[1..].trim();
            if rest.is_empty() {
                return Ok(stmts);
            }
        }
    }
    let mut parts = rest.split_whitespace();
    let mnemonic = parts.next().expect("non-empty");
    let operand_text: String = parts.collect::<Vec<_>>().join(" ");
    let operands: Vec<&str> = operand_text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();

    let body = |op: OpClass, dest: bool, ops: &[&str]| -> Result<Stmt, AsmError> {
        let mut regs = ops
            .iter()
            .map(|t| parse_reg(t, line))
            .collect::<Result<Vec<_>, _>>()?;
        if regs.is_empty() {
            return Err(err(line, format!("`{mnemonic}` needs operands")));
        }
        let d = if dest { Some(regs.remove(0)) } else { None };
        if regs.len() > 2 {
            return Err(err(line, "at most two source registers"));
        }
        Ok(Stmt::Body(BodyOp {
            op,
            dest: d,
            srcs: regs,
            access: None,
        }))
    };

    let stmt = match mnemonic {
        "add" => body(OpClass::IntAlu, true, &operands)?,
        "mul" => body(OpClass::IntMul, true, &operands)?,
        "div" => body(OpClass::IntDiv, true, &operands)?,
        "fadd" => body(OpClass::FpAlu, true, &operands)?,
        "fmul" => body(OpClass::FpMul, true, &operands)?,
        "fdiv" => body(OpClass::FpDiv, true, &operands)?,
        "barrier" => Stmt::Body(BodyOp {
            op: OpClass::MemBarrier,
            dest: None,
            srcs: vec![],
            access: None,
        }),
        "load" => {
            if operands.len() < 2 {
                return Err(err(line, "load dest, [base], attrs..."));
            }
            let dest = parse_reg(operands[0], line)?;
            let base_tok = operands[1];
            let base = base_tok
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| err(line, format!("expected [base], got `{base_tok}`")))?;
            let base = parse_reg(base, line)?;
            let access = parse_access(&operands[2..], line)?;
            Stmt::Body(BodyOp {
                op: OpClass::Load,
                dest: Some(dest),
                srcs: vec![base],
                access: Some(access),
            })
        }
        "store" => {
            if operands.len() < 2 {
                return Err(err(line, "store [base], data, attrs..."));
            }
            let base = operands[0]
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| err(line, format!("expected [base], got `{}`", operands[0])))?;
            let base = parse_reg(base, line)?;
            let data = parse_reg(operands[1], line)?;
            let access = parse_access(&operands[2..], line)?;
            Stmt::Body(BodyOp {
                op: OpClass::Store,
                dest: None,
                srcs: vec![base, data],
                access: Some(access),
            })
        }
        "beq" => {
            if operands.len() < 2 {
                return Err(err(line, "beq cond, label[, p=P]"));
            }
            let cond = parse_reg(operands[0], line)?;
            let target = operands[1].to_owned();
            let mut prob = 0.5;
            for a in &operands[2..] {
                if let Some(v) = a.strip_prefix("p=") {
                    prob = v
                        .parse()
                        .map_err(|_| err(line, format!("bad probability `{v}`")))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(err(line, "probability must be in [0, 1]"));
                    }
                } else {
                    return Err(err(line, format!("unknown branch attribute `{a}`")));
                }
            }
            Stmt::Control(ControlOp::Beq { cond, target, prob })
        }
        "loop" => {
            if operands.is_empty() {
                return Err(err(line, "loop label[, trips=N]"));
            }
            let target = operands[0].to_owned();
            let mut trips = 10u32;
            for a in &operands[1..] {
                if let Some(v) = a.strip_prefix("trips=") {
                    trips = v
                        .parse()
                        .map_err(|_| err(line, format!("bad trip count `{v}`")))?;
                    if trips < 2 {
                        return Err(err(line, "trips must be at least 2"));
                    }
                } else {
                    return Err(err(line, format!("unknown loop attribute `{a}`")));
                }
            }
            Stmt::Control(ControlOp::Loop { target, trips })
        }
        "jmp" => {
            let target = operands
                .first()
                .ok_or_else(|| err(line, "jmp label"))?
                .to_string();
            Stmt::Control(ControlOp::Jmp { target })
        }
        "call" => {
            let target = operands
                .first()
                .ok_or_else(|| err(line, "call label"))?
                .to_string();
            Stmt::Control(ControlOp::Call { target })
        }
        "ret" => Stmt::Control(ControlOp::Ret),
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    };
    stmts.push(stmt);
    Ok(stmts)
}

/// Assembles `source` into a runnable [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] with a line number for syntax errors, undefined
/// labels, or empty kernels.
///
/// # Example
///
/// ```
/// use shelfsim_workload::asm::assemble;
///
/// let program = assemble(
///     "top:\n  add r8, r8\n  load r9, [r0], region=l1\n  loop top, trips=50\n",
/// ).unwrap();
/// assert_eq!(program.blocks.len(), 1);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_with_lines(source).map(|(p, _)| p)
}

/// Like [`assemble`], but also returns a [`PcLineMap`] locating each
/// instruction's source line — the span information `shelfsim-analyze`
/// attaches to lint diagnostics.
pub fn assemble_with_lines(source: &str) -> Result<(Program, PcLineMap), AsmError> {
    // Pass 1: flatten into labeled groups of (body ops, control op).
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        for s in parse_line(raw, i + 1)? {
            stmts.push((i + 1, s));
        }
    }
    if stmts.is_empty() {
        return Err(err(0, "empty kernel"));
    }

    // Pass 2: split into blocks at labels and after control ops.
    struct ProtoBlock {
        label: Option<String>,
        body: Vec<(usize, BodyOp)>,
        control: Option<(usize, ControlOp)>,
    }
    let mut protos: Vec<ProtoBlock> = vec![ProtoBlock {
        label: None,
        body: vec![],
        control: None,
    }];
    for (line, stmt) in stmts {
        let open = protos.last_mut().expect("at least one proto");
        match stmt {
            Stmt::Label(l) => {
                if open.body.is_empty() && open.control.is_none() && open.label.is_none() {
                    open.label = Some(l);
                } else {
                    protos.push(ProtoBlock {
                        label: Some(l),
                        body: vec![],
                        control: None,
                    });
                }
            }
            Stmt::Body(b) => {
                if open.control.is_some() {
                    protos.push(ProtoBlock {
                        label: None,
                        body: vec![(line, b)],
                        control: None,
                    });
                } else {
                    open.body.push((line, b));
                }
            }
            Stmt::Control(c) => {
                if open.control.is_some() {
                    protos.push(ProtoBlock {
                        label: None,
                        body: vec![],
                        control: Some((line, c)),
                    });
                } else {
                    open.control = Some((line, c));
                }
            }
        }
    }
    // Drop an empty trailing/leading proto (e.g. file starting with a label
    // handled above never creates one, but a trailing label might).
    protos.retain(|p| !(p.body.is_empty() && p.control.is_none() && p.label.is_none()));
    if protos.is_empty() {
        return Err(err(0, "empty kernel"));
    }

    // Label resolution.
    let mut label_of: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (i, p) in protos.iter().enumerate() {
        if let Some(l) = &p.label {
            if label_of.insert(l.clone(), i).is_some() {
                return Err(err(0, format!("duplicate label `{l}`")));
            }
        }
    }
    let resolve = |name: &str, line: usize| {
        label_of
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label `{name}`")))
    };

    // Pass 3: materialize blocks with PCs and static ids.
    const CODE_BASE: u64 = 0x40_0000;
    let n = protos.len();
    let mut blocks = Vec::with_capacity(n);
    let mut lines = PcLineMap::new();
    let mut next_pc = CODE_BASE;
    let mut next_static = 0u32;
    for (i, p) in protos.iter().enumerate() {
        let start_pc = next_pc;
        let mut body = Vec::with_capacity(p.body.len());
        for (line, b) in &p.body {
            let mut srcs = [None, None];
            for (slot, &r) in srcs.iter_mut().zip(&b.srcs) {
                *slot = Some(r);
            }
            body.push(StaticInst {
                static_id: next_static,
                pc: next_pc,
                op: b.op,
                dest: b.dest,
                srcs,
                access: b.access,
            });
            lines.insert(next_pc, *line);
            next_static += 1;
            next_pc += 4;
        }
        let (terminator, cond) = match &p.control {
            Some((line, ControlOp::Beq { cond, target, prob })) => (
                Terminator::Cond {
                    target: resolve(target, *line)?,
                    taken_prob: *prob,
                },
                Some(*cond),
            ),
            Some((line, ControlOp::Loop { target, trips })) => (
                Terminator::Loop {
                    target: resolve(target, *line)?,
                    trip_mean: *trips,
                },
                None,
            ),
            Some((line, ControlOp::Jmp { target })) => (
                Terminator::Jump {
                    target: resolve(target, *line)?,
                },
                None,
            ),
            Some((line, ControlOp::Call { target })) => (
                Terminator::Call {
                    callee: resolve(target, *line)?,
                },
                None,
            ),
            Some((_, ControlOp::Ret)) => (Terminator::Ret, None),
            // Implicit fallthrough: jump to the next block (or wrap to 0).
            None => (
                Terminator::Jump {
                    target: if i + 1 < n { i + 1 } else { 0 },
                },
                None,
            ),
        };
        let branch_inst = StaticInst {
            static_id: next_static,
            pc: next_pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [cond, None],
            access: None,
        };
        if let Some((line, _)) = &p.control {
            lines.insert(next_pc, *line);
        }
        next_static += 1;
        next_pc += 4;
        blocks.push(Block {
            body,
            terminator,
            branch_inst,
            start_pc,
        });
    }

    let program = Program {
        name: "asm-kernel",
        blocks,
        main_blocks: n,
        num_statics: next_static,
        seed: 0,
    };
    Ok((program, lines))
}

/// Disassembles a [`Program`] back into DSL text.
///
/// The output reassembles (via [`assemble`]) into a program with identical
/// blocks, making `assemble ∘ disassemble` an identity on block structure —
/// the round-trip property the test suite checks for every suite benchmark.
///
/// # Example
///
/// ```
/// use shelfsim_workload::asm::{assemble, disassemble};
///
/// let p = assemble("top:\n add r8, r8\n loop top, trips=9\n").unwrap();
/// let text = disassemble(&p);
/// assert_eq!(assemble(&text).unwrap().blocks, p.blocks);
/// ```
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let reg = |r: ArchReg| {
        if r.is_fp() {
            format!("f{}", r.index() - 32)
        } else {
            format!("r{}", r.index())
        }
    };
    let access_attrs = |a: &AccessPattern| match a {
        AccessPattern::Strided { region, stride } => {
            format!(", stride={}, region={}", stride, region_name(*region))
        }
        AccessPattern::PointerChase { region } => {
            format!(", chase, region={}", region_name(*region))
        }
        AccessPattern::Random { region } => {
            // The DSL has no `random` keyword; approximate with a large
            // stride (documented lossy case — suite programs using Random
            // will not round-trip bit-exactly).
            format!(", stride=4096, region={}", region_name(*region))
        }
    };
    for (i, b) in program.blocks.iter().enumerate() {
        writeln!(out, "b{i}:").expect("write");
        for inst in &b.body {
            let srcs: Vec<String> = inst.srcs.iter().flatten().map(|&r| reg(r)).collect();
            match inst.op {
                OpClass::Load => {
                    let a = inst.access.as_ref().expect("loads have access patterns");
                    writeln!(
                        out,
                        "  load {}, [{}]{}",
                        reg(inst.dest.expect("loads have destinations")),
                        srcs[0],
                        access_attrs(a)
                    )
                    .expect("write");
                }
                OpClass::Store => {
                    let a = inst.access.as_ref().expect("stores have access patterns");
                    writeln!(out, "  store [{}], {}{}", srcs[0], srcs[1], access_attrs(a))
                        .expect("write");
                }
                OpClass::MemBarrier => writeln!(out, "  barrier").expect("write"),
                op => {
                    let mnemonic = match op {
                        OpClass::IntAlu => "add",
                        OpClass::IntMul => "mul",
                        OpClass::IntDiv => "div",
                        OpClass::FpAlu => "fadd",
                        OpClass::FpMul => "fmul",
                        OpClass::FpDiv => "fdiv",
                        other => unreachable!("non-body op {other} in block body"),
                    };
                    writeln!(
                        out,
                        "  {mnemonic} {}{}{}",
                        reg(inst.dest.expect("arith ops have destinations")),
                        if srcs.is_empty() { "" } else { ", " },
                        srcs.join(", ")
                    )
                    .expect("write");
                }
            }
        }
        match b.terminator {
            Terminator::Loop { target, trip_mean } => {
                writeln!(out, "  loop b{target}, trips={trip_mean}").expect("write")
            }
            Terminator::Cond { target, taken_prob } => {
                let cond = b.branch_inst.srcs[0]
                    .map(reg)
                    .unwrap_or_else(|| "r0".to_owned());
                writeln!(out, "  beq {cond}, b{target}, p={taken_prob}").expect("write")
            }
            Terminator::Jump { target } => writeln!(out, "  jmp b{target}").expect("write"),
            Terminator::Call { callee } => writeln!(out, "  call b{callee}").expect("write"),
            Terminator::Ret => writeln!(out, "  ret").expect("write"),
        }
    }
    out
}

fn region_name(r: Region) -> &'static str {
    match r {
        Region::L1 => "l1",
        Region::L2 => "l2",
        Region::Mem => "mem",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSource;

    #[test]
    fn assembles_a_simple_loop() {
        let p = assemble("top:\n add r8, r8\n loop top, trips=20\n").unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].body.len(), 1);
        assert!(matches!(
            p.blocks[0].terminator,
            Terminator::Loop {
                target: 0,
                trip_mean: 20
            }
        ));
    }

    #[test]
    fn labels_split_blocks_and_resolve() {
        let src = "a:\n add r8, r8\n jmp b\nb:\n mul r9, r8\n jmp a\n";
        let p = assemble(src).unwrap();
        assert_eq!(p.blocks.len(), 2);
        assert!(matches!(
            p.blocks[0].terminator,
            Terminator::Jump { target: 1 }
        ));
        assert!(matches!(
            p.blocks[1].terminator,
            Terminator::Jump { target: 0 }
        ));
    }

    #[test]
    fn memory_attributes_parse() {
        let src = "k:\n load r9, [r0], stride=64, region=l2\n store [r1], r9, region=mem\n \
                   load r10, [r10], chase, region=mem\n jmp k\n";
        let p = assemble(src).unwrap();
        let b = &p.blocks[0].body;
        assert_eq!(
            b[0].access,
            Some(AccessPattern::Strided {
                region: Region::L2,
                stride: 64
            })
        );
        assert_eq!(
            b[1].access,
            Some(AccessPattern::Strided {
                region: Region::Mem,
                stride: 8
            })
        );
        assert_eq!(
            b[2].access,
            Some(AccessPattern::PointerChase {
                region: Region::Mem
            })
        );
    }

    #[test]
    fn implicit_fallthrough_wraps() {
        let p = assemble("add r8, r8\n").unwrap();
        assert!(matches!(
            p.blocks[0].terminator,
            Terminator::Jump { target: 0 }
        ));
    }

    #[test]
    fn calls_and_returns() {
        let src = "main:\n call fn1\n jmp main\nfn1:\n fadd f8, f0\n ret\n";
        let p = assemble(src).unwrap();
        assert!(matches!(
            p.blocks[0].terminator,
            Terminator::Call { callee: 2 }
        ));
        assert!(matches!(p.blocks[2].terminator, Terminator::Ret));
    }

    #[test]
    fn assembled_kernel_runs_on_a_trace_source() {
        let src = "top:\n add r8, r8\n load r9, [r0], stride=8, region=l1\n \
                   beq r9, top, p=0.9\n jmp top\n";
        let mut t = TraceSource::new(assemble(src).unwrap(), 0);
        let mut branches = 0;
        let mut loads = 0;
        for _ in 0..1000 {
            let (_, inst) = t.fetch();
            if inst.is_branch() {
                branches += 1;
            }
            if inst.is_load() {
                loads += 1;
            }
        }
        assert!(branches > 200, "got {branches}");
        assert!(loads > 200, "got {loads}");
    }

    #[test]
    fn error_reporting_has_line_numbers() {
        let e = assemble("add r8, r8\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("top:\n add r8\n loop top, trips=1\n").unwrap_err();
        assert!(e.message.contains("at least 2"));

        let e = assemble("add r99, r0\n").unwrap_err();
        assert!(e.message.contains("bad register"));

        let e = assemble("k:\n beq r8, k, p=1.5\n jmp k\n").unwrap_err();
        assert!(e.message.contains("probability"));

        let e = assemble("").unwrap_err();
        assert!(e.message.contains("empty"));
    }

    #[test]
    fn trailing_conditional_wraps_to_block_zero() {
        // The not-taken path of a final conditional falls through to the
        // first block (kernels are infinite loops).
        let p = assemble("top:\n add r8, r8\n beq r8, top, p=0.5\n").unwrap();
        let mut t = TraceSource::new(p, 0);
        for _ in 0..500 {
            let _ = t.fetch(); // must not panic / fall off the program
        }
    }

    #[test]
    fn disassemble_round_trips_kernels() {
        let src = "main:\n load f8, [r0], stride=8, region=l2\n fmul f9, f8, f0\n \
                   store [r1], f9, stride=8, region=l2\n call helper\n \
                   beq r8, main, p=0.25\nhelper:\n barrier\n ret\n";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.blocks, p2.blocks, "round trip changed blocks:\n{text}");
    }

    #[test]
    fn line_map_locates_every_explicit_instruction() {
        let src = "top:\n  add r8, r8\n\n  load r9, [r0], region=l1\n  loop top, trips=50\n";
        let (p, lines) = assemble_with_lines(src).unwrap();
        let body = &p.blocks[0].body;
        assert_eq!(lines.get(&body[0].pc), Some(&2));
        assert_eq!(lines.get(&body[1].pc), Some(&4));
        assert_eq!(lines.get(&p.blocks[0].branch_inst.pc), Some(&5));
        // Implicit fall-through branches have no source line.
        let (p, lines) = assemble_with_lines("a:\n add r8, r8\nb:\n add r9, r9\n jmp a\n").unwrap();
        assert!(!lines.contains_key(&p.blocks[0].branch_inst.pc));
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let e = assemble("a:\n add r8, r8\n jmp a\na:\n mul r9, r8\n jmp a\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }
}
