//! Static synthetic programs: basic blocks, loops, calls, and memory access
//! patterns, built deterministically from a [`BenchmarkProfile`].

use crate::profile::BenchmarkProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use shelfsim_isa::{ArchReg, OpClass};

/// Which data region an access targets (sized to be L1-resident,
/// L2-resident, or memory-bound against the Table I hierarchy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// 16 KB region: fits in the 32 KB L1D.
    L1,
    /// 1 MB region: fits in the 2 MB L2, misses L1.
    L2,
    /// 16 MB region: exceeds the L2.
    Mem,
}

impl Region {
    /// Region size in bytes.
    pub fn size(self) -> u64 {
        match self {
            Region::L1 => 16 << 10,
            Region::L2 => 1 << 20,
            Region::Mem => 16 << 20,
        }
    }

    /// Region base offset within the program's data segment.
    pub fn base(self) -> u64 {
        match self {
            Region::L1 => 0,
            Region::L2 => 0x10_0000,
            Region::Mem => 0x100_0000,
        }
    }
}

/// The address stream of one static memory instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// `base + stride * n` within the region (streaming).
    Strided {
        /// Target region.
        region: Region,
        /// Byte stride between consecutive accesses.
        stride: u32,
    },
    /// Serialized dependent chain of cache-hostile accesses.
    PointerChase {
        /// Target region.
        region: Region,
    },
    /// Uniformly random addresses within the region.
    Random {
        /// Target region.
        region: Region,
    },
}

/// A static instruction inside a block body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StaticInst {
    /// Index into per-static state tables (stride counters, chase state).
    pub static_id: u32,
    /// Instruction PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register.
    pub dest: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Address pattern for loads/stores.
    pub access: Option<AccessPattern>,
}

/// How a block's terminating branch behaves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Terminator {
    /// Back-edge: re-execute this block `trip` times per entry (drawn
    /// around `trip_mean`), then fall through. Highly predictable.
    Loop {
        /// Block to loop back to (this block).
        target: usize,
        /// Mean trip count.
        trip_mean: u32,
    },
    /// Data-dependent forward branch to `target` with probability
    /// `taken_prob`, else fall through.
    Cond {
        /// Skip target.
        target: usize,
        /// Probability the branch is taken.
        taken_prob: f64,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: usize,
    },
    /// Call the function whose entry block is `callee`; execution resumes
    /// at the next block after the function returns.
    Call {
        /// Function entry block.
        callee: usize,
    },
    /// Return to the caller (or to block 0 if the stack is empty).
    Ret,
}

/// One basic block: a body of non-branch instructions plus a terminator
/// branch instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Non-branch body instructions.
    pub body: Vec<StaticInst>,
    /// The terminating branch.
    pub terminator: Terminator,
    /// The terminator's own static instruction (a branch reading `cond`).
    pub branch_inst: StaticInst,
    /// PC of the first body instruction.
    pub start_pc: u64,
}

impl Block {
    /// Total instructions in the block including the terminator.
    pub fn len(&self) -> usize {
        self.body.len() + 1
    }

    /// Blocks always contain at least the terminator.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A complete static program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Benchmark name this program was built from.
    pub name: &'static str,
    /// All basic blocks; `0..main_blocks` form the main chain, the rest are
    /// function bodies reachable only through calls.
    pub blocks: Vec<Block>,
    /// Number of main-chain blocks.
    pub main_blocks: usize,
    /// Total static instruction count (for per-static state tables).
    pub num_statics: u32,
    /// Seed the program was built with (for diagnostics).
    pub seed: u64,
}

/// A structural defect found by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramError(pub String);

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// PC of the instruction following the given block (the fall-through
    /// continuation).
    pub fn fallthrough_pc(&self, block: usize) -> u64 {
        self.blocks[block].start_pc + 4 * self.blocks[block].len() as u64
    }

    /// Total static footprint in instructions.
    pub fn footprint(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Checks structural well-formedness: non-empty, in-range terminator
    /// targets, contiguous PCs, dense unique static ids, memory ops carry
    /// access patterns, and branch instructions terminate every block.
    /// Hand-constructed programs (tests, external tools) should validate
    /// before running; [`crate::asm::assemble`] output always passes.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first defect found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        use shelfsim_isa::OpClass;
        if self.blocks.is_empty() {
            return Err(ProgramError("program has no blocks".into()));
        }
        let n = self.blocks.len();
        let mut seen = vec![false; self.num_statics as usize];
        let mut expected_pc = self.blocks[0].start_pc;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.start_pc != expected_pc {
                return Err(ProgramError(format!(
                    "block {i} starts at {:#x}, expected contiguous {expected_pc:#x}",
                    b.start_pc
                )));
            }
            for inst in b.body.iter().chain(std::iter::once(&b.branch_inst)) {
                let id = inst.static_id as usize;
                if id >= seen.len() || seen[id] {
                    return Err(ProgramError(format!(
                        "block {i}: static id {id} out of range or duplicated"
                    )));
                }
                seen[id] = true;
                if inst.op.is_mem() != inst.access.is_some() {
                    return Err(ProgramError(format!(
                        "block {i}: memory op / access pattern mismatch at pc {:#x}",
                        inst.pc
                    )));
                }
            }
            if b.branch_inst.op != OpClass::Branch {
                return Err(ProgramError(format!(
                    "block {i}: terminator is not a branch"
                )));
            }
            let target = match b.terminator {
                Terminator::Loop { target, trip_mean } => {
                    if trip_mean < 2 {
                        return Err(ProgramError(format!("block {i}: loop trips < 2")));
                    }
                    target
                }
                Terminator::Cond { target, taken_prob } => {
                    if !(0.0..=1.0).contains(&taken_prob) {
                        return Err(ProgramError(format!(
                            "block {i}: branch probability {taken_prob} out of range"
                        )));
                    }
                    target
                }
                Terminator::Jump { target } => target,
                Terminator::Call { callee } => callee,
                Terminator::Ret => 0,
            };
            if target >= n {
                return Err(ProgramError(format!(
                    "block {i}: terminator target {target} out of range ({n} blocks)"
                )));
            }
            expected_pc = self.fallthrough_pc(i);
        }
        if !seen.iter().all(|&s| s) {
            return Err(ProgramError("static ids are not dense".into()));
        }
        Ok(())
    }
}

/// Builds a [`Program`] from a profile and seed.
pub struct ProgramBuilder<'a> {
    profile: &'a BenchmarkProfile,
    rng: SmallRng,
    seed: u64,
    next_static: u32,
    next_pc: u64,
    /// Recently written registers (for dependence chaining).
    recent: Vec<ArchReg>,
}

const CODE_BASE: u64 = 0x40_0000;
/// Long-lived integer registers (array bases, accumulators).
const GLOBAL_INT: std::ops::Range<u8> = 0..8;
/// Rotating integer destination pool.
const DEST_INT: std::ops::Range<u8> = 8..24;
/// Rotating FP destination pool.
const DEST_FP: std::ops::Range<u8> = 8..24;
/// Dedicated pointer-chase registers.
const PTR_INT: std::ops::Range<u8> = 24..28;

impl<'a> ProgramBuilder<'a> {
    /// Creates a builder for `profile` with deterministic `seed`.
    pub fn new(profile: &'a BenchmarkProfile, seed: u64) -> Self {
        ProgramBuilder {
            profile,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_5EED),
            seed,
            next_static: 0,
            next_pc: CODE_BASE,
            recent: Vec::new(),
        }
    }

    /// Builds the program.
    pub fn build(mut self) -> Program {
        let p = self.profile;
        // Block body length targets the requested branch fraction: one
        // terminator branch per block.
        let body_len = ((1.0 / p.frac_branch.max(0.02)) - 1.0).round().max(1.0) as usize;
        let avg_block = body_len + 1;
        let num_blocks = (p.code_footprint / avg_block).max(4);
        let num_fns = (num_blocks / 12).clamp(1, 4);
        let fn_blocks = num_fns * 2;
        let main_blocks = num_blocks.saturating_sub(fn_blocks).max(2);

        let mut blocks = Vec::with_capacity(main_blocks + fn_blocks);
        // Function entry block indices, known ahead of layout.
        let fn_entries: Vec<usize> = (0..num_fns).map(|f| main_blocks + 2 * f).collect();

        for b in 0..main_blocks {
            let term = self.pick_main_terminator(b, main_blocks, &fn_entries);
            blocks.push(self.build_block(body_len, term));
        }
        for f in 0..num_fns {
            let entry = main_blocks + 2 * f;
            blocks.push(self.build_block(body_len, Terminator::Jump { target: entry + 1 }));
            blocks.push(self.build_block(body_len, Terminator::Ret));
        }

        Program {
            name: p.name,
            blocks,
            main_blocks,
            num_statics: self.next_static,
            seed: self.seed,
        }
    }

    fn pick_main_terminator(
        &mut self,
        b: usize,
        main_blocks: usize,
        fn_entries: &[usize],
    ) -> Terminator {
        if b == main_blocks - 1 {
            // Close the outer infinite loop.
            return Terminator::Jump { target: 0 };
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.30 {
            let trip_mean = self.profile.mean_trip_count.max(2);
            Terminator::Loop {
                target: b,
                trip_mean,
            }
        } else if roll < 0.60 {
            // Forward conditional skips. Long, strongly-taken skips create
            // *cold* code regions, so the dynamic instruction footprint is
            // loop-dominated like real programs (most SPEC time is spent in
            // a small hot subset of the static code) — without them every
            // static block is hot and 4-thread mixes thrash the shared L1I
            // far beyond anything real workloads do.
            let cold_skip = self.rng.gen::<f64>() < 0.5;
            let (span, taken_prob) = if cold_skip {
                (8usize, 0.95)
            } else {
                let p = if self.rng.gen::<f64>() < self.profile.branch_entropy {
                    0.35 + self.rng.gen::<f64>() * 0.3 // hard-to-predict
                } else if self.rng.gen() {
                    0.05
                } else {
                    0.92
                };
                (3usize, p)
            };
            let max_skip = (main_blocks - 1 - b).clamp(1, span);
            let target = b + 1 + self.rng.gen_range(0..max_skip);
            Terminator::Cond {
                target: target.min(main_blocks - 1),
                taken_prob,
            }
        } else if roll < 0.72 && !fn_entries.is_empty() {
            let callee = fn_entries[self.rng.gen_range(0..fn_entries.len())];
            Terminator::Call { callee }
        } else {
            Terminator::Jump { target: b + 1 }
        }
    }

    fn build_block(&mut self, body_len: usize, terminator: Terminator) -> Block {
        let start_pc = self.next_pc;
        // Jitter body length +/- 30%.
        let jitter = (body_len as f64 * 0.3) as usize;
        let len = if jitter > 0 {
            body_len - jitter + self.rng.gen_range(0..=2 * jitter)
        } else {
            body_len
        };
        let len = len.max(1);
        let mut body = Vec::with_capacity(len);
        for _ in 0..len.max(1) {
            body.push(self.build_body_inst());
        }
        let branch_inst = self.build_branch_inst(&terminator);
        Block {
            body,
            terminator,
            branch_inst,
            start_pc,
        }
    }

    fn alloc_static(&mut self) -> (u32, u64) {
        let id = self.next_static;
        self.next_static += 1;
        let pc = self.next_pc;
        self.next_pc += 4;
        (id, pc)
    }

    fn pick_source(&mut self, fp: bool) -> ArchReg {
        let chained = !self.recent.is_empty() && self.rng.gen::<f64>() < self.profile.chain_density;
        if chained {
            // Prefer the most recent compatible destination.
            let pool: Vec<ArchReg> = self
                .recent
                .iter()
                .rev()
                .take(4)
                .copied()
                .filter(|r| r.is_fp() == fp)
                .collect();
            if let Some(&r) = pool.first() {
                return r;
            }
        }
        let n = self.rng.gen_range(GLOBAL_INT.start..GLOBAL_INT.end);
        if fp {
            ArchReg::fp(n)
        } else {
            ArchReg::int(n)
        }
    }

    fn pick_dest(&mut self, fp: bool) -> ArchReg {
        let r = if fp {
            ArchReg::fp(self.rng.gen_range(DEST_FP.start..DEST_FP.end))
        } else {
            ArchReg::int(self.rng.gen_range(DEST_INT.start..DEST_INT.end))
        };
        self.recent.push(r);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }
        r
    }

    fn pick_region(&mut self) -> Region {
        let roll: f64 = self.rng.gen();
        if roll < self.profile.mem_l1_frac {
            Region::L1
        } else if roll < self.profile.mem_l1_frac + self.profile.mem_l2_frac {
            Region::L2
        } else {
            Region::Mem
        }
    }

    fn build_body_inst(&mut self) -> StaticInst {
        let p = self.profile;
        // Rescale the load/store fractions to the non-branch budget.
        let scale = 1.0 / (1.0 - p.frac_branch).max(0.05);
        let roll: f64 = self.rng.gen();
        let (id, pc) = self.alloc_static();
        if roll < p.frac_load * scale {
            // Load.
            if self.rng.gen::<f64>() < p.pointer_chase {
                let ptr = ArchReg::int(self.rng.gen_range(PTR_INT.start..PTR_INT.end));
                let region = if self.rng.gen::<f64>() < 0.7 {
                    Region::Mem
                } else {
                    Region::L2
                };
                return StaticInst {
                    static_id: id,
                    pc,
                    op: OpClass::Load,
                    dest: Some(ptr),
                    srcs: [Some(ptr), None],
                    access: Some(AccessPattern::PointerChase { region }),
                };
            }
            let region = self.pick_region();
            let access = if self.rng.gen::<f64>() < 0.75 {
                let stride = *[8u32, 8, 16, 64].get(self.rng.gen_range(0..4)).unwrap();
                AccessPattern::Strided { region, stride }
            } else {
                AccessPattern::Random { region }
            };
            let dest = self.pick_dest(false);
            let base = ArchReg::int(self.rng.gen_range(GLOBAL_INT.start..GLOBAL_INT.end));
            StaticInst {
                static_id: id,
                pc,
                op: OpClass::Load,
                dest: Some(dest),
                srcs: [Some(base), None],
                access: Some(access),
            }
        } else if roll < (p.frac_load + p.frac_store) * scale {
            // Store: address mostly strided; data register chains.
            let region = self.pick_region();
            let stride = *[8u32, 8, 16, 64].get(self.rng.gen_range(0..4)).unwrap();
            let base = ArchReg::int(self.rng.gen_range(GLOBAL_INT.start..GLOBAL_INT.end));
            let data_is_fp = self.rng.gen::<f64>() < p.frac_fp;
            let data = self.pick_source(data_is_fp);
            StaticInst {
                static_id: id,
                pc,
                op: OpClass::Store,
                dest: None,
                srcs: [Some(base), Some(data)],
                access: Some(AccessPattern::Strided { region, stride }),
            }
        } else {
            // Arithmetic.
            let fp = self.rng.gen::<f64>() < p.frac_fp;
            let op = if self.rng.gen::<f64>() < p.frac_muldiv {
                match (fp, self.rng.gen::<f64>() < 0.15) {
                    (false, false) => OpClass::IntMul,
                    (false, true) => OpClass::IntDiv,
                    (true, false) => OpClass::FpMul,
                    (true, true) => OpClass::FpDiv,
                }
            } else if fp {
                OpClass::FpAlu
            } else {
                OpClass::IntAlu
            };
            let s1 = self.pick_source(fp);
            let s2 = if self.rng.gen::<f64>() < 0.7 {
                Some(self.pick_source(fp))
            } else {
                None
            };
            let dest = self.pick_dest(fp);
            StaticInst {
                static_id: id,
                pc,
                op,
                dest: Some(dest),
                srcs: [Some(s1), s2],
                access: None,
            }
        }
    }

    fn build_branch_inst(&mut self, term: &Terminator) -> StaticInst {
        let (id, pc) = self.alloc_static();
        // Conditional terminators read a recently computed register: the
        // branch outcome is data-dependent, as in real code.
        let cond = match term {
            Terminator::Cond { .. } | Terminator::Loop { .. } => {
                Some(self.recent.last().copied().unwrap_or(ArchReg::int(0)))
            }
            _ => None,
        };
        StaticInst {
            static_id: id,
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [cond, None],
            access: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    fn build(name: &str, seed: u64) -> Program {
        suite::by_name(name).unwrap().build_program(seed)
    }

    #[test]
    fn block_layout_is_contiguous() {
        let p = build("gcc", 1);
        let mut expected_pc = CODE_BASE;
        for b in &p.blocks {
            assert_eq!(b.start_pc, expected_pc);
            for (i, inst) in b.body.iter().enumerate() {
                assert_eq!(inst.pc, b.start_pc + 4 * i as u64);
            }
            assert_eq!(b.branch_inst.pc, b.start_pc + 4 * b.body.len() as u64);
            expected_pc =
                p.fallthrough_pc(p.blocks.iter().position(|x| std::ptr::eq(x, b)).unwrap());
        }
    }

    #[test]
    fn terminator_targets_are_valid() {
        for name in ["gcc", "mcf", "bwaves", "lbm"] {
            let p = build(name, 2);
            for (i, b) in p.blocks.iter().enumerate() {
                match b.terminator {
                    Terminator::Loop { target, trip_mean } => {
                        assert_eq!(target, i, "loops are self-loops");
                        assert!(trip_mean >= 2);
                    }
                    Terminator::Cond { target, taken_prob } => {
                        assert!(target < p.main_blocks);
                        assert!(target > i, "cond branches are forward");
                        assert!((0.0..=1.0).contains(&taken_prob));
                    }
                    Terminator::Jump { target } => {
                        assert!(target < p.blocks.len());
                    }
                    Terminator::Call { callee } => {
                        assert!(callee >= p.main_blocks, "callees live after the main chain");
                        assert!(callee < p.blocks.len());
                    }
                    Terminator::Ret => {
                        assert!(i >= p.main_blocks, "only function blocks return");
                    }
                }
            }
        }
    }

    #[test]
    fn last_main_block_closes_outer_loop() {
        let p = build("mcf", 3);
        assert_eq!(
            p.blocks[p.main_blocks - 1].terminator,
            Terminator::Jump { target: 0 }
        );
    }

    #[test]
    fn static_ids_are_dense_and_unique() {
        let p = build("astar", 4);
        let mut seen = vec![false; p.num_statics as usize];
        for b in &p.blocks {
            for i in b.body.iter().chain(std::iter::once(&b.branch_inst)) {
                assert!(!seen[i.static_id as usize], "duplicate static id");
                seen[i.static_id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "static ids must be dense");
        assert_eq!(p.footprint(), p.num_statics as usize);
    }

    #[test]
    fn memory_bound_profile_has_big_regions() {
        let p = build("mcf", 5);
        let chases = p
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| matches!(i.access, Some(AccessPattern::PointerChase { .. })))
            .count();
        assert!(chases > 0, "mcf must pointer-chase");
    }

    #[test]
    fn footprint_tracks_profile() {
        let small = build("libquantum", 6).footprint();
        let large = build("gcc", 6).footprint();
        assert!(
            large > small,
            "gcc has a larger code footprint than libquantum"
        );
    }

    #[test]
    fn generated_and_assembled_programs_validate() {
        for name in ["gcc", "mcf", "lbm"] {
            suite::by_name(name)
                .unwrap()
                .build_program(3)
                .validate()
                .expect("suite program");
        }
        crate::asm::assemble("t:\n add r8, r8\n loop t, trips=5\n")
            .unwrap()
            .validate()
            .expect("assembled kernel");
    }

    #[test]
    fn validate_catches_defects() {
        let mut p = suite::by_name("lbm").unwrap().build_program(1);
        p.blocks[0].terminator = Terminator::Jump { target: 999 };
        assert!(p
            .validate()
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let mut p = suite::by_name("lbm").unwrap().build_program(1);
        p.blocks[1].start_pc += 4;
        assert!(p.validate().unwrap_err().to_string().contains("contiguous"));

        let mut p = suite::by_name("lbm").unwrap().build_program(1);
        p.blocks[0].branch_inst.op = shelfsim_isa::OpClass::IntAlu;
        assert!(p
            .validate()
            .unwrap_err()
            .to_string()
            .contains("not a branch"));

        let empty = Program {
            name: "x",
            blocks: vec![],
            main_blocks: 0,
            num_statics: 0,
            seed: 0,
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn region_geometry() {
        assert!(Region::L1.size() < 32 << 10);
        assert!(Region::L2.size() < 2 << 20);
        assert!(Region::Mem.size() > 2 << 20);
        assert!(Region::L1.base() < Region::L2.base());
        assert!(Region::L2.base() + Region::L2.size() <= Region::Mem.base());
    }
}
