//! Benchmark profiles: the knobs that shape a synthetic program.

use crate::program::{Program, ProgramBuilder};

/// The behavioural knobs of one synthetic benchmark.
///
/// All fractions are in `0.0..=1.0`. The remaining instruction budget after
/// loads, stores, and branches is arithmetic, split between integer and
/// floating point by `frac_fp` and into long-latency ops by `frac_muldiv`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CPU2006 analogue).
    pub name: &'static str,
    /// Fraction of instructions that are loads.
    pub frac_load: f64,
    /// Fraction of instructions that are stores.
    pub frac_store: f64,
    /// Fraction of instructions that are conditional branches.
    pub frac_branch: f64,
    /// Of the arithmetic instructions, the fraction that are floating point.
    pub frac_fp: f64,
    /// Of the arithmetic instructions, the fraction that are multiplies or
    /// divides (long latency).
    pub frac_muldiv: f64,
    /// Average register dependence distance: the probability that an
    /// instruction's source is the destination of a *recent* instruction
    /// (small window) rather than a long-lived register. Higher = more
    /// serial code = fewer reordering opportunities per instruction.
    pub chain_density: f64,
    /// Fraction of memory accesses hitting the L1-resident region.
    pub mem_l1_frac: f64,
    /// Fraction of memory accesses hitting the L2-resident region (the
    /// remainder goes to the memory-bound region).
    pub mem_l2_frac: f64,
    /// Fraction of loads that pointer-chase (serialized, cache-hostile).
    pub pointer_chase: f64,
    /// Fraction of conditional branches that are data-dependent coin flips
    /// (taken with probability ~0.5) rather than predictable loop/biased
    /// branches. Drives the mispredict rate.
    pub branch_entropy: f64,
    /// Static code footprint in instructions (drives L1I behaviour).
    pub code_footprint: usize,
    /// Mean loop trip count of inner loops.
    pub mean_trip_count: u32,
}

impl BenchmarkProfile {
    /// Validates that all fractions are sane.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `0..=1`, the instruction mix
    /// exceeds 1.0, or the code footprint is degenerate.
    pub fn validate(&self) {
        let fr = [
            self.frac_load,
            self.frac_store,
            self.frac_branch,
            self.frac_fp,
            self.frac_muldiv,
            self.chain_density,
            self.mem_l1_frac,
            self.mem_l2_frac,
            self.pointer_chase,
            self.branch_entropy,
        ];
        for f in fr {
            assert!(
                (0.0..=1.0).contains(&f),
                "{}: fraction {f} out of range",
                self.name
            );
        }
        assert!(
            self.frac_load + self.frac_store + self.frac_branch <= 0.95,
            "{}: need arithmetic headroom",
            self.name
        );
        assert!(
            self.mem_l1_frac + self.mem_l2_frac <= 1.0,
            "{}: memory region fractions exceed 1",
            self.name
        );
        assert!(
            self.code_footprint >= 16,
            "{}: trivial code footprint",
            self.name
        );
        assert!(
            self.mean_trip_count >= 2,
            "{}: loops must iterate",
            self.name
        );
    }

    /// Builds the synthetic static program for this profile.
    ///
    /// `seed` perturbs register assignments, block shapes, and access
    /// patterns deterministically; the same `(profile, seed)` always yields
    /// the same program.
    pub fn build_program(&self, seed: u64) -> Program {
        self.validate();
        ProgramBuilder::new(self, seed).build()
    }
}

#[cfg(test)]
mod tests {
    use crate::suite;

    #[test]
    fn all_suite_profiles_validate() {
        for p in suite::all() {
            p.validate();
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fraction_panics() {
        let mut p = suite::by_name("gcc").unwrap().clone();
        p.frac_load = 1.5;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn overfull_mix_panics() {
        let mut p = suite::by_name("gcc").unwrap().clone();
        p.frac_load = 0.5;
        p.frac_store = 0.3;
        p.frac_branch = 0.2;
        p.validate();
    }

    #[test]
    fn build_is_deterministic() {
        let p = suite::by_name("mcf").unwrap();
        let a = p.build_program(3);
        let b = p.build_program(3);
        assert_eq!(a, b);
        let c = p.build_program(4);
        assert_ne!(a, c, "different seeds give different programs");
    }
}
