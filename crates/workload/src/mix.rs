//! SMT workload mix generation using the "Balanced Random" methodology
//! (Velasquez, Michaud & Seznec, ISPASS 2013; paper §V).
//!
//! "For SMT workloads, we generate mixes of 28 different SPEC benchmarks,
//! such that each benchmark appears an equal number of times in each
//! workload" — concretely, 28 mixes of `t` threads each, in which every
//! benchmark appears exactly `t` times across the whole set, with no
//! benchmark duplicated inside a single mix.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One multiprogrammed workload: the benchmark name of each SMT context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Benchmark names, one per hardware thread.
    pub benchmarks: Vec<&'static str>,
}

impl Mix {
    /// Number of threads in the mix.
    pub fn threads(&self) -> usize {
        self.benchmarks.len()
    }

    /// A short label like `gcc+mcf+lbm+astar` for reports.
    pub fn label(&self) -> String {
        self.benchmarks.join("+")
    }
}

/// Generates `num_mixes` balanced random mixes of `threads` benchmarks each
/// from `names`.
///
/// Every benchmark appears exactly `num_mixes * threads / names.len()` times
/// across the full set, and no mix contains the same benchmark twice
/// (achieved by post-shuffle repair swaps). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `threads > names.len()`, or `num_mixes * threads` is not a
/// multiple of `names.len()`.
pub fn balanced_random_mixes(
    names: &[&'static str],
    threads: usize,
    num_mixes: usize,
    seed: u64,
) -> Vec<Mix> {
    assert!(threads >= 1, "mixes need at least one thread");
    assert!(
        threads <= names.len(),
        "cannot avoid duplicates with more threads than benchmarks"
    );
    let slots = num_mixes * threads;
    assert!(
        slots.is_multiple_of(names.len()),
        "{num_mixes} mixes x {threads} threads is not balanced over {} benchmarks",
        names.len()
    );
    let copies = slots / names.len();
    let mut pool: Vec<&'static str> = names
        .iter()
        .flat_map(|&n| std::iter::repeat_n(n, copies))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ BALANCE_SEED);
    pool.shuffle(&mut rng);

    // Repair within-mix duplicates by swapping with a later slot whose value
    // differs and whose own mix does not already contain the duplicate.
    let mut mixes: Vec<Vec<&'static str>> = pool.chunks(threads).map(|c| c.to_vec()).collect();
    for pass in 0..64 {
        let mut fixed_everything = true;
        for m in 0..mixes.len() {
            for i in 0..threads {
                let dup = mixes[m][..i].contains(&mixes[m][i]);
                if !dup {
                    continue;
                }
                fixed_everything = false;
                // Find a swap partner anywhere else.
                let mut done = false;
                'outer: for m2 in 0..mixes.len() {
                    if m2 == m {
                        continue;
                    }
                    for j in 0..threads {
                        let cand = mixes[m2][j];
                        let ours = mixes[m][i];
                        let cand_ok = !mixes[m].contains(&cand);
                        let ours_ok = !mixes[m2]
                            .iter()
                            .enumerate()
                            .any(|(k, &v)| k != j && v == ours);
                        if cand_ok && ours_ok {
                            mixes[m][i] = cand;
                            mixes[m2][j] = ours;
                            done = true;
                            break 'outer;
                        }
                    }
                }
                assert!(
                    done || pass < 63,
                    "failed to repair duplicate benchmarks in mixes"
                );
            }
        }
        if fixed_everything {
            break;
        }
    }
    mixes
        .into_iter()
        .map(|benchmarks| Mix { benchmarks })
        .collect()
}

const BALANCE_SEED: u64 = 0x0BA1_ACED;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use std::collections::HashMap;

    #[test]
    fn four_thread_mixes_are_balanced() {
        let names = suite::names();
        let mixes = balanced_random_mixes(&names, 4, 28, 7);
        assert_eq!(mixes.len(), 28);
        let mut count: HashMap<&str, usize> = HashMap::new();
        for m in &mixes {
            assert_eq!(m.threads(), 4);
            for &b in &m.benchmarks {
                *count.entry(b).or_default() += 1;
            }
        }
        for (&b, &c) in &count {
            assert_eq!(c, 4, "{b} appears {c} times, expected 4");
        }
    }

    #[test]
    fn no_mix_contains_duplicates() {
        let names = suite::names();
        for threads in [2, 4, 8] {
            let mixes = balanced_random_mixes(&names, threads, 28, 99);
            for m in &mixes {
                let mut b = m.benchmarks.clone();
                b.sort_unstable();
                b.dedup();
                assert_eq!(b.len(), threads, "duplicate in mix {}", m.label());
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let names = suite::names();
        let a = balanced_random_mixes(&names, 4, 28, 1);
        let b = balanced_random_mixes(&names, 4, 28, 1);
        let c = balanced_random_mixes(&names, 4, 28, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn label_formats() {
        let m = Mix {
            benchmarks: vec!["gcc", "mcf"],
        };
        assert_eq!(m.label(), "gcc+mcf");
    }

    #[test]
    #[should_panic(expected = "not balanced")]
    fn unbalanced_request_panics() {
        let names = suite::names();
        let _ = balanced_random_mixes(&names, 3, 5, 0);
    }

    #[test]
    #[should_panic(expected = "more threads than benchmarks")]
    fn too_many_threads_panics() {
        let _ = balanced_random_mixes(&["a", "b"], 3, 2, 0);
    }
}
