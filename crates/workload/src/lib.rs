//! Synthetic benchmark suite for `shelfsim` — the stand-in for SPEC CPU2006.
//!
//! The paper evaluates 28 SPEC CPU2006 benchmarks (all but dealII) over the
//! ARMv7 ISA, fast-forwarded to SimPoints. We cannot ship SPEC, so this
//! crate generates *synthetic programs* whose microarchitectural behaviour
//! spans the same space:
//!
//! * **dependence density** (ILP) — how tightly instructions chain through
//!   registers, which controls how often an instruction's true dependence
//!   arrives after its false dependences (the in-sequence phenomenon);
//! * **memory behaviour** — strided streams, pointer chases, and random
//!   accesses over L1-resident, L2-resident, and memory-bound working sets;
//! * **branch behaviour** — predictable loop branches mixed with biased
//!   data-dependent branches;
//! * **operation mix** — integer/floating-point/multiply/divide ratios.
//!
//! Each of the 28 profiles is named after the SPEC benchmark whose published
//! characterization it approximates; the mapping is a *behavioural analogy*,
//! not a claim of instruction-level equivalence (see `DESIGN.md` §1).
//!
//! # Example
//!
//! ```
//! use shelfsim_workload::{suite, TraceSource};
//!
//! let profile = suite::by_name("mcf").expect("in suite");
//! let mut trace = TraceSource::new(profile.build_program(7), 0);
//! let first = trace.fetch();
//! assert_eq!(trace.fetch().0, 1); // sequence numbers are consecutive
//! let _ = first;
//! ```

pub mod asm;
pub mod generator;
pub mod kernels;
pub mod mix;
pub mod profile;
pub mod program;
pub mod suite;

pub use generator::TraceSource;
pub use mix::{balanced_random_mixes, Mix};
pub use profile::BenchmarkProfile;
pub use program::Program;
