//! Property tests for the synthetic workload generator: replay fidelity,
//! mix balance, and stream well-formedness across the whole suite.

use proptest::prelude::*;
use shelfsim_workload::{balanced_random_mixes, suite, TraceSource};
use std::collections::HashMap;

fn arb_bench() -> impl Strategy<Value = &'static str> {
    (0..suite::all().len()).prop_map(|i| suite::all()[i].name)
}

proptest! {
    #[test]
    fn replay_is_byte_identical(
        bench in arb_bench(),
        seed in 0u64..100,
        run in 50usize..400,
        rewind in 0usize..50,
    ) {
        let program = suite::by_name(bench).expect("suite").build_program(seed);
        let mut t = TraceSource::new(program, 0);
        let first: Vec<_> = (0..run).map(|_| t.fetch()).collect();
        let point = rewind.min(run - 1) as u64;
        t.rewind_to(point);
        for expected in first.iter().skip(point as usize) {
            prop_assert_eq!(&t.fetch(), expected);
        }
    }

    #[test]
    fn mixes_are_balanced_for_any_thread_count(
        threads in 1usize..8,
        seed in 0u64..50,
    ) {
        let names = suite::names();
        let mixes = balanced_random_mixes(&names, threads, 28, seed);
        let mut count: HashMap<&str, usize> = HashMap::new();
        for m in &mixes {
            // No duplicates within a mix.
            let mut b = m.benchmarks.clone();
            b.sort_unstable();
            b.dedup();
            prop_assert_eq!(b.len(), threads);
            for &x in &m.benchmarks {
                *count.entry(x).or_default() += 1;
            }
        }
        for (&b, &c) in &count {
            prop_assert_eq!(c, threads, "{} unbalanced", b);
        }
    }

    #[test]
    fn streams_are_well_formed(bench in arb_bench(), seed in 0u64..30) {
        let program = suite::by_name(bench).expect("suite").build_program(seed);
        let starts: std::collections::HashSet<u64> =
            program.blocks.iter().map(|b| b.start_pc).collect();
        let mut t = TraceSource::new(program, 1);
        let mut last_seq = None;
        for _ in 0..3000 {
            let (seq, inst) = t.fetch();
            // Sequence numbers are consecutive.
            if let Some(prev) = last_seq {
                prop_assert_eq!(seq, prev + 1);
            }
            last_seq = Some(seq);
            // Memory ops carry 8-byte aligned addresses; others carry none.
            match inst.mem {
                Some(m) => {
                    prop_assert!(inst.is_mem());
                    prop_assert_eq!(m.addr % 8, 0);
                }
                None => prop_assert!(!inst.is_mem()),
            }
            // Taken branches land on block starts (thread base removed).
            if let Some(br) = inst.branch {
                prop_assert!(inst.is_branch());
                let local = br.next_pc - (1u64 << 36) - 0x19_F040;
                prop_assert!(starts.contains(&local), "bad target {:#x}", br.next_pc);
            }
        }
    }

    #[test]
    fn thread_index_only_shifts_addresses(bench in arb_bench(), seed in 0u64..20) {
        let p = suite::by_name(bench).expect("suite").build_program(seed);
        let mut t0 = TraceSource::new(p.clone(), 0);
        let mut t1 = TraceSource::new(p, 1);
        // Different thread contexts reseed data-dependent randomness, so the
        // streams may diverge, but both must stay within their own address
        // spaces.
        for _ in 0..1000 {
            let (_, a) = t0.fetch();
            let (_, b) = t1.fetch();
            prop_assert_eq!(a.pc >> 36, 0);
            prop_assert_eq!(b.pc >> 36, 1);
            if let Some(m) = a.mem {
                prop_assert_eq!(m.addr >> 36, 0);
            }
            if let Some(m) = b.mem {
                prop_assert_eq!(m.addr >> 36, 1);
            }
        }
    }
}

mod asm_roundtrip {
    use proptest::prelude::*;
    use shelfsim_workload::asm::{assemble, disassemble};
    use shelfsim_workload::suite;

    proptest! {
        #[test]
        fn disassemble_assemble_is_identity_on_random_kernels(
            n_blocks in 1usize..6,
            ops in prop::collection::vec((0u8..8, 0u8..24, 0u8..24), 1..24),
            term_rolls in prop::collection::vec((0u8..4, 0u8..8, 2u32..50), 6),
        ) {
            // Build a random kernel in DSL text, then round-trip it.
            let mut src = String::new();
            let per_block = ops.len().div_ceil(n_blocks);
            for b in 0..n_blocks {
                src.push_str(&format!("b{b}:\n"));
                for (kind, d, s) in ops.iter().skip(b * per_block).take(per_block) {
                    let line = match kind % 8 {
                        0 => format!("  add r{}, r{}\n", d, s),
                        1 => format!("  mul r{}, r{}, r{}\n", d, s, (s + 1) % 24),
                        2 => format!("  fadd f{}, f{}\n", d, s),
                        3 => format!("  fmul f{}, f{}\n", d, s),
                        4 => format!("  load r{}, [r{}], stride=16, region=l2\n", d, s),
                        5 => format!("  store [r{}], r{}, region=l1\n", s, d),
                        6 => format!("  load r{}, [r{}], chase, region=mem\n", d, d),
                        _ => "  barrier\n".to_owned(),
                    };
                    src.push_str(&line);
                }
                let (t, target, trips) = term_rolls[b % term_rolls.len()];
                let target = target as usize % n_blocks;
                let line = match t % 4 {
                    0 => format!("  jmp b{target}\n"),
                    1 => format!("  loop b{target}, trips={trips}\n"),
                    2 => format!("  beq r{}, b{target}, p=0.5\n", trips % 24),
                    _ => format!("  jmp b{}\n", (target + 1) % n_blocks),
                };
                src.push_str(&line);
            }
            let p1 = assemble(&src).expect("generated kernel must assemble");
            let text = disassemble(&p1);
            let p2 = assemble(&text).expect("disassembled text must reassemble");
            prop_assert_eq!(&p1.blocks, &p2.blocks);
        }

        #[test]
        fn suite_programs_survive_disassembly(idx in 0usize..28, seed in 0u64..10) {
            // Suite programs use every terminator kind and (rarely) the
            // Random access pattern, which the DSL approximates; everything
            // else must survive a disassemble/assemble cycle structurally.
            let p1 = suite::all()[idx].build_program(seed);
            let text = disassemble(&p1);
            let p2 = assemble(&text).expect("suite programs must disassemble to valid DSL");
            prop_assert_eq!(p1.blocks.len(), p2.blocks.len());
            for (a, b) in p1.blocks.iter().zip(&p2.blocks) {
                prop_assert_eq!(a.body.len(), b.body.len());
                prop_assert_eq!(&a.terminator, &b.terminator);
                for (x, y) in a.body.iter().zip(&b.body) {
                    prop_assert_eq!(x.op, y.op);
                    prop_assert_eq!(x.dest, y.dest);
                    prop_assert_eq!(x.srcs, y.srcs);
                }
            }
        }
    }
}
