//! Event-driven cycle skipping must be *invisible*: `tick_bounded(n)` is
//! required to be bit-identical to `n` plain `tick()` calls — counters,
//! commit stream, trace tallies, occupancy samples, everything. These tests
//! drive the same workload through both engines and diff the results.

use shelfsim_core::{Core, CoreConfig, SteerPolicy};
use shelfsim_workload::kernels;
use shelfsim_workload::TraceSource;

/// Builds a core running the named library kernels, one per thread.
fn core_for(cfg: CoreConfig, kernel_names: &[&str]) -> Core {
    let sources = kernel_names
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let program = kernels::by_name(name)
                .unwrap_or_else(|| panic!("kernel `{name}` in library"))
                .assemble()
                .expect("library kernels assemble");
            TraceSource::new(program, t)
        })
        .collect();
    let mut core = Core::new(cfg, sources);
    core.warm_caches();
    core
}

/// Runs the same workload twice — tick-by-tick and skip-enabled — and
/// asserts the architectural results are identical. Returns the skipped
/// cycle count so callers can assert the skip engine actually engaged.
fn assert_equivalent(cfg: CoreConfig, kernel_names: &[&str], cycles: u64) -> u64 {
    let mut plain = core_for(cfg.clone(), kernel_names);
    plain.set_cycle_skipping(false);
    plain.enable_commit_observer();
    let advanced = plain.tick_bounded(cycles);
    assert_eq!(advanced, cycles, "tick_bounded must advance exactly limit");
    assert_eq!(
        plain.skip_stats().skipped_cycles,
        0,
        "disabled engine skipped"
    );

    let mut skip = core_for(cfg, kernel_names);
    skip.enable_commit_observer();
    assert!(skip.cycle_skipping(), "skipping defaults on");
    let advanced = skip.tick_bounded(cycles);
    assert_eq!(advanced, cycles);

    assert_eq!(plain.now(), skip.now(), "cycle counters diverged");
    assert_eq!(plain.counters, skip.counters, "counters diverged");
    assert_eq!(
        plain.hierarchy().counters(),
        skip.hierarchy().counters(),
        "memory-hierarchy counters diverged"
    );
    for t in 0..kernel_names.len() {
        assert_eq!(plain.committed(t), skip.committed(t), "thread {t} commits");
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    plain.drain_commit_events(&mut a);
    skip.drain_commit_events(&mut b);
    assert_eq!(a.len(), b.len(), "commit stream lengths diverged");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.thread, y.thread);
        assert_eq!(x.seq, y.seq);
        assert_eq!(
            x.cycle, y.cycle,
            "commit cycle for t{} seq{}",
            x.seq, x.thread
        );
        assert_eq!(x.inst, y.inst);
    }

    let stats = skip.skip_stats();
    assert_eq!(
        stats.skipped_cycles,
        stats.by_cause.iter().sum::<u64>(),
        "every skipped cycle must be attributed to a cause"
    );
    stats.skipped_cycles
}

#[test]
fn skip_matches_tick_on_memory_bound_chase() {
    // A serialized pointer chase is the skip engine's best case: every DRAM
    // miss opens a multi-hundred-cycle idle span.
    let cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
    let skipped = assert_equivalent(cfg, &["chase"], 40_000);
    assert!(
        skipped > 20_000,
        "chase should skip most of its cycles, skipped only {skipped}"
    );
}

#[test]
fn skip_matches_tick_on_two_thread_memory_bound_mix() {
    // Two threads: idle spans only open when *both* are blocked, so fixed
    // points are rarer and interleaved with bursts of progress.
    let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
    let skipped = assert_equivalent(cfg, &["chase", "chase2"], 40_000);
    assert!(skipped > 0, "two blocked chases must still yield skips");
}

#[test]
fn skip_matches_tick_on_compute_bound_kernel() {
    // A compute-bound kernel should barely skip — and must stay identical.
    let cfg = CoreConfig::base64(1);
    assert_equivalent(cfg, &["reduce"], 20_000);
}

#[test]
fn skip_matches_tick_across_designs_and_steers() {
    for (threads, kernels) in [(1usize, vec!["triad"]), (2usize, vec!["chase", "triad"])] {
        for mk in [
            CoreConfig::base64 as fn(usize) -> CoreConfig,
            CoreConfig::base128 as fn(usize) -> CoreConfig,
        ] {
            assert_equivalent(mk(threads), &kernels, 15_000);
        }
        for steer in [
            SteerPolicy::Practical,
            SteerPolicy::Oracle,
            SteerPolicy::AlwaysShelf,
        ] {
            let cfg = CoreConfig::base64_shelf64(threads, steer, true);
            assert_equivalent(cfg, &kernels, 15_000);
        }
    }
}

#[test]
fn tracer_tallies_and_samples_identical_under_skipping() {
    // Satellite: stall attribution and occupancy sampling must survive the
    // fast-forward — skipped spans are attributed to the blocking cause and
    // grid samples are emitted at pre-skip occupancy values.
    let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
    let cycles = 30_000u64;

    let mut plain = core_for(cfg.clone(), &["chase", "chase2"]);
    plain.set_cycle_skipping(false);
    plain.enable_tracer(256, 100);
    plain.tick_bounded(cycles);

    let mut skip = core_for(cfg, &["chase", "chase2"]);
    skip.enable_tracer(256, 100);
    skip.tick_bounded(cycles);
    assert!(
        skip.skip_stats().skipped_cycles > 0,
        "memory-bound 2-thread run must skip"
    );

    let (pt, st) = (plain.tracer().unwrap(), skip.tracer().unwrap());
    for t in 0..2 {
        assert_eq!(
            pt.dispatch_stalls(t),
            st.dispatch_stalls(t),
            "dispatch stall tally diverged for thread {t}"
        );
        assert_eq!(
            pt.issue_stalls(t),
            st.issue_stalls(t),
            "issue stall tally diverged for thread {t}"
        );
        // The invariant the skip accounting must preserve: per-thread
        // per-side tallies sum exactly to the driven cycles.
        assert_eq!(st.dispatch_stalls(t).iter().sum::<u64>(), cycles);
        assert_eq!(st.issue_stalls(t).iter().sum::<u64>(), cycles);
    }
    // The tracer's own audit must agree: samples grid-aligned, tallies
    // complete, through both engines.
    pt.check_invariants(cycles)
        .expect("plain tracer invariants");
    st.check_invariants(cycles).expect("skip tracer invariants");
    let ps: Vec<_> = pt.samples().collect();
    let ss: Vec<_> = st.samples().collect();
    assert_eq!(ps, ss, "occupancy sample streams diverged");
    for w in ss.windows(2) {
        assert_eq!(
            w[1].cycle - w[0].cycle,
            100,
            "sampling grid must stay exact through skips"
        );
    }
}

#[test]
fn large_skip_spans_do_not_corrupt_cycle_arithmetic() {
    // Satellite: multi-thousand-cycle jumps exercise the skip path's
    // cycle-delta arithmetic. A chase over `mem` with a cold hierarchy
    // produces spans bounded only by the DRAM fill horizon.
    let cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
    let mut core = core_for(cfg.clone(), &["chase"]);
    let cycles = 2_000_000u64;
    core.tick_bounded(cycles);
    assert_eq!(core.now(), cycles);
    assert_eq!(core.counters.cycles, cycles);
    let stats = core.skip_stats().clone();
    assert!(stats.spans > 0);
    assert!(stats.skipped_cycles < cycles);
    // Occupancy integrals (cycle-summed) must not have wrapped.
    for &occ in &core.counters.occupancy {
        assert!(occ < cycles * 1024, "occupancy integral implausible: {occ}");
    }
    // And the long run still matches a short tick-by-tick prefix.
    let mut prefix = core_for(cfg, &["chase"]);
    prefix.set_cycle_skipping(false);
    prefix.tick_bounded(50_000);
    assert!(prefix.committed(0) > 0);
}

#[test]
fn partial_skip_matches_tick_on_asymmetric_two_thread_mix() {
    // The partial-progress tentpole's target shape: one mcf-like pointer
    // chase parked on DRAM while an hmmer-like compute kernel keeps the
    // core busy. Whole-core fixed points are rare here; per-thread parking
    // must still be invisible.
    let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
    assert_equivalent(cfg, &["chase", "reduce"], 40_000);
}

#[test]
fn partial_skip_parks_blocked_threads_in_asymmetric_four_thread_mix() {
    // Two chases blocked on fills + two compute kernels running: the park
    // engine must certify the blocked threads and run reduced ticks while
    // the live threads progress — and stay bit-identical doing it.
    let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    assert_equivalent(cfg.clone(), &["chase", "reduce", "chase2", "triad"], 40_000);

    let mut core = core_for(cfg, &["chase", "reduce", "chase2", "triad"]);
    core.tick_bounded(40_000);
    let stats = core.skip_stats();
    assert!(
        stats.parks > 0,
        "blocked chase threads must earn park certificates"
    );
    assert!(
        stats.parked_thread_cycles > 0 && stats.reduced_ticks > 0,
        "reduced ticks must run while threads are parked: {stats:?}"
    );
    assert!(
        stats.parked_thread_cycles >= stats.reduced_ticks,
        "each reduced tick covers at least one parked thread"
    );
}

#[test]
fn probe_state_resets_when_toggled_off() {
    let cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
    let mut core = core_for(cfg, &["chase"]);
    core.tick_bounded(5_000);
    core.set_cycle_skipping(false);
    let before = core.skip_stats().skipped_cycles;
    core.tick_bounded(1_000);
    assert_eq!(
        core.skip_stats().skipped_cycles,
        before,
        "disabled engine must not skip"
    );
}
