//! Directed tests of the shelf-specific mechanisms: resource pressure on
//! the extension tag space and virtual index space, shelf sizing, the
//! conservative/optimistic issue assumption, and the commit log.

use shelfsim_core::{CoreConfig, Simulation, Steer, SteerPolicy};

fn run(cfg: CoreConfig, mix: &[&str], seed: u64) -> shelfsim_core::RunResult {
    let mut sim = Simulation::from_names(cfg, mix, seed).expect("suite benchmarks");
    sim.run(3_000, 12_000)
}

const MIX: [&str; 4] = ["gcc", "mcf", "hmmer", "lbm"];

#[test]
fn always_shelf_exercises_index_space_pressure() {
    // With everything steered to the shelf and a narrow index space, the
    // index-full stall must appear; with the paper's 2x space it should be
    // rarer.
    let base = CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, true);
    let narrow = CoreConfig {
        narrow_shelf_index: true,
        ..base.clone()
    };
    let wide_run = run(base, &MIX, 3);
    let narrow_run = run(narrow, &MIX, 3);
    assert!(
        narrow_run.counters.stalls.shelf_index_full > wide_run.counters.stalls.shelf_index_full,
        "narrow index space should stall more (narrow {} vs wide {})",
        narrow_run.counters.stalls.shelf_index_full,
        wide_run.counters.stalls.shelf_index_full
    );
    assert_eq!(narrow_run.late_shelf_commits, 0);
}

#[test]
fn tiny_extension_tag_space_stalls_but_stays_correct() {
    // Shrink the shelf so the extension tag space (2x shelf + margin)
    // becomes the bottleneck under always-shelf pressure.
    let cfg = CoreConfig {
        shelf_entries: 8, // 2 entries per thread
        steer: SteerPolicy::AlwaysShelf,
        ..CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, true)
    };
    let r = run(cfg, &MIX, 5);
    assert!(r.counters.committed > 0, "must still make progress");
    assert!(
        r.counters.stalls.shelf_full > 0 || r.counters.stalls.no_ext_tag > 0,
        "an 8-entry shelf must hit capacity stalls"
    );
    assert_eq!(r.late_shelf_commits, 0);
}

#[test]
fn shelf_size_sweep_saturates() {
    let mut ipcs = Vec::new();
    for shelf in [16usize, 64, 256] {
        let cfg = CoreConfig {
            shelf_entries: shelf,
            ..CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true)
        };
        ipcs.push(run(cfg, &MIX, 9).ipc());
    }
    // 64 entries should recover most of what 256 offers.
    assert!(
        ipcs[1] > ipcs[0] * 0.98,
        "64-entry shelf >= 16-entry: {ipcs:?}"
    );
    assert!(
        ipcs[2] < ipcs[1] * 1.15,
        "sizing saturates near 64: {ipcs:?}"
    );
}

#[test]
fn conservative_mode_sees_iq_issues_late() {
    // Same workload, same steering; the conservative design can only issue
    // shelf heads against the previous cycle's tracker, so its shelf issue
    // count per cycle should not exceed the optimistic design's by much and
    // its IPC should not be higher by more than noise.
    let cons = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, false),
        &MIX,
        12,
    );
    let opt = run(
        CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, true),
        &MIX,
        12,
    );
    assert!(
        opt.ipc() >= cons.ipc() * 0.98,
        "optimistic ({}) should not trail conservative ({}) under pure in-order issue",
        opt.ipc(),
        cons.ipc()
    );
}

#[test]
fn commit_log_records_program_order_lifecycles() {
    let cfg = CoreConfig::base64_shelf64(2, SteerPolicy::Practical, true);
    let mut sim = Simulation::from_names(cfg, &["hmmer", "gcc"], 4).expect("suite");
    sim.enable_commit_log(128);
    let _ = sim.run(2_000, 8_000);
    let records: Vec<_> = sim.core().commit_log().copied().collect();
    assert!(records.len() > 64, "log should fill");
    let mut last_seq = [0u64; 2];
    let mut shelf_seen = false;
    for r in &records {
        // Lifecycle cycles are monotone within an instruction.
        assert!(r.fetch <= r.dispatch, "fetch after dispatch: {r:?}");
        assert!(r.dispatch <= r.issue, "dispatch after issue: {r:?}");
        assert!(r.issue <= r.complete, "issue after complete: {r:?}");
        assert!(r.complete <= r.commit, "complete after commit: {r:?}");
        // Per-thread commit order is program order.
        assert!(
            r.seq >= last_seq[r.thread],
            "thread {} commit order violated: {} after {}",
            r.thread,
            r.seq,
            last_seq[r.thread]
        );
        last_seq[r.thread] = r.seq;
        shelf_seen |= r.steer == Steer::Shelf;
    }
    assert!(
        shelf_seen,
        "practical steering should commit shelf instructions"
    );
    // Commit cycles are globally non-decreasing in log order.
    for w in records.windows(2) {
        assert!(w[0].commit <= w[1].commit);
    }
}

#[test]
fn run_until_committed_reaches_target() {
    let cfg = CoreConfig::base64(2);
    let mut sim = Simulation::from_names(cfg, &["hmmer", "h264ref"], 6).expect("suite");
    let r = sim.run_until_committed(2_000, 1_000, 200_000);
    for t in &r.threads {
        assert!(
            t.committed >= 1_000,
            "{} only committed {}",
            t.benchmark,
            t.committed
        );
    }
    assert!(r.cycles < 200_000, "should finish well before the cap");
}

#[test]
fn equal_work_comparison_matches_fixed_window_direction() {
    // The shelf should win under both measurement methodologies.
    let mut base = Simulation::from_names(CoreConfig::base64(4), &MIX, 8).expect("suite");
    let b = base.run_until_committed(3_000, 800, 300_000);
    let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    let mut shelf = Simulation::from_names(cfg, &MIX, 8).expect("suite");
    let s = shelf.run_until_committed(3_000, 800, 300_000);
    // The equal-work metric is gated by the slowest thread (mcf here),
    // which the shelf barely accelerates, so only require comparability on
    // completion time — and a clear win on aggregate throughput.
    assert!(
        s.cycles <= b.cycles * 11 / 10,
        "equal work: shelf ({}) should finish in comparable time to base ({})",
        s.cycles,
        b.cycles
    );
    let tput = |r: &shelfsim_core::RunResult| {
        r.threads.iter().map(|t| t.committed).sum::<u64>() as f64 / r.cycles as f64
    };
    assert!(
        tput(&s) > tput(&b),
        "shelf aggregate throughput ({:.3}) should beat base ({:.3})",
        tput(&s),
        tput(&b)
    );
}
