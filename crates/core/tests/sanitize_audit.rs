//! Exercises the dynamic invariant sanitizer (`--features sanitize`).
//!
//! Every `Core::tick` under the feature ends with a full token-conservation
//! and bookkeeping audit that panics on the first violating cycle, so these
//! tests pass exactly when the audits stay silent across the stressiest
//! design points: deep squash storms (wrong-path fetch), TSO shelf stores,
//! all-shelf steering (extension-tag pressure), and the ablations.
#![cfg(feature = "sanitize")]

use shelfsim_core::{CoreConfig, MemoryModel, Simulation, SteerPolicy};

fn run(cfg: CoreConfig, seed: u64) {
    let mix = [
        "gcc", "mcf", "hmmer", "lbm", "sjeng", "milc", "astar", "namd",
    ];
    let mut sim =
        Simulation::from_names(cfg.clone(), &mix[..cfg.threads], seed).expect("suite mix");
    let r = sim.run(500, 3_000);
    assert!(
        r.counters.committed > 0,
        "no forward progress under {cfg:?}"
    );
}

#[test]
fn audits_stay_silent_on_evaluated_designs() {
    for threads in [1, 2, 4] {
        run(CoreConfig::base64(threads), 7);
        run(CoreConfig::base128(threads), 11);
        run(
            CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, false),
            13,
        );
        run(
            CoreConfig::base64_shelf64(threads, SteerPolicy::Practical, true),
            17,
        );
    }
}

#[test]
fn audits_stay_silent_under_extension_tag_pressure() {
    // All-shelf steering keeps the extension free list churning hardest.
    run(
        CoreConfig::base64_shelf64(4, SteerPolicy::AlwaysShelf, true),
        19,
    );
    run(CoreConfig::base64_shelf64(4, SteerPolicy::Oracle, true), 23);
}

#[test]
fn audits_stay_silent_on_ablations_and_tso() {
    let mut tso = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    tso.memory_model = MemoryModel::Tso;
    run(tso, 29);

    let mut single_ssr = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, false);
    single_ssr.single_ssr = true;
    single_ssr.narrow_shelf_index = true;
    run(single_ssr, 31);
}
