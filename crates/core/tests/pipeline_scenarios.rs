//! Directed pipeline scenarios over hand-built programs: known dependence
//! shapes must produce known schedules.

use shelfsim_core::{Core, CoreConfig, SteerPolicy};
use shelfsim_isa::{ArchReg, OpClass};
use shelfsim_workload::program::{AccessPattern, Block, Program, Region, StaticInst, Terminator};
use shelfsim_workload::TraceSource;

/// One op spec: (op class, dest, srcs, access).
type OpSpec = (
    OpClass,
    Option<ArchReg>,
    Vec<ArchReg>,
    Option<AccessPattern>,
);

/// Builds a one-block infinite loop out of `ops`.
fn loop_program(ops: &[OpSpec]) -> Program {
    let start_pc = 0x40_0000u64;
    let mut body = Vec::new();
    for (i, (op, dest, srcs, access)) in ops.iter().enumerate() {
        let mut s = [None, None];
        for (slot, &r) in s.iter_mut().zip(srcs) {
            *slot = Some(r);
        }
        body.push(StaticInst {
            static_id: i as u32,
            pc: start_pc + 4 * i as u64,
            op: *op,
            dest: *dest,
            srcs: s,
            access: *access,
        });
    }
    let branch_inst = StaticInst {
        static_id: ops.len() as u32,
        pc: start_pc + 4 * ops.len() as u64,
        op: OpClass::Branch,
        dest: None,
        srcs: [None, None],
        access: None,
    };
    Program {
        name: "handmade",
        blocks: vec![Block {
            body,
            terminator: Terminator::Jump { target: 0 },
            branch_inst,
            start_pc,
        }],
        main_blocks: 1,
        num_statics: ops.len() as u32 + 1,
        seed: 0,
    }
}

fn run_ipc(cfg: CoreConfig, program: Program, cycles: u64) -> (f64, Core) {
    let mut core = Core::new(cfg, vec![TraceSource::new(program, 0)]);
    core.warm_caches();
    core.warm_functional(5_000);
    for _ in 0..2_000 {
        core.tick();
    }
    let c0 = core.committed(0);
    for _ in 0..cycles {
        core.tick();
    }
    let ipc = (core.committed(0) - c0) as f64 / cycles as f64;
    (ipc, core)
}

fn r(n: u8) -> ArchReg {
    ArchReg::int(n)
}

#[test]
fn independent_alu_stream_approaches_int_alu_width() {
    // 8 independent ALU ops per iteration: bounded by 3 int ALUs (branches
    // share them) and the 4-wide front end.
    let ops: Vec<_> = (0..8)
        .map(|i| (OpClass::IntAlu, Some(r(8 + i)), vec![], None))
        .collect();
    let (ipc, _) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    assert!(
        ipc > 2.0,
        "independent ALUs should flow wide, got IPC {ipc:.2}"
    );
    assert!(ipc <= 3.2, "cannot exceed the ALU pool, got IPC {ipc:.2}");
}

#[test]
fn serial_chain_runs_at_one_ipc() {
    // r8 = f(r8) chain: one ALU per cycle at best, plus a free branch.
    let ops: Vec<_> = (0..6)
        .map(|_| (OpClass::IntAlu, Some(r(8)), vec![r(8)], None))
        .collect();
    let (ipc, _) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    assert!(
        ipc > 0.8 && ipc < 1.4,
        "serial chain IPC {ipc:.2} should be ~1"
    );
}

#[test]
fn divide_chain_is_latency_bound() {
    // A dependent divide chain: ~1 instruction per divide latency.
    let ops = [
        (OpClass::IntDiv, Some(r(8)), vec![r(8)], None),
        (OpClass::IntAlu, Some(r(9)), vec![r(8)], None),
    ];
    let (ipc, _) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    let per_iter = 3.0; // div + alu + branch
    let expected = per_iter / (12.0 + 1.0); // divide latency dominates
    assert!(
        (ipc - expected).abs() < 0.12,
        "divide chain IPC {ipc:.3}, expected ~{expected:.3}"
    );
}

#[test]
fn l1_resident_loads_flow() {
    let acc = AccessPattern::Strided {
        region: Region::L1,
        stride: 8,
    };
    let ops = [
        (OpClass::Load, Some(r(8)), vec![r(0)], Some(acc)),
        (OpClass::IntAlu, Some(r(9)), vec![r(8)], None),
    ];
    let (ipc, core) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    assert!(ipc > 1.0, "L1-hit load+use should pipeline, got {ipc:.2}");
    // Hierarchy stats include the explicit warm-up sweeps (which miss by
    // design), so the IPC above is the hit-rate witness; just confirm the
    // timed loads actually hit somewhere.
    let h = core.hierarchy();
    assert!(
        h.l1d_stats().hits > 1_000,
        "timed loads should hit the warmed L1"
    );
}

#[test]
fn memory_bound_loads_crawl() {
    let acc = AccessPattern::PointerChase {
        region: Region::Mem,
    };
    // A self-dependent chase: every load waits for the previous one.
    let ops = [(OpClass::Load, Some(r(24)), vec![r(24)], Some(acc))];
    let (ipc, _) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 8_000);
    // Two instructions (load + branch) per ~234-cycle round trip.
    assert!(ipc < 0.1, "serialized chase must crawl, got IPC {ipc:.3}");
}

#[test]
fn store_to_load_forwarding_keeps_pace() {
    // Store to a location then immediately load it back: forwarding must
    // keep this near the chain-limited rate rather than cache-limited.
    let st = AccessPattern::Strided {
        region: Region::L1,
        stride: 0,
    };
    let ops = [
        (OpClass::Store, None, vec![r(0), r(9)], Some(st)),
        (OpClass::Load, Some(r(10)), vec![r(0)], Some(st)),
        (OpClass::IntAlu, Some(r(9)), vec![r(10)], None),
    ];
    let (ipc, core) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    assert!(
        ipc > 0.7,
        "forwarded store->load loop too slow: IPC {ipc:.2}"
    );
    // Same-address traffic must not cause endless violations.
    assert!(core.counters.memory_violations < 50);
}

#[test]
fn speculative_load_violation_is_detected_and_replayed() {
    // The store's data depends on a divide, so it executes late; the
    // younger load to the same address issues speculatively first and must
    // be squashed when the store finally scans the LQ (store sets then
    // learn the pair).
    let same = AccessPattern::Strided {
        region: Region::L1,
        stride: 0,
    };
    let ops = [
        (OpClass::IntDiv, Some(r(9)), vec![r(9)], None),
        (OpClass::Store, None, vec![r(0), r(9)], Some(same)),
        (OpClass::Load, Some(r(10)), vec![r(1)], Some(same)),
        (OpClass::IntAlu, Some(r(11)), vec![r(10)], None),
    ];
    let (_, core) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 6_000);
    assert!(
        core.counters.memory_violations > 0,
        "expected at least one memory-order violation"
    );
    assert!(
        core.committed(0) > 500,
        "the pipeline must recover and make progress"
    );
    assert_eq!(core.late_shelf_commits(), 0);
}

#[test]
fn shelf_handles_handmade_serial_code_gracefully() {
    // A serial chain is entirely in-sequence: the shelf design must match
    // the baseline on it (nothing to reorder).
    let ops: Vec<_> = (0..6)
        .map(|_| (OpClass::IntAlu, Some(r(8)), vec![r(8)], None))
        .collect();
    let (base, _) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    let cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
    let (shelf, core) = run_ipc(cfg, loop_program(&ops), 4_000);
    assert!(
        shelf > base * 0.9,
        "shelf ({shelf:.2}) must not lose on pure serial code vs base ({base:.2})"
    );
    assert!(
        core.counters.dispatched_shelf > 0,
        "serial code should use the shelf"
    );
}

#[test]
fn memory_barrier_serializes_but_completes() {
    let ops = [
        (OpClass::IntAlu, Some(r(8)), vec![], None),
        (OpClass::MemBarrier, None, vec![], None),
        (OpClass::IntAlu, Some(r(9)), vec![], None),
    ];
    let (ipc, core) = run_ipc(CoreConfig::base64(1), loop_program(&ops), 4_000);
    assert!(
        core.counters.stalls.barrier > 0,
        "barriers must serialize dispatch"
    );
    assert!(
        ipc > 0.15,
        "barrier-heavy loop still progresses, got {ipc:.2}"
    );
    assert!(ipc < 2.0, "barriers must cost something, got {ipc:.2}");
}

#[test]
fn tso_constrains_the_shelf_but_stays_correct() {
    use shelfsim_core::MemoryModel;
    // Memory-heavy synthetic loop: under TSO the shelf must wait for elder
    // loads and allocate SQ entries for its stores; throughput should be at
    // most the relaxed model's, and execution must stay live and safe.
    let acc = AccessPattern::Strided {
        region: Region::L2,
        stride: 64,
    };
    let ops = [
        (OpClass::Load, Some(r(8)), vec![r(0)], Some(acc)),
        (OpClass::IntAlu, Some(r(9)), vec![r(8)], None),
        (OpClass::Store, None, vec![r(1), r(9)], Some(acc)),
        (OpClass::IntAlu, Some(r(10)), vec![], None),
    ];
    let relaxed_cfg = CoreConfig::base64_shelf64(1, SteerPolicy::Practical, true);
    let tso_cfg = CoreConfig {
        memory_model: MemoryModel::Tso,
        ..relaxed_cfg.clone()
    };
    let (relaxed, _) = run_ipc(relaxed_cfg, loop_program(&ops), 6_000);
    let (tso, core) = run_ipc(tso_cfg, loop_program(&ops), 6_000);
    assert!(tso > 0.05, "TSO run must stay live, got IPC {tso:.3}");
    assert!(
        tso <= relaxed * 1.05,
        "TSO ({tso:.3}) cannot beat the relaxed model ({relaxed:.3})"
    );
    assert_eq!(core.late_shelf_commits(), 0);
    assert!(
        core.counters.issued_shelf > 0,
        "the shelf must still operate under TSO"
    );
}
