//! Regression tests for the IQ wakeup CAM counter: only entries that are
//! actually CAM-compared (waiting on at least one outstanding source tag)
//! may be counted per broadcast — not every resident IQ entry.

use shelfsim_core::{Core, CoreConfig};
use shelfsim_isa::{ArchReg, OpClass};
use shelfsim_workload::program::{AccessPattern, Block, Program, StaticInst, Terminator};
use shelfsim_workload::TraceSource;

/// One op spec: (op class, dest, srcs, access).
type OpSpec = (
    OpClass,
    Option<ArchReg>,
    Vec<ArchReg>,
    Option<AccessPattern>,
);

/// Builds a one-block infinite loop out of `ops`.
fn loop_program(ops: &[OpSpec]) -> Program {
    let start_pc = 0x40_0000u64;
    let mut body = Vec::new();
    for (i, (op, dest, srcs, access)) in ops.iter().enumerate() {
        let mut s = [None, None];
        for (slot, &r) in s.iter_mut().zip(srcs) {
            *slot = Some(r);
        }
        body.push(StaticInst {
            static_id: i as u32,
            pc: start_pc + 4 * i as u64,
            op: *op,
            dest: *dest,
            srcs: s,
            access: *access,
        });
    }
    let branch_inst = StaticInst {
        static_id: ops.len() as u32,
        pc: start_pc + 4 * ops.len() as u64,
        op: OpClass::Branch,
        dest: None,
        srcs: [None, None],
        access: None,
    };
    Program {
        name: "handmade",
        blocks: vec![Block {
            body,
            terminator: Terminator::Jump { target: 0 },
            branch_inst,
            start_pc,
        }],
        main_blocks: 1,
        num_statics: ops.len() as u32 + 1,
        seed: 0,
    }
}

fn r(n: u8) -> ArchReg {
    ArchReg::int(n)
}

#[test]
fn independent_stream_performs_no_cam_compares() {
    // Every source in this loop is architecturally ready at dispatch (no
    // instruction reads another's in-flight destination), so no IQ entry
    // ever waits on a tag and the wakeup CAM must never fire — even though
    // every issue of a dest-producing op broadcasts. The pre-fix counter
    // charged `iq.len()` per broadcast and would read in the thousands here.
    let ops = [
        (OpClass::IntAlu, Some(r(8)), vec![r(1)], None),
        (OpClass::IntAlu, Some(r(9)), vec![r(2)], None),
    ];
    let mut core = Core::new(
        CoreConfig::base64(1),
        vec![TraceSource::new(loop_program(&ops), 0)],
    );
    core.warm_caches();
    for _ in 0..4_000 {
        core.tick();
    }
    assert!(core.counters.issued > 1_000, "stream should flow freely");
    assert_eq!(
        core.counters.iq_wakeup_cam, 0,
        "no entry ever waits on a tag, so no CAM compare may be counted"
    );
}

#[test]
fn dependent_pair_first_broadcast_compares_only_waiting_entries() {
    // Hand-built two-instruction dependence: I1 is a serial divide chain
    // (r8 <- r8) and I2 consumes r8. Run cycle-by-cycle until the very
    // first issue: that issue is I1 of iteration 0 (everything else in the
    // IQ waits on r8), and its broadcast must be charged exactly the number
    // of entries waiting on an outstanding tag at that moment — not the
    // whole IQ occupancy, which also holds the issuing instruction itself
    // and the always-ready loop branches.
    let ops = [
        (OpClass::IntDiv, Some(r(8)), vec![r(8)], None),
        (OpClass::IntAlu, Some(r(9)), vec![r(8)], None),
    ];
    let mut core = Core::new(
        CoreConfig::base64(1),
        vec![TraceSource::new(loop_program(&ops), 0)],
    );
    core.warm_caches();
    for _ in 0..10_000 {
        core.tick();
        if core.counters.issued > 0 {
            break;
        }
    }
    // The first issuing cycle picks I1 of iteration 0 plus possibly a
    // ready loop branch — but branches have no destination, so exactly one
    // broadcast (the divide's) has been charged to the CAM counter.
    assert!(
        core.counters.issued >= 1 && core.counters.issued <= 4,
        "probe stops at the first issuing cycle, issued {}",
        core.counters.issued
    );
    // At the divide's broadcast the IQ holds iteration 0 (divide, consumer,
    // branch): the issuing divide has no pending sources and the branch is
    // always ready, so exactly one entry — the dependent consumer — is
    // CAM-compared. The pre-fix counting charged the full IQ occupancy and
    // read 3 here.
    assert_eq!(
        core.counters.iq_wakeup_cam, 1,
        "exactly the waiting consumer is CAM-compared at the first broadcast"
    );
    assert!(
        core.counters.iq_wakeup_cam < core.counters.iq_writes - core.counters.issued,
        "cam count must exclude ready residents (IQ saw {} writes)",
        core.counters.iq_writes
    );
}
