//! Occupancy tests: the shelf must visibly shift in-flight occupancy out of
//! the ROB/IQ/LSQ/PRF — the paper's premise, measured directly.

use shelfsim_core::{CoreConfig, Simulation, SteerPolicy};

fn occupancies(cfg: CoreConfig) -> [f64; 6] {
    let mix = ["gcc", "mcf", "hmmer", "lbm"];
    let mut sim = Simulation::from_names(cfg, &mix, 7).expect("suite");
    let r = sim.run(5_000, 20_000);
    std::array::from_fn(|i| r.counters.mean_occupancy(i))
}

#[test]
fn shelf_reduces_ooo_structure_occupancy() {
    let base = occupancies(CoreConfig::base64(4));
    let shelf = occupancies(CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true));
    // [rob, iq, lq, sq, shelf, rename-regs]
    assert!(base[4] == 0.0, "no shelf in the baseline");
    assert!(
        shelf[4] > 1.0,
        "the shelf must hold instructions, got {}",
        shelf[4]
    );
    // The design's point: the window grows substantially while the PRF
    // usage stays flat (shelf instructions allocate no rename registers).
    let base_window = base[0];
    let shelf_window = shelf[0] + shelf[4];
    assert!(
        shelf_window > base_window * 1.05,
        "hybrid window ({shelf_window:.1}) should exceed the base window ({base_window:.1})"
    );
    assert!(
        shelf[5] < base[5] * 1.05,
        "rename-register usage must stay flat ({} vs {})",
        shelf[5],
        base[5]
    );
    let window_per_reg_base = base_window / base[5];
    let window_per_reg_shelf = shelf_window / shelf[5];
    assert!(
        window_per_reg_shelf > window_per_reg_base,
        "in-flight instructions per rename register must improve"
    );
}

#[test]
fn occupancy_bounds_respect_capacities() {
    let cfg = CoreConfig::base64_shelf64(4, SteerPolicy::Practical, true);
    let occ = occupancies(cfg.clone());
    assert!(occ[0] <= cfg.rob_entries as f64);
    assert!(occ[1] <= cfg.iq_entries as f64);
    assert!(occ[2] <= cfg.lq_entries as f64);
    assert!(occ[3] <= cfg.sq_entries as f64);
    assert!(occ[4] <= cfg.shelf_entries as f64);
    assert!(occ[5] <= cfg.num_phys_regs() as f64);
}
