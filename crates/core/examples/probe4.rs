use shelfsim_core::{CoreConfig, Simulation};

fn main() {
    let cfg = CoreConfig::base64(4);
    let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1).unwrap();
    for i in 0..400 {
        sim.step();
        if (236..280).contains(&i) {
            println!("--- cycle {i}");
            for t in 0..4 {
                println!("{}", sim.core().debug_state(t));
                let h = sim.core().debug_window_head(t);
                if !h.is_empty() {
                    println!("   {}", h);
                }
            }
        }
    }
}
