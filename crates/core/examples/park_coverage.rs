use shelfsim_core::{Core, CoreConfig, SteerPolicy};
use shelfsim_workload::{kernels, TraceSource};
fn main() {
    for (label, names) in [
        ("2t chase+reduce", vec!["chase", "reduce"]),
        (
            "4t chase/reduce/chase2/triad",
            vec!["chase", "reduce", "chase2", "triad"],
        ),
        ("4t all-chase", vec!["chase", "chase2", "chase", "chase2"]),
    ] {
        let cfg = CoreConfig::base64_shelf64(names.len(), SteerPolicy::Practical, true);
        let sources = names
            .iter()
            .enumerate()
            .map(|(t, n)| TraceSource::new(kernels::by_name(n).unwrap().assemble().unwrap(), t))
            .collect();
        let mut core = Core::new(cfg, sources);
        core.warm_caches();
        let cycles = 200_000u64;
        core.tick_bounded(cycles);
        let s = core.skip_stats();
        println!("{label}: skipped={} ({:.1}%) parks={} parked_cycles={} reduced_ticks={} park_jumps={} park_aborts={} spans={}",
            s.skipped_cycles, 100.0 * s.skipped_cycles as f64 / cycles as f64,
            s.parks, s.parked_thread_cycles, s.reduced_ticks, s.park_jumps, s.park_aborts, s.spans);
    }
}
