use shelfsim_core::{CoreConfig, Simulation};

fn main() {
    let cfg = CoreConfig::base64(1);
    let mut sim = Simulation::from_names(cfg, &["hmmer"], 3).unwrap();
    let r = sim.run(300, 3000);
    println!(
        "committed={} fetched={} dispatched={} issued={} squashed={}",
        r.counters.committed,
        r.counters.fetched,
        r.counters.dispatched,
        r.counters.issued,
        r.counters.squashed
    );
    println!(
        "wrong_path={} mispredicts={} violations={} mshr_stalls={}",
        r.counters.wrong_path_fetched,
        r.counters.branch_mispredicts,
        r.counters.memory_violations,
        r.counters.mshr_stalls
    );
    println!("stalls={:?}", r.counters.stalls);
    println!("l1d={:?} l1i={:?} l2={:?}", r.l1d, r.l1i, r.l2);
    println!("bpred_ratio={:.3}", r.threads[0].branch_mispredict_ratio);
    println!(
        "cpi={:.2} inseq={:.3}",
        r.threads[0].cpi, r.threads[0].in_sequence_fraction
    );
}
