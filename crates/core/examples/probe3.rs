use shelfsim_core::{CoreConfig, Simulation};

fn main() {
    let cfg = CoreConfig::base64(4);
    let mut sim = Simulation::from_names(cfg, &["gcc", "mcf", "hmmer", "lbm"], 1).unwrap();
    let r = sim.run(300, 3000);
    for t in &r.threads {
        println!(
            "{:<8} committed={} cpi={:.2} inseq={:.3} bpred={:.3}",
            t.benchmark, t.committed, t.cpi, t.in_sequence_fraction, t.branch_mispredict_ratio
        );
    }
    println!("stalls={:?}", r.counters.stalls);
    println!(
        "violations={} mispredicts={} mshr_stalls={}",
        r.counters.memory_violations, r.counters.branch_mispredicts, r.counters.mshr_stalls
    );
    for t in 0..4 {
        println!("{}", sim.core().debug_state(t));
        println!("   head: {}", sim.core().debug_window_head(t));
    }
}
